//! Two-terminal reliability estimation: exact enumeration versus
//! progressive Monte-Carlo sampling (paper §2 and §4).
//!
//! Demonstrates (a) the estimator of Eq. 3 converging to the exact
//! connection probability, (b) the (ε, δ) sample bound of Eq. 4, and
//! (c) the multiplicative triangle inequality of Theorem 1 — the property
//! that makes metric clustering machinery applicable to uncertain graphs.
//!
//! Run with: `cargo run --release --example reliability_oracle`

use ugraph::prelude::*;
use ugraph::sampling::bounds;

fn main() {
    // A small "bowtie" network: two triangles sharing a weak bridge.
    let mut b = GraphBuilder::new(6);
    for (u, v, p) in [
        (0u32, 1u32, 0.8),
        (1, 2, 0.7),
        (0, 2, 0.6),
        (3, 4, 0.9),
        (4, 5, 0.5),
        (3, 5, 0.4),
        (2, 3, 0.3), // bridge
    ] {
        b.add_edge(u, v, p).unwrap();
    }
    let g = b.build().unwrap();

    // ── Exact oracle (2^7 = 128 possible worlds) ───────────────────────
    let exact = ExactOracle::new(&g).unwrap();
    println!("exact connection probabilities:");
    for (u, v) in [(0u32, 1u32), (0, 2), (0, 3), (0, 5)] {
        println!("  Pr({u} ~ {v}) = {:.6}", exact.pair_probability(NodeId(u), NodeId(v)));
    }

    // ── Monte-Carlo convergence ────────────────────────────────────────
    println!("\nMonte-Carlo estimate of Pr(0 ~ 5) vs sample count:");
    let truth = exact.pair_probability(NodeId(0), NodeId(5));
    let mut pool = ComponentPool::new(&g, 42, 0);
    for r in [50usize, 200, 1000, 5000, 20000] {
        pool.ensure(r);
        let est = pool.pair_estimate(NodeId(0), NodeId(5));
        println!(
            "  r = {r:>6}:  {est:.4}   (exact {truth:.4}, abs err {:.4})",
            (est - truth).abs()
        );
    }

    // ── Eq. 4: samples needed for an (ε, δ)-approximation ──────────────
    println!("\nEq. 4 sample bounds (ε = 0.1, δ = 0.01):");
    for p in [0.5, 0.1, 0.01] {
        println!("  p = {p:<5}: r ≥ {}", bounds::eq4_samples(0.1, 0.01, p));
    }
    println!("  (cost explodes as p → 0 — why the algorithms avoid estimating tiny probabilities)");

    // ── Theorem 1: multiplicative triangle inequality ──────────────────
    println!("\nTheorem 1 spot check — Pr(u~z) ≥ Pr(u~v)·Pr(v~z):");
    let mut worst: (f64, (u32, u32, u32)) = (f64::INFINITY, (0, 0, 0));
    for u in 0..6u32 {
        for v in 0..6u32 {
            for z in 0..6u32 {
                let lhs = exact.pair_probability(NodeId(u), NodeId(z));
                let rhs = exact.pair_probability(NodeId(u), NodeId(v))
                    * exact.pair_probability(NodeId(v), NodeId(z));
                let slack = lhs - rhs;
                assert!(slack >= -1e-12, "triangle inequality violated");
                if slack < worst.0 {
                    worst = (slack, (u, v, z));
                }
            }
        }
    }
    let (slack, (u, v, z)) = worst;
    println!("  holds for all 216 triplets; tightest at ({u},{v},{z}) with slack {slack:.2e}");

    // ── Depth-limited probabilities (paper §3.4) ───────────────────────
    println!("\ndepth-limited Pr(0 ~d~ 5):");
    for d in 1..=5u32 {
        let od = ExactOracle::with_depth(&g, d).unwrap();
        println!("  d = {d}: {:.6}", od.pair_probability(NodeId(0), NodeId(5)));
    }
    println!("  (monotone in d, reaching the unlimited value {truth:.6})");
}
