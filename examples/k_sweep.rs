//! A warm k-sweep through one [`UgraphSession`] — the workload the
//! session API exists for.
//!
//! Real deployments rarely cluster a graph once: they sweep `k`, compare
//! objectives, and re-evaluate metrics on the same instance. Calling the
//! one-shot `mcp()` per `k` rebuilds the engine, resamples every possible
//! world, and recomputes every probability row from scratch; a session
//! samples each world **once** and serves later requests from cached
//! integer count rows — bit-identically (asserted below).
//!
//! Run with: `cargo run --release --example k_sweep`

use std::time::Instant;

use ugraph::prelude::*;

fn main() {
    let dataset = DatasetSpec::Gavin.generate(5);
    let graph = &dataset.graph;
    let cfg = ClusterConfig::default().with_seed(1);
    let ks = 2..=10usize;
    println!(
        "{}: {} nodes, {} edges, k = {:?}\n",
        dataset.name,
        graph.num_nodes(),
        graph.num_edges(),
        ks
    );

    // ── Cold baseline: one independent mcp() call per k ────────────────
    let t = Instant::now();
    let cold: Vec<McpResult> = ks.clone().map(|k| mcp(graph, k, &cfg).expect("cold mcp")).collect();
    let cold_time = t.elapsed();
    println!("cold: {} independent mcp() calls in {cold_time:.2?}", cold.len());

    // ── Warm sweep: one session, per-request stats ─────────────────────
    let mut session = UgraphSession::new(graph, cfg).expect("session");
    println!("\nwarm sweep through one UgraphSession:");
    println!(
        "{:<4} {:>9} {:>8} {:>8} {:>6} {:>8} {:>7} {:>9} {:>10}",
        "k", "p_min est", "guesses", "samples", "hits", "top-ups", "fulls", "eval p_min", "time"
    );
    for (k, cold_r) in ks.clone().zip(&cold) {
        let r = session.solve(ClusterRequest::mcp(k)).expect("warm mcp");
        // The session contract: warm ≡ cold, bit for bit.
        assert_eq!(r.clustering, cold_r.clustering, "warm k = {k} diverged from cold");
        assert_eq!(r.assign_probs, cold_r.assign_probs);
        let q = session.evaluate(&r.clustering);
        let c = r.row_cache;
        println!(
            "{:<4} {:>9.4} {:>8} {:>8} {:>6} {:>8} {:>7} {:>9.4} {:>10.2?}",
            k,
            r.objective_estimate,
            r.guesses,
            r.samples_used,
            c.hits,
            c.topups,
            c.fulls,
            q.p_min,
            r.elapsed
        );
    }
    // Compare solve time only (the evaluations above have no cold
    // counterpart).
    let stats = session.stats();
    let warm_time = stats.solve_time;
    println!("\nwarm: same sweep in {warm_time:.2?} (plus {} evaluations)", stats.evaluations);
    println!(
        "speedup ≈ {:.2}x — the session holds {} worlds where the cold calls sampled {} \
         in total, and {} of {} probability rows were served from cache",
        cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9),
        stats.worlds_held,
        cold.iter().map(|r| r.samples_used).sum::<usize>(),
        stats.row_cache.hits + stats.row_cache.topups,
        stats.row_cache.rows_served(),
    );
    println!("session: {stats}");
}
