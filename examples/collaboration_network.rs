//! Clustering a DBLP-like collaboration network: MCP/ACP versus the MCL
//! and GMM baselines, mirroring the paper's Figure 1/2 comparison on its
//! largest dataset (scaled down for a quick run).
//!
//! Run with: `cargo run --release --example collaboration_network`

use std::time::Instant;

use ugraph::baselines::{gmm, mcl, MclConfig};
use ugraph::prelude::*;
use ugraph::sampling::ComponentPool;

fn main() {
    // ~1% of the published DBLP size keeps this example interactive.
    let dataset = DatasetSpec::Dblp { scale: 0.01 }.generate(3);
    let graph = &dataset.graph;
    println!("{}: {} nodes, {} edges", dataset.name, graph.num_nodes(), graph.num_edges());

    // The paper matches k to MCL's output granularity; do the same.
    let t = Instant::now();
    let mcl_result = mcl(graph, &MclConfig::with_inflation(1.2));
    let mcl_time = t.elapsed();
    let k = mcl_result.clustering.num_clusters();
    println!("mcl (inflation 1.2) found k = {k} clusters in {mcl_time:.2?}");

    let cfg = ClusterConfig::default().with_seed(11);
    let t = Instant::now();
    let mcp_result = mcp(graph, k, &cfg).expect("MCP");
    let mcp_time = t.elapsed();
    let t = Instant::now();
    let acp_result = acp(graph, k, &cfg).expect("ACP");
    let acp_time = t.elapsed();
    let t = Instant::now();
    let gmm_result = gmm(graph, k, 11).expect("GMM");
    let gmm_time = t.elapsed();

    // Fresh evaluation pool.
    let mut pool = ComponentPool::new(graph, 999, 0);
    pool.ensure(500);

    println!(
        "\n{:<6} {:>9} {:>9} {:>12} {:>12} {:>10}",
        "algo", "p_min", "p_avg", "inner-AVPR", "outer-AVPR", "time"
    );
    let entries = [
        ("gmm", &gmm_result, gmm_time),
        ("mcl", &mcl_result.clustering, mcl_time),
        ("mcp", &mcp_result.clustering, mcp_time),
        ("acp", &acp_result.clustering, acp_time),
    ];
    for (name, clustering, time) in entries {
        let q = clustering_quality(&mut pool, clustering);
        let a = avpr(&mut pool, clustering);
        println!(
            "{:<6} {:>9.3} {:>9.3} {:>12.3} {:>12.3} {:>10.2?}",
            name, q.p_min, q.p_avg, a.inner, a.outer, time
        );
    }

    println!(
        "\nExpected shape (paper Fig. 1-2 on DBLP): mcp wins p_min by a wide margin \
         (gmm/mcl fall below 1e-3), acp matches mcl on p_avg while controlling k, \
         and mcp/acp achieve visibly lower outer-AVPR."
    );
}
