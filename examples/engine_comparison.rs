//! Backend selection on the `WorldEngine` seam: scalar per-world pools
//! versus the bit-parallel block pool (64 worlds per machine word)
//! versus the adaptive backend (bit-parallel + lazy per-block
//! component-label finalization, the default).
//!
//! Demonstrates (a) selecting the Monte-Carlo backend through
//! `ClusterConfig::with_engine`, (b) that both backends produce
//! **identical** clusterings and estimates for a fixed seed, and (c) the
//! raw timing difference on pool generation and depth-limited queries,
//! where one masked traversal answers 64 sampled worlds at once.
//!
//! Run with: `cargo run --release --example engine_comparison`

use std::time::Instant;

use ugraph::prelude::*;
use ugraph::sampling::{BitParallelPool, WorldPool};

fn main() {
    // A mid-sized synthetic PPI network (the paper's Gavin-like setup).
    let d = DatasetSpec::Gavin.generate(7);
    let g = d.graph;
    println!("graph: {} nodes / {} edges\n", g.num_nodes(), g.num_edges());

    // ── 1. Backend selection via ClusterConfig ─────────────────────────
    // The engine knob is threaded through mcp/acp (and their depth
    // variants) into every probability estimate; backends hold
    // bit-identical worlds, so results agree exactly — the knob trades
    // nothing but time. Depth-limited clustering (paper §3.4) is the
    // workload where the bit-parallel backend shines: the scalar oracle
    // runs one bounded BFS per sampled world, the bit-parallel one a
    // single masked traversal per 64-world block.
    let (k, d) = (40, 3);
    let scalar_cfg = ClusterConfig::default().with_seed(11).with_engine(EngineKind::Scalar);
    let bit_cfg = ClusterConfig::default().with_seed(11).with_engine(EngineKind::BitParallel);

    let t = Instant::now();
    let scalar_run = acp_depth(&g, k, d, &scalar_cfg).expect("acp_depth (scalar)");
    let scalar_time = t.elapsed();
    let t = Instant::now();
    let bit_run = acp_depth(&g, k, d, &bit_cfg).expect("acp_depth (bit-parallel)");
    let bit_time = t.elapsed();

    assert_eq!(scalar_run.clustering, bit_run.clustering, "backends must agree exactly");
    assert_eq!(scalar_run.avg_prob_estimate, bit_run.avg_prob_estimate);
    println!("acp_depth k = {k}, d = {d}: identical clusterings from both backends");
    println!(
        "  scalar       {scalar_time:>10.2?}   (avg-prob {:.3})",
        scalar_run.avg_prob_estimate
    );
    println!("  bit-parallel {bit_time:>10.2?}   (avg-prob {:.3})", bit_run.avg_prob_estimate);

    // ── 2. Where bit-packing pays: depth-limited traversal ─────────────
    // The scalar backend runs one bounded BFS per sampled world; the
    // bit-parallel backend propagates 64-world reach masks, answering a
    // whole block per traversal.
    let samples = 128;
    let depth = 4;
    let n = g.num_nodes();
    let centers: Vec<NodeId> = (0..16u32).map(|i| NodeId(i * (n as u32 / 16))).collect();
    let (mut sel, mut cov) = (vec![0u32; n], vec![0u32; n]);

    let t = Instant::now();
    let mut scalar_pool = WorldPool::new(&g, 3, 1);
    scalar_pool.ensure(samples);
    for &c in &centers {
        scalar_pool.counts_within_depths(c, depth, depth, &mut sel, &mut cov);
    }
    let scalar_depth = t.elapsed();
    let scalar_cov = cov.clone();

    let t = Instant::now();
    let mut bit_pool = BitParallelPool::<1>::new(&g, 3, 1);
    bit_pool.ensure(samples);
    for &c in &centers {
        bit_pool.counts_within_depths(c, depth, depth, &mut sel, &mut cov);
    }
    let bit_depth = t.elapsed();

    assert_eq!(scalar_cov, cov, "depth counts must be identical");
    println!("\ndepth-{depth} counts, {samples} worlds, {} centers:", centers.len());
    println!("  scalar       {scalar_depth:>10.2?}");
    println!("  bit-parallel {bit_depth:>10.2?}");
    println!(
        "  speedup      {:>9.1}x (single-core: pure bit-packing, no threads)",
        scalar_depth.as_secs_f64() / bit_depth.as_secs_f64().max(1e-12)
    );

    // ── 3. The adaptive backend: labels on demand ──────────────────────
    // Unlimited-depth rows were the one workload where the pure-mask
    // backend lost to scalar labels. The adaptive pool finalizes
    // per-block component labels on the first row query and serves every
    // later unlimited query at scalar-label speed, while keeping the
    // bit-parallel generation and depth wins above.
    let mut counts = vec![0u32; n];
    let t = Instant::now();
    let mut adaptive_pool = BitParallelPool::<1>::new_adaptive(&g, 3, 1);
    adaptive_pool.ensure(samples);
    adaptive_pool.counts_from_center(centers[0], &mut counts); // finalizes
    let warm = Instant::now();
    for &c in &centers {
        adaptive_pool.counts_from_center(c, &mut counts);
    }
    let adaptive_warm = warm.elapsed();
    let adaptive_total = t.elapsed();
    let stats = adaptive_pool.engine_stats();
    println!(
        "\nadaptive unlimited rows, {samples} worlds, {} centers (after one-time \
         finalization of {} blocks / {} lanes):",
        centers.len(),
        stats.finalized_blocks,
        stats.finalized_lanes
    );
    println!(
        "  warm queries {adaptive_warm:>10.2?}   (generation + finalize + all queries \
         {adaptive_total:>.2?})"
    );
    println!(
        "  {} block-queries served from labels, {} from masks",
        stats.label_queries, stats.mask_queries
    );
}
