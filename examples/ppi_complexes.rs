//! Protein-complex prediction on a Krogan-like PPI network — the paper's
//! §5.2 experiment on synthetic data with planted ground truth.
//!
//! Depth-limited clustering (paths of bounded length only) captures the
//! intuition that proteins of one complex are both reliably connected AND
//! topologically close. The example sweeps the depth d and reports the
//! TPR/FPR trade-off against the planted complexes, comparing MCP, ACP,
//! MCL and KPT.
//!
//! Run with: `cargo run --release --example ppi_complexes`

use ugraph::baselines::{kpt, mcl, KptConfig, MclConfig};
use ugraph::metrics::confusion;
use ugraph::prelude::*;

fn main() {
    // Krogan-like PPI with planted complexes standing in for MIPS.
    let dataset = DatasetSpec::Krogan.generate(1);
    let graph = &dataset.graph;
    let complexes = dataset.ground_truth.as_ref().expect("PPI datasets carry ground truth");
    println!(
        "{}: {} nodes, {} edges, {} planted complexes",
        dataset.name,
        graph.num_nodes(),
        graph.num_edges(),
        complexes.len()
    );

    // Match the cluster count to the ground truth, like the paper matches
    // the published Krogan clustering's k = 547.
    let k = complexes.len();
    let cfg = ClusterConfig::default().with_seed(7);

    println!("\n{:<14} {:>6} {:>8} {:>8} {:>8}", "algorithm", "k", "TPR", "FPR", "F1");

    for d in [2u32, 3, 4, 6, 8] {
        if let Ok(r) = mcp_depth(graph, k, d, &cfg) {
            let m = confusion(&r.clustering, complexes);
            print_row(&format!("mcp (d={d})"), r.clustering.num_clusters(), &m);
        } else {
            println!("mcp (d={d}): no full clustering at this depth");
        }
        if let Ok(r) = acp_depth(graph, k, d, &cfg) {
            let m = confusion(&r.clustering, complexes);
            print_row(&format!("acp (d={d})"), r.clustering.num_clusters(), &m);
        }
    }

    // MCL: granularity only steerable via inflation; report what it gives.
    for inflation in [1.5, 2.0] {
        let r = mcl(graph, &MclConfig::with_inflation(inflation));
        let m = confusion(&r.clustering, complexes);
        print_row(&format!("mcl (I={inflation})"), r.clustering.num_clusters(), &m);
    }

    // KPT: cluster count is an output.
    let c = kpt(graph, &KptConfig::default());
    let m = confusion(&c, complexes);
    print_row("kpt", c.num_clusters(), &m);

    println!(
        "\nReading: small d keeps FPR low (clusters stay topologically tight); \
         growing d trades false positives for recall — the paper's Table 2 shape."
    );
}

fn print_row(name: &str, k: usize, m: &ugraph::metrics::ConfusionMatrix) {
    println!("{:<14} {:>6} {:>8.3} {:>8.3} {:>8.3}", name, k, m.tpr(), m.fpr(), m.f1());
}
