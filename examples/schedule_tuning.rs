//! Exploring the time/quality trade-offs the paper discusses in §5:
//! the guessing parameter γ, the candidate-set size α, and the sampling
//! schedule (theory Eq. 9 vs the practical 50-sample progressive start).
//!
//! Run with: `cargo run --release --example schedule_tuning`

use std::time::Instant;

use ugraph::prelude::*;
use ugraph::sampling::ComponentPool;

fn main() {
    let dataset = DatasetSpec::Gavin.generate(5);
    let graph = &dataset.graph;
    let k = 50;
    println!(
        "{}: {} nodes, {} edges, k = {k}\n",
        dataset.name,
        graph.num_nodes(),
        graph.num_edges()
    );
    let mut pool = ComponentPool::new(graph, 12345, 0);
    pool.ensure(1000);

    // ── γ: guess-schedule resolution ───────────────────────────────────
    println!("γ sweep (mcp): smaller γ = finer threshold grid = more work");
    println!("{:<8} {:>8} {:>9} {:>9} {:>10}", "gamma", "guesses", "p_min", "final q", "time");
    for gamma in [0.05, 0.1, 0.2, 0.5] {
        let cfg = ClusterConfig::default().with_gamma(gamma).with_seed(1);
        let t = Instant::now();
        let r = mcp(graph, k, &cfg).expect("mcp");
        let el = t.elapsed();
        let q = clustering_quality(&mut pool, &r.clustering);
        println!("{:<8} {:>8} {:>9.3} {:>9.4} {:>10.2?}", gamma, r.guesses, q.p_min, r.final_q, el);
    }

    // ── α: candidate-set size in min-partial ───────────────────────────
    // The row-cache columns show why larger α stays affordable: repeated
    // guesses re-request overlapping candidate rows, which the oracle
    // serves from cached counts (hits) or incremental top-ups instead of
    // full pool sweeps.
    println!("\nα sweep (acp): larger α lowers variance at extra cost (§5)");
    println!(
        "{:<8} {:>9} {:>10} {:>7} {:>8} {:>7}",
        "alpha", "p_avg", "time", "hits", "top-ups", "fulls"
    );
    for alpha in [1usize, 4, 16, 64] {
        let cfg = ClusterConfig::default().with_alpha(alpha).with_seed(1);
        let t = Instant::now();
        let r = acp(graph, k, &cfg).expect("acp");
        let el = t.elapsed();
        let q = clustering_quality(&mut pool, &r.clustering);
        let c = r.row_cache;
        println!(
            "{:<8} {:>9.3} {:>10.2?} {:>7} {:>8} {:>7}",
            alpha, q.p_avg, el, c.hits, c.topups, c.fulls
        );
    }

    // ── Sampling schedule ──────────────────────────────────────────────
    println!("\nschedule sweep (mcp): fixed vs practical progressive");
    println!("{:<22} {:>9} {:>9} {:>10}", "schedule", "samples", "p_min", "time");
    let schedules: Vec<(&str, SampleSchedule)> = vec![
        ("Fixed(50)", SampleSchedule::Fixed(50)),
        ("Fixed(500)", SampleSchedule::Fixed(500)),
        ("Practical(50..2048)", SampleSchedule::practical()),
    ];
    for (name, schedule) in schedules {
        let cfg = ClusterConfig::default().with_schedule(schedule).with_seed(1);
        let t = Instant::now();
        let r = mcp(graph, k, &cfg).expect("mcp");
        let el = t.elapsed();
        let q = clustering_quality(&mut pool, &r.clustering);
        println!("{:<22} {:>9} {:>9.3} {:>10.2?}", name, r.samples_used, q.p_min, el);
    }

    println!(
        "\nPaper defaults (γ = 0.1, α = 1, progressive from 50 samples) sit at the \
         knee of all three curves — §5's stated configuration."
    );
}
