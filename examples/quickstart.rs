//! Quickstart: build a small uncertain graph, run MCP and ACP, inspect the
//! clusterings and their quality metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use ugraph::prelude::*;
use ugraph::sampling::ComponentPool;

fn main() {
    // ── 1. Build an uncertain graph ────────────────────────────────────
    // Three "communities" of decreasing internal reliability, chained by
    // weak bridges. Edge probabilities model interaction confidence.
    let mut b = GraphBuilder::new(12);
    let communities: [(f64, [u32; 4]); 3] =
        [(0.95, [0, 1, 2, 3]), (0.7, [4, 5, 6, 7]), (0.5, [8, 9, 10, 11])];
    for (p, members) in &communities {
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                b.add_edge(u, v, *p).unwrap();
            }
        }
    }
    b.add_edge(3, 4, 0.08).unwrap(); // weak bridge
    b.add_edge(7, 8, 0.08).unwrap(); // weak bridge
    let g = b.build().unwrap();
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // ── 2. Cluster with MCP (maximize the minimum connection prob) ─────
    let cfg = ClusterConfig::default().with_seed(42);
    let mcp_result = mcp(&g, 3, &cfg).expect("MCP clustering");
    println!("\nMCP (k = 3):");
    print_clustering(&mcp_result.clustering);
    println!(
        "  min-prob estimate: {:.3} (threshold q = {:.3}, {} guesses, {} samples)",
        mcp_result.min_prob_estimate,
        mcp_result.final_q,
        mcp_result.guesses,
        mcp_result.samples_used
    );

    // ── 3. Cluster with ACP (maximize the average connection prob) ─────
    let acp_result = acp(&g, 3, &cfg).expect("ACP clustering");
    println!("\nACP (k = 3):");
    print_clustering(&acp_result.clustering);
    println!("  avg-prob estimate: {:.3}", acp_result.avg_prob_estimate);

    // ── 4. Evaluate both with fresh samples ────────────────────────────
    // Never grade an algorithm on its own training samples: build an
    // independent pool for measurement.
    let mut pool = ComponentPool::new(&g, 0xE7A1, 0);
    pool.ensure(2000);
    for (name, clustering) in [("MCP", &mcp_result.clustering), ("ACP", &acp_result.clustering)] {
        let q = clustering_quality(&mut pool, clustering);
        let a = avpr(&mut pool, clustering);
        println!(
            "\n{name}: p_min = {:.3}  p_avg = {:.3}  inner-AVPR = {:.3}  outer-AVPR = {:.3}",
            q.p_min, q.p_avg, a.inner, a.outer
        );
    }
}

fn print_clustering(c: &Clustering) {
    for (i, members) in c.clusters().iter().enumerate() {
        let ids: Vec<String> = members.iter().map(|n| n.to_string()).collect();
        println!("  cluster {i} (center {}): {{{}}}", c.center(i), ids.join(", "));
    }
}
