//! Small shared parsers for human-friendly CLI values.
//!
//! Extracted from the `ugraph` binary so every front end — `cluster`'s
//! `--memory-budget`/`--timeout`, `serve`'s `--memory-budget`/
//! `--request-timeout`/`--idle-evict` — accepts the same spellings and
//! produces the same error messages. Errors name the offending value but
//! not the flag; callers prepend their own flag context.

/// Parses a byte size with an optional binary suffix: `4096`, `64K`,
/// `512M`, `2G` (case-insensitive, optional trailing `B`/`iB`). Zero and
/// overflowing sizes are rejected.
///
/// # Errors
/// A human-readable message naming the invalid value.
pub fn parse_bytes(v: &str) -> Result<usize, String> {
    let s = v.trim();
    let lower = s.to_ascii_lowercase();
    let (digits, shift) = if let Some(d) =
        lower.strip_suffix("g").or(lower.strip_suffix("gb")).or(lower.strip_suffix("gib"))
    {
        (d, 30u32)
    } else if let Some(d) =
        lower.strip_suffix("m").or(lower.strip_suffix("mb")).or(lower.strip_suffix("mib"))
    {
        (d, 20)
    } else if let Some(d) =
        lower.strip_suffix("k").or(lower.strip_suffix("kb")).or(lower.strip_suffix("kib"))
    {
        (d, 10)
    } else {
        (lower.as_str(), 0)
    };
    let n: usize =
        digits.trim().parse().map_err(|_| format!("invalid size '{v}' (use e.g. 512M, 2G)"))?;
    n.checked_mul(1usize << shift)
        .filter(|&b| b > 0)
        .ok_or(format!("size '{v}' is zero or overflows"))
}

/// Parses a wall-clock duration: `30s`, `5m`, `1h`, `250ms`; a bare
/// number is seconds (case-insensitive). Zero and overflowing durations
/// are rejected.
///
/// # Errors
/// A human-readable message naming the invalid value.
pub fn parse_duration(v: &str) -> Result<std::time::Duration, String> {
    let lower = v.trim().to_ascii_lowercase();
    let (digits, per_unit_ms) = if let Some(d) = lower.strip_suffix("ms") {
        (d, 1u64)
    } else if let Some(d) = lower.strip_suffix('s') {
        (d, 1_000)
    } else if let Some(d) = lower.strip_suffix('m') {
        (d, 60_000)
    } else if let Some(d) = lower.strip_suffix('h') {
        (d, 3_600_000)
    } else {
        (lower.as_str(), 1_000)
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("invalid duration '{v}' (use e.g. 30s, 5m, 250ms)"))?;
    n.checked_mul(per_unit_ms)
        .filter(|&ms| ms > 0)
        .map(std::time::Duration::from_millis)
        .ok_or(format!("duration '{v}' is zero or overflows"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bytes_accept_binary_suffixes_and_reject_nonsense() {
        assert_eq!(parse_bytes("4096"), Ok(4096));
        assert_eq!(parse_bytes("64K"), Ok(64 << 10));
        assert_eq!(parse_bytes("512m"), Ok(512 << 20));
        assert_eq!(parse_bytes("2GiB"), Ok(2 << 30));
        assert_eq!(parse_bytes(" 1 kb "), Ok(1 << 10));
        for bad in ["", "0", "-1", "1.5G", "G", "12X", "999999999999999G"] {
            assert!(parse_bytes(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn durations_accept_unit_suffixes_and_reject_nonsense() {
        assert_eq!(parse_duration("250ms"), Ok(Duration::from_millis(250)));
        assert_eq!(parse_duration("30s"), Ok(Duration::from_secs(30)));
        assert_eq!(parse_duration("5m"), Ok(Duration::from_secs(300)));
        assert_eq!(parse_duration("1h"), Ok(Duration::from_secs(3600)));
        assert_eq!(parse_duration("7"), Ok(Duration::from_secs(7)), "bare number is seconds");
        for bad in ["", "0", "0ms", "-3s", "1.5h", "ms", "999999999999999999h"] {
            assert!(parse_duration(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
