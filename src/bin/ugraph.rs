//! `ugraph` — command-line front end to the library.
//!
//! ```text
//! ugraph generate --dataset <collins|gavin|krogan|dblp|large-sparse>
//!                 [--scale X] [--nodes N] [--seed N]
//!                 --output graph.txt [--ground-truth gt.txt]
//! ugraph stats    --input graph.txt
//! ugraph cluster  --input graph.txt --algo <mcp|acp|gmm|mcl|kpt> [--k N]
//!                 [--depth D] [--inflation I] [--seed N] [--output out.tsv]
//!                 [--engine <scalar|bitparallel|adaptive>] [--block-width 64|256|512]
//!                 [--memory-budget B] [--timeout T] [--best-effort]
//! ugraph sweep    --input graph.txt --algo <mcp|acp> --k-min A --k-max B
//!                 [--depth D] [--seed N] [--samples N]
//!                 [--engine <scalar|bitparallel|adaptive>] [--block-width 64|256|512]
//!                 [--memory-budget B] [--timeout T] [--best-effort]
//! ugraph evaluate --input graph.txt --clustering out.tsv [--samples N]
//!                 [--ground-truth gt.txt] [--seed N] [--block-width 64|256|512]
//!                 [--memory-budget B] [--timeout T]
//! ugraph knn      --input graph.txt --source U [--k N] [--depth D] [--samples N]
//! ugraph serve    [--listen HOST:PORT] --dataset <names>|--input graph.txt
//!                 [--graph NAME] [--workers N] [--seed N]
//!                 [--memory-budget B] [--session-budget B]
//!                 [--request-timeout T] [--idle-evict T] [--io-timeout T]
//! ugraph client   <cluster|stats> [--connect HOST:PORT] [--graph NAME]
//!                 [--algo mcp|acp] [--k N] [--depth D] [--timeout T]
//!                 [--retries N] [--connect-pool N]
//!                 [--engine <scalar|bitparallel|adaptive>] [--block-width 64|256|512]
//!                 [--output out.tsv]
//! ```
//!
//! `cluster` (for MCP/ACP), `sweep`, and `evaluate` all run through one
//! [`UgraphSession`] per invocation: `sweep` serves every `k` from the
//! same grow-only world pool and row caches, and `evaluate` reuses the
//! session's evaluation pool instead of building its own.
//!
//! Formats: graphs are `u v p` edge lists (with an optional `# nodes: N`
//! header); clusterings are TSV lines `node<TAB>cluster<TAB>center`;
//! ground truth is one complex per line as space-separated node ids.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::sync::Arc;

use ugraph::baselines::{gmm, kpt, mcl, KptConfig, MclConfig};
use ugraph::cluster::{
    ClusterConfig, ClusterRequest, Clustering, Objective, SolveResult, UgraphSession,
};
use ugraph::datasets::DatasetSpec;
use ugraph::graph::{io as gio, GraphStats, NodeId, UncertainGraph};
use ugraph::metrics::{avpr, confusion, session_quality};
use ugraph::sampling::{reliability_knn, reliability_knn_within, ComponentPool, WorldPool};
use ugraph::sampling::{BlockWidth, EngineKind};
use ugraph::server::{
    ClientPool, ClusterCall, RetryError, RetryPolicy, RetryReport, Server, ServerConfig, WireDepth,
    PROTOCOL_VERSION,
};

/// Where `serve` listens and `client` connects when no address is given.
const DEFAULT_ADDR: &str = "127.0.0.1:7878";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // `client` takes an action word before its flags.
    let (client_action, flag_args): (Option<&String>, &[String]) = if command == "client" {
        match rest.split_first() {
            Some((action, r)) if !action.starts_with("--") => (Some(action), r),
            _ => {
                eprintln!("error: client expects an action (cluster or stats)\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    } else {
        (None, rest)
    };
    let opts = match Options::parse(flag_args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "stats" => cmd_stats(&opts),
        "cluster" => cmd_cluster(&opts),
        "sweep" => cmd_sweep(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "knn" => cmd_knn(&opts),
        "serve" => cmd_serve(&opts),
        "client" => match client_action {
            Some(action) => cmd_client(action, &opts),
            None => Err("client expects an action (cluster or stats)".into()),
        },
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: ugraph <command> [flags]

commands:
  generate  --dataset <collins|gavin|krogan|dblp|large-sparse>
            [--scale X] [--nodes N] [--seed N]
            --output graph.txt [--ground-truth gt.txt]
  stats     --input graph.txt
  cluster   --input graph.txt --algo <mcp|acp|gmm|mcl|kpt> [--k N]
            [--depth D] [--inflation I] [--seed N] [--output out.tsv]
            [--engine <scalar|bitparallel|adaptive>] [--block-width 64|256|512]
            [--memory-budget B] [--timeout T] [--best-effort]
  sweep     --input graph.txt --algo <mcp|acp> --k-min A --k-max B
            [--depth D] [--seed N] [--samples N]
            [--engine <scalar|bitparallel|adaptive>] [--block-width 64|256|512]
            [--memory-budget B] [--timeout T] [--best-effort]
  evaluate  --input graph.txt --clustering out.tsv [--samples N]
            [--ground-truth gt.txt] [--seed N] [--block-width 64|256|512]
            [--memory-budget B] [--timeout T]
  knn       --input graph.txt --source U [--k N] [--depth D] [--samples N]
  serve     [--listen HOST:PORT] --dataset <names>|--input graph.txt
            [--graph NAME] [--workers N] [--seed N]
            [--memory-budget B] [--session-budget B]
            [--request-timeout T] [--idle-evict T] [--io-timeout T]
  client    <cluster|stats> [--connect HOST:PORT] [--graph NAME]
            [--algo mcp|acp] [--k N] [--depth D] [--timeout T]
            [--retries N] [--connect-pool N]
            [--engine <scalar|bitparallel|adaptive>] [--block-width 64|256|512]
            [--output out.tsv]

`--engine` picks the Monte-Carlo backend of the solver paths (default:
adaptive — bit-parallel blocks with lazy component-label finalization);
every backend returns identical results for a fixed seed. It is accepted
everywhere but only affects `cluster` and `sweep` — `evaluate` always
measures on the scalar evaluation pool.

`--block-width` sets how many sampled worlds one bit-parallel mask block
packs (default 256). Results are bit-identical at every width; wider
blocks answer more worlds per traversal at proportionally larger
per-block mask memory. Ignored by the scalar backend.

`--memory-budget` caps the bytes held by the session's sampled worlds and
cached rows (e.g. 512M, 2G; binary suffixes K/M/G). Under pressure,
least-recently-used pool shards are evicted and regenerated on demand;
results are bit-identical to an unbounded run. `--nodes` sizes the
large-sparse generated dataset (default 100000).

`--timeout` sets a wall-clock deadline per solve (e.g. 30s, 5m, 1h,
250ms; a bare number means seconds). A solve that trips the deadline
stops at the next block boundary and reports how far it got. By default
the command exits nonzero; with `--best-effort` a solver that already
holds a full clustering returns it instead, flagged as interrupted.

`serve` keeps graphs and solver sessions resident behind a TCP socket
(default 127.0.0.1:7878) speaking a small versioned binary protocol (see
PROTOCOL.md). `--dataset` takes a comma-separated list of generated
datasets to load; `--input` loads an edge list under `--graph`'s name (or
the file stem). `--memory-budget` is the *global* ceiling across all
sessions — idle sessions are evicted (and later regenerated,
bit-identically) to fit it; `--session-budget` adds a per-session cap;
`--request-timeout` bounds each solve server-side; `--idle-evict` frees
sessions idle longer than the given age; `--io-timeout` cuts connections
that stall mid-frame (idle connections between frames park freely;
default 10s, tallied as `peer stalls` in `client stats`). Ctrl-C drains
in-flight solves cooperatively before exiting. `client cluster`/`client
stats` are the matching command-line clients; when exactly one graph is
loaded, `--graph` may be omitted.

`client` rides over transient failures: `--retries N` (default 2) allows
N retries after the first attempt under exponential backoff with seeded
jitter, min-composed with `--timeout` so a retry never sleeps past the
request deadline; `--connect-pool N` (default 1) keeps up to N parked
connections, each health-checked with a protocol ping before reuse and
transparently re-dialed when the server restarts. Reconnects are logged
to stderr; retrying is safe because solves are idempotent — a re-issued
request answers bit-identically.";

/// Parsed flag set (strings resolved lazily per command).
#[derive(Default, Debug)]
struct Options {
    input: Option<String>,
    output: Option<String>,
    clustering: Option<String>,
    ground_truth: Option<String>,
    dataset: Option<String>,
    algo: Option<String>,
    k: Option<usize>,
    k_min: Option<usize>,
    k_max: Option<usize>,
    depth: Option<u32>,
    inflation: Option<f64>,
    scale: Option<f64>,
    seed: u64,
    samples: usize,
    source: Option<u32>,
    engine: EngineKind,
    block_width: BlockWidth,
    memory_budget: Option<usize>,
    nodes: Option<usize>,
    timeout: Option<std::time::Duration>,
    best_effort: bool,
    listen: Option<String>,
    connect: Option<String>,
    graph: Option<String>,
    workers: Option<usize>,
    session_budget: Option<usize>,
    request_timeout: Option<std::time::Duration>,
    idle_evict: Option<std::time::Duration>,
    io_timeout: Option<std::time::Duration>,
    retries: Option<u32>,
    connect_pool: Option<usize>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = Options { seed: 1, samples: 512, ..Default::default() };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut take =
                || it.next().cloned().ok_or_else(|| format!("flag {flag} expects a value"));
            match flag.as_str() {
                "--input" => o.input = Some(take()?),
                "--output" => o.output = Some(take()?),
                "--clustering" => o.clustering = Some(take()?),
                "--ground-truth" => o.ground_truth = Some(take()?),
                "--dataset" => o.dataset = Some(take()?),
                "--algo" => o.algo = Some(take()?),
                "--k" => o.k = Some(parse_num(&take()?, flag)?),
                "--k-min" => o.k_min = Some(parse_num(&take()?, flag)?),
                "--k-max" => o.k_max = Some(parse_num(&take()?, flag)?),
                "--depth" => o.depth = Some(parse_num(&take()?, flag)?),
                "--inflation" => o.inflation = Some(parse_num(&take()?, flag)?),
                "--scale" => o.scale = Some(parse_num(&take()?, flag)?),
                "--seed" => o.seed = parse_num(&take()?, flag)?,
                "--samples" => o.samples = parse_num(&take()?, flag)?,
                "--source" => o.source = Some(parse_num(&take()?, flag)?),
                "--engine" => {
                    let v = take()?;
                    o.engine = EngineKind::from_name(&v).ok_or(format!(
                        "flag --engine: expected scalar, bitparallel, or adaptive, got '{v}'"
                    ))?;
                }
                "--block-width" => {
                    let v = take()?;
                    o.block_width = BlockWidth::from_name(&v).ok_or(format!(
                        "flag --block-width: expected 64, 256, or 512, got '{v}'"
                    ))?;
                }
                "--memory-budget" => o.memory_budget = Some(parse_bytes(&take()?, flag)?),
                "--nodes" => o.nodes = Some(parse_num(&take()?, flag)?),
                "--timeout" => o.timeout = Some(parse_duration(&take()?, flag)?),
                "--best-effort" => o.best_effort = true,
                "--listen" => o.listen = Some(take()?),
                "--connect" => o.connect = Some(take()?),
                "--graph" => o.graph = Some(take()?),
                "--workers" => o.workers = Some(parse_num(&take()?, flag)?),
                "--session-budget" => o.session_budget = Some(parse_bytes(&take()?, flag)?),
                "--request-timeout" => o.request_timeout = Some(parse_duration(&take()?, flag)?),
                "--idle-evict" => o.idle_evict = Some(parse_duration(&take()?, flag)?),
                "--io-timeout" => o.io_timeout = Some(parse_duration(&take()?, flag)?),
                "--retries" => o.retries = Some(parse_num(&take()?, flag)?),
                "--connect-pool" => o.connect_pool = Some(parse_num(&take()?, flag)?),
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(o)
    }

    fn require_input(&self) -> Result<UncertainGraph, String> {
        let path = self.input.as_ref().ok_or("--input is required")?;
        ugraph::sampling::faults::hit(ugraph::sampling::FaultSite::DatasetIo)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        gio::read_edge_list(BufReader::new(file)).map_err(|e| e.to_string())
    }
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("flag {flag}: invalid value '{v}'"))
}

/// [`ugraph::util::parse_bytes`] with the offending flag prepended.
fn parse_bytes(v: &str, flag: &str) -> Result<usize, String> {
    ugraph::util::parse_bytes(v).map_err(|e| format!("flag {flag}: {e}"))
}

/// [`ugraph::util::parse_duration`] with the offending flag prepended.
fn parse_duration(v: &str, flag: &str) -> Result<std::time::Duration, String> {
    ugraph::util::parse_duration(v).map_err(|e| format!("flag {flag}: {e}"))
}

// ───────────────────────── commands ─────────────────────────

/// Resolves a dataset name (as `generate` and `serve` accept it) to its
/// generator spec, sized by the usual flags.
fn dataset_spec(name: &str, o: &Options) -> Result<DatasetSpec, String> {
    Ok(match name {
        "collins" => DatasetSpec::Collins,
        "gavin" => DatasetSpec::Gavin,
        "krogan" => DatasetSpec::Krogan,
        "dblp" => DatasetSpec::Dblp { scale: o.scale.unwrap_or(0.01) },
        "large-sparse" => DatasetSpec::LargeSparse { nodes: o.nodes.unwrap_or(100_000) },
        other => return Err(format!("unknown dataset '{other}'")),
    })
}

fn cmd_generate(o: &Options) -> Result<(), String> {
    let name = o.dataset.as_deref().ok_or("--dataset is required")?;
    let spec = dataset_spec(name, o)?;
    let d = spec.generate(o.seed);
    let out_path = o.output.as_ref().ok_or("--output is required")?;
    let out = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    gio::write_edge_list(&d.graph, out).map_err(|e| e.to_string())?;
    eprintln!("wrote {}: {} nodes, {} edges", out_path, d.graph.num_nodes(), d.graph.num_edges());
    if let Some(gt_path) = &o.ground_truth {
        let gt = d.ground_truth.ok_or("dataset has no ground truth (dblp, large-sparse)")?;
        let mut w = BufWriter::new(
            File::create(gt_path).map_err(|e| format!("cannot create {gt_path}: {e}"))?,
        );
        for complex in &gt {
            let ids: Vec<String> = complex.iter().map(|n| n.to_string()).collect();
            writeln!(w, "{}", ids.join(" ")).map_err(|e| e.to_string())?;
        }
        eprintln!("wrote {gt_path}: {} complexes", gt.len());
    }
    Ok(())
}

fn cmd_stats(o: &Options) -> Result<(), String> {
    let g = o.require_input()?;
    let s = GraphStats::compute(&g);
    println!("{s}");
    println!("prob histogram (10 bins over (0,1]): {:?}", GraphStats::prob_histogram(&g, 10));
    let lcc = ugraph::graph::largest_connected_component(&g);
    println!(
        "largest connected component: {} nodes, {} edges",
        lcc.graph.num_nodes(),
        lcc.graph.num_edges()
    );
    Ok(())
}

/// Builds the typed session request for the CLI's `(algo, k, depth)`
/// triple (MCP/ACP only).
fn build_request(algo: &str, k: usize, depth: Option<u32>) -> Result<ClusterRequest, String> {
    match (algo, depth) {
        ("mcp", None) => Ok(ClusterRequest::mcp(k)),
        ("mcp", Some(d)) => Ok(ClusterRequest::mcp_depth(k, d)),
        ("acp", None) => Ok(ClusterRequest::acp(k)),
        ("acp", Some(d)) => Ok(ClusterRequest::acp_depth(k, d)),
        (other, _) => Err(format!("expected mcp or acp, got '{other}'")),
    }
}

/// The CLI's solver/evaluation configuration: seed + engine, plus the
/// optional memory budget (shared by every pool of the session).
fn session_config(o: &Options) -> ClusterConfig {
    let mut cfg = ClusterConfig::default()
        .with_seed(o.seed)
        .with_engine(o.engine)
        .with_block_width(o.block_width);
    if let Some(bytes) = o.memory_budget {
        cfg = cfg.with_memory_budget(bytes);
    }
    if let Some(t) = o.timeout {
        cfg = cfg.with_timeout(t);
    }
    if o.best_effort {
        cfg = cfg.with_degrade(ugraph::cluster::DegradeMode::BestEffort);
    }
    cfg
}

fn cmd_cluster(o: &Options) -> Result<(), String> {
    let g = o.require_input()?;
    let algo = o.algo.as_deref().ok_or("--algo is required")?;
    let cfg = session_config(o);
    let need_k = || o.k.ok_or(format!("--k is required for {algo}"));
    let clustering: Clustering = match (algo, o.depth) {
        ("mcp" | "acp", depth) => {
            let mut session = UgraphSession::new(&g, cfg).map_err(|e| e.to_string())?;
            let request = build_request(algo, need_k()?, depth)?;
            let r = session.solve(request).map_err(|e| e.to_string())?;
            summarize_solve(&r);
            eprintln!("session: {}", session.stats());
            r.clustering
        }
        ("gmm", _) => gmm(&g, need_k()?, o.seed).map_err(|e| e.to_string())?,
        ("mcl", _) => mcl(&g, &MclConfig::with_inflation(o.inflation.unwrap_or(2.0))).clustering,
        ("kpt", _) => kpt(&g, &KptConfig { edge_threshold: 0.5, seed: o.seed }),
        (other, _) => return Err(format!("unknown algorithm '{other}'")),
    };
    eprintln!(
        "{algo}: {} clusters, {} of {} nodes covered",
        clustering.num_clusters(),
        clustering.covered_count(),
        clustering.num_nodes()
    );
    match &o.output {
        Some(path) => {
            let f = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            write_clustering(&clustering, f)?;
            eprintln!("wrote {path}");
        }
        None => write_clustering(&clustering, std::io::stdout())?,
    }
    Ok(())
}

/// Prints one request's schedule summary (guesses, samples, objective,
/// row-cache service).
fn summarize_solve(r: &SolveResult) {
    let c = r.row_cache;
    let objective = match r.request.objective() {
        ugraph::cluster::Objective::MinProb => "p_min",
        ugraph::cluster::Objective::AvgProb => "p_avg",
    };
    let e = r.engine;
    eprintln!(
        "{}: {} guesses over {} samples (q = {:.4}, {objective} est {:.4}) in {:.2?}; row cache: \
         {} hits, {} top-ups, {} full recomputes; finalized {} block(s), {} label-served \
         block-queries",
        r.request,
        r.guesses,
        r.samples_used,
        r.final_q,
        r.objective_estimate,
        r.elapsed,
        c.hits,
        c.topups,
        c.fulls,
        e.finalized_blocks,
        e.label_queries
    );
    if let Some(report) = &r.interrupt {
        eprintln!("warning: best-effort result — {report}");
    }
}

fn cmd_sweep(o: &Options) -> Result<(), String> {
    let g = o.require_input()?;
    let algo = o.algo.as_deref().ok_or("--algo is required")?;
    let k_min = o.k_min.ok_or("--k-min is required")?;
    let k_max = o.k_max.ok_or("--k-max is required")?;
    if k_min < 1 || k_max < k_min {
        return Err(format!("need 1 ≤ k-min ≤ k-max, got {k_min}..{k_max}"));
    }
    let cfg = session_config(o);
    let mut session =
        UgraphSession::new(&g, cfg).map_err(|e| e.to_string())?.with_eval_samples(o.samples);
    println!(
        "{:<4} {:>5} {:>10} {:>8} {:>8} {:>8} {:>8} {:>6} {:>8} {:>7} {:>6} {:>6} {:>10} {:>6} \
         {:>6} {:>10}",
        "k",
        "width",
        "objective",
        "guesses",
        "samples",
        "p_min",
        "p_avg",
        "hits",
        "top-ups",
        "fulls",
        "fblk",
        "lblq",
        "bytes",
        "evict",
        "regen",
        "time"
    );
    for k in k_min..=k_max {
        let request = build_request(algo, k, o.depth)?;
        match session.solve(request) {
            Ok(r) => {
                // Measure under the same path semantics as the objective.
                let q = match o.depth {
                    None => session.evaluate(&r.clustering),
                    Some(d) => session.evaluate_depth(&r.clustering, d),
                };
                let c = r.row_cache;
                let e = r.engine;
                // This request's slice of the shared memory ledger.
                let stats = session.stats();
                let m = stats.per_request.last().expect("solve just pushed a record").memory;
                println!(
                    "{:<4} {:>5} {:>10.4} {:>8} {:>8} {:>8.4} {:>8.4} {:>6} {:>8} {:>7} {:>6} \
                     {:>6} {:>10} {:>6} {:>6} {:>10.2?}",
                    k,
                    o.block_width.name(),
                    r.objective_estimate,
                    r.guesses,
                    r.samples_used,
                    q.p_min,
                    q.p_avg,
                    c.hits,
                    c.topups,
                    c.fulls,
                    e.finalized_blocks,
                    e.label_queries,
                    m.bytes_held,
                    m.shards_evicted,
                    m.shards_regenerated,
                    r.elapsed
                );
                if let Some(report) = &r.interrupt {
                    eprintln!("warning: k = {k} is a best-effort result — {report}");
                }
            }
            // An interruption applies to the whole sweep: stop and exit
            // nonzero. Per-k failures (e.g. no full clustering) keep the
            // old print-and-continue behavior.
            Err(e) if e.interrupt_report().is_some() => return Err(format!("k = {k}: {e}")),
            Err(e) => println!("{k:<4} failed: {e}"),
        }
    }
    eprintln!("session: {}", session.stats());
    Ok(())
}

fn cmd_evaluate(o: &Options) -> Result<(), String> {
    let g = o.require_input()?;
    let path = o.clustering.as_ref().ok_or("--clustering is required")?;
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let clustering = read_clustering(BufReader::new(f), g.num_nodes())?;
    // One session pool serves both quality and AVPR (grow-only, seeded
    // independently of the solver pools).
    // `--engine` is accepted but moot here: evaluation runs on the
    // session's scalar eval pool (`avpr` needs its component labels), and
    // no solver request is issued.
    let mut session = UgraphSession::new(&g, session_config(o))
        .map_err(|e| e.to_string())?
        .with_eval_samples(o.samples);
    let q = session_quality(&mut session, &clustering);
    let a = avpr(session.eval_pool(), &clustering);
    println!("k          {}", clustering.num_clusters());
    println!("covered    {}/{}", clustering.covered_count(), clustering.num_nodes());
    println!("p_min      {:.4}", q.p_min);
    println!("p_avg      {:.4}", q.p_avg);
    println!("inner-AVPR {:.4}", a.inner);
    println!("outer-AVPR {:.4}", a.outer);
    if let Some(gt_path) = &o.ground_truth {
        let f = File::open(gt_path).map_err(|e| format!("cannot open {gt_path}: {e}"))?;
        let complexes = read_ground_truth(BufReader::new(f), g.num_nodes())?;
        let m = confusion(&clustering, &complexes);
        println!("TPR        {:.4}", m.tpr());
        println!("FPR        {:.4}", m.fpr());
        println!("precision  {:.4}", m.precision());
        println!("F1         {:.4}", m.f1());
    }
    eprintln!("session: {}", session.stats());
    Ok(())
}

fn cmd_knn(o: &Options) -> Result<(), String> {
    let g = o.require_input()?;
    let source = o.source.ok_or("--source is required")?;
    if source as usize >= g.num_nodes() {
        return Err(format!("source {source} out of range (n = {})", g.num_nodes()));
    }
    let k = o.k.unwrap_or(10);
    let results = match o.depth {
        None => {
            let mut pool = ComponentPool::new(&g, o.seed, 0);
            pool.ensure(o.samples);
            reliability_knn(&mut pool, NodeId(source), k)
        }
        Some(d) => {
            let mut pool = WorldPool::new(&g, o.seed, 0);
            pool.ensure(o.samples);
            reliability_knn_within(&mut pool, NodeId(source), k, d)
        }
    };
    for (node, p) in results {
        println!("{node}\t{p:.4}");
    }
    Ok(())
}

// ───────────────────────── serve mode ─────────────────────────

fn cmd_serve(o: &Options) -> Result<(), String> {
    let mut graphs: Vec<(String, Arc<UncertainGraph>)> = Vec::new();
    if let Some(list) = &o.dataset {
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let d = dataset_spec(name, o)?.generate(o.seed);
            eprintln!(
                "loaded {name}: {} nodes, {} edges",
                d.graph.num_nodes(),
                d.graph.num_edges()
            );
            graphs.push((name.to_string(), Arc::new(d.graph)));
        }
    }
    if let Some(path) = &o.input {
        let g = o.require_input()?;
        let name = o.graph.clone().unwrap_or_else(|| {
            std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "graph".into())
        });
        eprintln!("loaded {name}: {} nodes, {} edges (from {path})", g.num_nodes(), g.num_edges());
        graphs.push((name, Arc::new(g)));
    }
    if graphs.is_empty() {
        return Err("serve needs --dataset <names> and/or --input graph.txt".into());
    }

    let base = ClusterConfig::default().with_seed(o.seed);
    let config = ServerConfig {
        workers: o.workers.unwrap_or(4).max(1),
        request_timeout: o.request_timeout,
        global_budget: o.memory_budget,
        session_budget: o.session_budget,
        idle_evict: o.idle_evict,
        // Flag omitted: keep the config's stall default rather than
        // turning the hardening off.
        io_timeout: o.io_timeout.or(ServerConfig::default().io_timeout),
    };
    let listen = o.listen.as_deref().unwrap_or(DEFAULT_ADDR);
    let server =
        Server::bind(listen, graphs, base, config).map_err(|e| format!("cannot serve: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;

    // Ctrl-C / SIGTERM: the handler only flips a flag; this watcher turns
    // it into a cooperative shutdown (in-flight solves are drained and
    // answered with their interrupt report, not dropped).
    let handle = server.shutdown_handle();
    signals::install();
    std::thread::spawn(move || loop {
        if signals::interrupted() {
            eprintln!("ugraph serve: interrupt received, draining in-flight requests");
            handle.trigger();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });

    eprintln!("ugraph serve: listening on {addr} (protocol v{PROTOCOL_VERSION}), Ctrl-C to stop");
    server.run().map_err(|e| e.to_string())?;
    eprintln!("ugraph serve: drained and stopped");
    Ok(())
}

fn cmd_client(action: &str, o: &Options) -> Result<(), String> {
    let addr = o.connect.as_deref().unwrap_or(DEFAULT_ADDR);
    // Seed the retry jitter from the solve seed so a logged schedule is
    // reproducible with the same invocation.
    let policy =
        RetryPolicy { jitter_seed: o.seed, ..RetryPolicy::with_retries(o.retries.unwrap_or(2)) };
    let mut pool = ClientPool::new(addr, o.connect_pool.unwrap_or(1), policy);
    let result = match action {
        "cluster" => client_cluster(&mut pool, o),
        "stats" => client_stats(&mut pool, o),
        other => Err(format!("unknown client action '{other}' (expected cluster or stats)")),
    };
    if pool.reconnects() > 0 {
        eprintln!(
            "ugraph client: rode over {} reconnect(s) ({} dial(s) to {addr})",
            pool.reconnects(),
            pool.dials()
        );
    }
    result
}

/// Renders a server error frame for the terminal.
fn describe_error(e: &ugraph::server::ErrorFrame) -> String {
    let mut s = format!("server error ({:?}): {}", e.code, e.message);
    if let Some(report) = e.interrupt.as_ref().and_then(|i| i.to_report().ok()) {
        s.push_str(&format!(" [{report}]"));
    }
    s
}

/// Renders an exhausted (or terminal) retry loop for the terminal: the
/// final failure, plus the attempt count when there was more than one.
fn describe_failure(report: &RetryReport) -> String {
    let last = match &report.last_error {
        RetryError::Server(frame) => describe_error(frame),
        RetryError::Protocol(e) => e.to_string(),
    };
    if report.attempts > 1 {
        format!(
            "{last} (gave up after {} attempts, {:.0?} total backoff)",
            report.attempts, report.backoff_slept
        )
    } else {
        last
    }
}

fn client_cluster(pool: &mut ClientPool, o: &Options) -> Result<(), String> {
    let graph = match &o.graph {
        Some(name) => name.clone(),
        // No --graph: ask the server what it has; unambiguous iff there
        // is exactly one graph loaded.
        None => {
            let stats = pool.stats(None).map_err(|e| describe_failure(&e))?;
            match stats.graphs.as_slice() {
                [only] => only.clone(),
                [] => return Err("server has no graphs loaded".into()),
                many => {
                    return Err(format!(
                        "server has several graphs loaded ({}); pass --graph",
                        many.join(", ")
                    ))
                }
            }
        }
    };
    let algo = o.algo.as_deref().unwrap_or("mcp");
    let objective = match algo {
        "mcp" => Objective::MinProb,
        "acp" => Objective::AvgProb,
        other => return Err(format!("expected mcp or acp, got '{other}'")),
    };
    let k = o.k.ok_or("--k is required")?;
    let call = ClusterCall {
        graph: graph.clone(),
        engine: o.engine,
        width: o.block_width,
        objective,
        k: u32::try_from(k).map_err(|_| format!("--k {k} is out of range"))?,
        depth: o.depth.map_or(WireDepth::Unlimited, WireDepth::Uniform),
        deadline_micros: o.timeout.map(|t| t.as_micros() as u64),
    };
    let solve = pool.cluster(&call).map_err(|e| describe_failure(&e))?;
    let clustering = solve.clustering().map_err(|e| e.to_string())?;
    eprintln!(
        "{algo} k={k} on '{graph}': objective est {:.4} (q = {:.4}), {} guesses over {} samples, \
         server time {:.2?}",
        solve.objective_estimate,
        solve.final_q,
        solve.guesses,
        solve.samples_used,
        std::time::Duration::from_micros(solve.elapsed_micros),
    );
    if let Some(report) = solve.interrupt.as_ref().and_then(|i| i.to_report().ok()) {
        eprintln!("warning: best-effort result — {report}");
    }
    match &o.output {
        Some(path) => {
            let f = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            write_clustering(&clustering, f)?;
            eprintln!("wrote {path}");
        }
        None => write_clustering(&clustering, std::io::stdout())?,
    }
    Ok(())
}

fn client_stats(pool: &mut ClientPool, o: &Options) -> Result<(), String> {
    let s = pool.stats(o.graph.as_deref()).map_err(|e| describe_failure(&e))?;
    println!("graphs               {}", s.graphs.join(", "));
    println!("connections          {}", s.connections);
    println!("cluster requests     {}", s.cluster_requests);
    println!("stats requests       {}", s.stats_requests);
    println!("protocol errors      {}", s.protocol_errors);
    println!("admission rejections {}", s.admission_rejections);
    println!("deadline rejections  {}", s.deadline_rejections);
    println!("cancellations        {}", s.cancelled_rejections);
    println!("solve errors         {}", s.solve_errors);
    println!("peer stalls          {}", s.peer_stalled);
    println!("sessions evicted     {}", s.sessions_evicted);
    match s.bytes_limit {
        Some(limit) => println!("memory               {} / {} bytes", s.bytes_held, limit),
        None => println!("memory               {} bytes (unbounded)", s.bytes_held),
    }
    for session in &s.sessions {
        println!(
            "session graph={} engine={} width={} in_flight={}",
            session.graph, session.engine, session.width, session.in_flight
        );
        if !session.kv.is_empty() {
            println!("  {}", session.kv);
        }
    }
    Ok(())
}

/// SIGINT/SIGTERM without any external crate: a minimal `signal(2)`
/// binding whose handler only stores one atomic flag (async-signal-safe);
/// everything else happens on ordinary threads. This FFI lives in the
/// binary — every library crate keeps `#![forbid(unsafe_code)]`.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    /// Whether SIGINT/SIGTERM has arrived since [`install`].
    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }

    #[cfg(unix)]
    extern "C" fn on_signal(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    /// Installs the flag-setting handler for SIGINT and SIGTERM.
    #[cfg(unix)]
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// No signal wiring off unix; Ctrl-C simply kills the process.
    #[cfg(not(unix))]
    pub fn install() {}
}

// ───────────────────────── formats ─────────────────────────

fn write_clustering<W: Write>(c: &Clustering, w: W) -> Result<(), String> {
    let mut out = BufWriter::new(w);
    writeln!(out, "# node\tcluster\tcenter").map_err(|e| e.to_string())?;
    for u in 0..c.num_nodes() {
        let u = NodeId::from_index(u);
        match c.cluster_of(u) {
            Some(cl) => writeln!(out, "{u}\t{cl}\t{}", c.center(cl)),
            None => writeln!(out, "{u}\t-\t-"),
        }
        .map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())
}

fn read_clustering<R: BufRead>(r: R, n: usize) -> Result<Clustering, String> {
    let mut assignment: Vec<Option<u32>> = vec![None; n];
    let mut center_of_cluster: Vec<Option<NodeId>> = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(format!("line {}: expected 'node cluster center'", lineno + 1));
        }
        if fields[1] == "-" {
            continue; // outlier
        }
        let node: u32 = parse_num(fields[0], "node")?;
        let cluster: usize = parse_num(fields[1], "cluster")?;
        let center: u32 = parse_num(fields[2], "center")?;
        if node as usize >= n {
            return Err(format!("line {}: node {node} out of range", lineno + 1));
        }
        if center_of_cluster.len() <= cluster {
            center_of_cluster.resize(cluster + 1, None);
        }
        match center_of_cluster[cluster] {
            None => center_of_cluster[cluster] = Some(NodeId(center)),
            Some(c) if c == NodeId(center) => {}
            Some(c) => {
                return Err(format!(
                    "line {}: cluster {cluster} has two centers ({c} and {center})",
                    lineno + 1
                ))
            }
        }
        assignment[node as usize] = Some(cluster as u32);
    }
    let centers: Result<Vec<NodeId>, String> = center_of_cluster
        .into_iter()
        .enumerate()
        .map(|(i, c)| c.ok_or(format!("cluster {i} never appeared")))
        .collect();
    Ok(Clustering::new(centers?, assignment))
}

fn read_ground_truth<R: BufRead>(r: R, n: usize) -> Result<Vec<Vec<NodeId>>, String> {
    let mut complexes = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut members = Vec::new();
        for tok in line.split_whitespace() {
            let id: u32 = parse_num(tok, "complex member")?;
            if id as usize >= n {
                return Err(format!("line {}: node {id} out of range", lineno + 1));
            }
            members.push(NodeId(id));
        }
        if members.len() >= 2 {
            complexes.push(members);
        }
    }
    Ok(complexes)
}
