//! # ugraph — clustering uncertain graphs
//!
//! A from-scratch Rust implementation of *Clustering Uncertain Graphs*
//! (Ceccarello, Fantozzi, Pietracaprina, Pucci, Vandin — VLDB 2017),
//! including the **MCP** and **ACP** approximation algorithms, the
//! Monte-Carlo reliability oracles they build on, the baselines they are
//! evaluated against (MCL, GMM, KPT), synthetic stand-ins for the paper's
//! datasets, and the full evaluation-metric suite.
//!
//! ## Crate map
//!
//! | module (re-export) | crate (directory) | contents |
//! |---|---|---|
//! | [`graph`] | `ugraph-graph` (`crates/graph`) | uncertain-graph substrate: CSR, union-find, BFS/Dijkstra, worlds, I/O |
//! | [`sampling`] | `ugraph-sampling` (`crates/sampling`) | possible-world sampling, progressive pools, exact + Monte-Carlo oracles |
//! | [`cluster`] | `ugraph-cluster` (`crates/core`) | **the paper's contribution**: `min-partial`, MCP, ACP, depth variants |
//! | [`baselines`] | `ugraph-baselines` (`crates/baselines`) | MCL, GMM (k-center), KPT comparators |
//! | [`datasets`] | `ugraph-datasets` (`crates/datasets`) | Collins/Gavin/Krogan/DBLP-like generators + planted ground truth |
//! | [`metrics`] | `ugraph-metrics` (`crates/metrics`) | `p_min`/`p_avg`, inner/outer-AVPR, TPR/FPR |
//! | [`server`] | `ugraph-server` (`crates/server`) | serve mode: session registry, binary wire protocol, global memory admission |
//!
//! ## Quickstart
//!
//! ```
//! use ugraph::prelude::*;
//!
//! // An uncertain graph: two reliable triangles, one flaky bridge.
//! let mut b = GraphBuilder::new(6);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
//!     b.add_edge(u, v, 0.9).unwrap();
//! }
//! b.add_edge(2, 3, 0.05).unwrap();
//! let g = b.build().unwrap();
//!
//! // Cluster into k = 2 parts maximizing the minimum connection
//! // probability of a node to its cluster center.
//! let result = mcp(&g, 2, &ClusterConfig::default()).unwrap();
//! assert_eq!(result.clustering.num_clusters(), 2);
//! assert!(result.min_prob_estimate > 0.8);
//!
//! // Many requests on one graph? Hold a session: sampled worlds and row
//! // caches carry across requests, each one bit-identical to its
//! // one-shot counterpart.
//! let mut session = UgraphSession::new(&g, ClusterConfig::default()).unwrap();
//! for k in 2..=4 {
//!     let r = session.solve(ClusterRequest::mcp(k)).unwrap();
//!     assert_eq!(r.clustering.num_clusters(), k);
//! }
//! assert!(session.stats().row_cache.hits + session.stats().row_cache.topups > 0);
//! ```
//!
//! See `examples/` for full scenarios (PPI complex prediction,
//! collaboration networks, oracle validation, schedule tuning) and
//! `crates/bench` for the harness that regenerates every table and figure
//! of the paper's evaluation section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not panics; tests,
// benches, and doctests (separate crates / cfg(test) builds) may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub use ugraph_baselines as baselines;
pub use ugraph_cluster as cluster;
pub use ugraph_datasets as datasets;
pub use ugraph_graph as graph;
pub use ugraph_metrics as metrics;
pub use ugraph_sampling as sampling;
pub use ugraph_server as server;

pub mod util;

/// Everything a typical application needs, in one import.
pub mod prelude {
    pub use ugraph_baselines::{gmm, kpt, mcl, KptConfig, MclConfig};
    pub use ugraph_cluster::{
        acp, acp_depth, mcp, mcp_depth, AcpInvocation, AcpResult, ClusterConfig, ClusterError,
        ClusterRequest, Clustering, EngineKind, EvalQuality, GuessStrategy, McpResult, Objective,
        SessionStats, SolveResult, UgraphSession,
    };
    pub use ugraph_datasets::{DatasetSpec, GeneratedDataset, ProbDistribution};
    pub use ugraph_graph::{
        largest_connected_component, DedupPolicy, EdgeId, GraphBuilder, GraphError, NodeId,
        UncertainGraph,
    };
    pub use ugraph_metrics::{avpr, clustering_quality, confusion, depth_clustering_quality};
    pub use ugraph_sampling::{
        BitParallelPool, ComponentPool, ExactOracle, SampleSchedule, WorldEngine, WorldPool,
    };
    pub use ugraph_server::{
        Client, ClientPool, ClusterCall, RetryPolicy, Server, ServerConfig, SessionRegistry,
        WireDepth,
    };
}
