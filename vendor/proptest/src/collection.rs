//! Collection strategies: `vec` and `btree_set` with size ranges.

use core::ops::{Range, RangeInclusive};
use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A range of collection sizes, convertible from `usize` ranges and
/// constants.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut SmallRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a cardinality drawn from `size`.
///
/// The element strategy must be able to produce at least as many distinct
/// values as the requested cardinality; generation retries a bounded number
/// of times before settling for a smaller set.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// See [`btree_set`].
#[derive(Clone, Copy, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(100) + 100 {
            set.insert(self.element.new_value(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = vec(0u32..5, 2..6);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_reaches_target_when_possible() {
        let mut rng = SmallRng::seed_from_u64(4);
        let s = btree_set(0usize..4, 1..4);
        for _ in 0..100 {
            let set = s.new_value(&mut rng);
            assert!((1..4).contains(&set.len()));
        }
    }
}
