//! The test runner driving [`proptest!`](crate::proptest) blocks.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Configuration for a property test (subset of the real crate's knobs).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume` rejections tolerated before the test
    /// errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Self::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a single test case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume` and should not be counted.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejected precondition.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Result of one test-case execution.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives a strategy and a test body for the configured number of cases.
#[derive(Clone, Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: SmallRng,
}

/// The default master seed (digits of pi). Deterministic so CI runs are
/// reproducible; override with the `PROPTEST_SEED` environment variable.
const DEFAULT_SEED: u64 = 0x2438_6744_1BF3_A6A2;

impl TestRunner {
    /// Creates a runner. The RNG seed comes from `PROPTEST_SEED` when set,
    /// otherwise a fixed default.
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(DEFAULT_SEED);
        TestRunner { config, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Runs `test` on `config.cases` generated inputs. Returns the failure
    /// message of the first failing case, if any.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
    where
        S: Strategy,
        S::Value: core::fmt::Debug,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case_index = 0u64;
        while passed < self.config.cases {
            let value = strategy.new_value(&mut self.rng);
            let shown = format!("{value:?}");
            case_index += 1;
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        return Err(format!(
                            "too many prop_assume rejections ({rejected}) after {passed} \
                             passing cases"
                        ));
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    return Err(format!(
                        "property test failed at case #{case_index} \
                         (passed {passed}, rejected {rejected})\n\
                         input: {shown}\n{message}\n\
                         note: re-run with PROPTEST_SEED to explore other inputs; \
                         this vendored proptest does not shrink"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        runner
            .run(&(0u32..100), |x| {
                assert!(x < 100);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn failing_property_reports_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        let err =
            runner
                .run(&(0u32..100), |x| {
                    if x >= 50 {
                        Err(TestCaseError::fail("too big"))
                    } else {
                        Ok(())
                    }
                })
                .unwrap_err();
        assert!(err.contains("too big"), "{err}");
        assert!(err.contains("input:"), "{err}");
    }

    #[test]
    fn rejections_do_not_count_as_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(32));
        let mut executed = 0u32;
        runner
            .run(&(0u32..100), |x| {
                if x % 2 == 0 {
                    return Err(TestCaseError::reject("odd only"));
                }
                executed += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(executed, 32);
    }

    #[test]
    fn too_many_rejects_errors() {
        let mut runner = TestRunner::new(ProptestConfig { cases: 8, max_global_rejects: 16 });
        let err = runner.run(&(0u32..100), |_| Err(TestCaseError::reject("always"))).unwrap_err();
        assert!(err.contains("too many"), "{err}");
    }
}
