//! The [`Strategy`] trait and primitive strategies.
//!
//! A strategy is a recipe for generating random values of some type. Unlike
//! the real proptest, strategies here generate values directly (no
//! intermediate value trees), which means no shrinking — see the crate docs.

use core::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating random test inputs of type
/// [`Self::Value`](Strategy::Value).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing the predicate (counted as
    /// rejections by the runner via regeneration; this implementation simply
    /// retries a bounded number of times).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive values", self.whence);
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut SmallRng) -> S::Value {
        (**self).new_value(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_combinators() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = (1u32..=4).prop_flat_map(|n| (Just(n), 0u32..n));
        for _ in 0..200 {
            let (n, v) = s.new_value(&mut rng);
            assert!((1..=4).contains(&n));
            assert!(v < n);
        }
        let doubled = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(doubled.new_value(&mut rng) % 2, 0);
        }
    }
}
