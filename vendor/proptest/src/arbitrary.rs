//! `any::<T>()` — canonical strategies for primitive types.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniform value of `Self`.
    fn arbitrary_value(rng: &mut SmallRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary_value(rng: &mut SmallRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary_value(rng: &mut SmallRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut SmallRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — the full-range bit soup of the real crate is
    /// rarely what numeric property tests want; every in-repo use is as a
    /// probability or seed.
    fn arbitrary_value(rng: &mut SmallRng) -> Self {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut SmallRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Canonical strategy for `T` (full range for integers, fair coin for
/// `bool`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}
