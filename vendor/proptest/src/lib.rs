//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal subset of proptest's API: the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`] /
//! [`collection::btree_set`], `any::<T>()`, the [`proptest!`] macro with
//! `#![proptest_config(...)]` support, and the `prop_assert*` / `prop_assume`
//! macros.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — failures report the failing input's debug string and
//!   the (deterministic) seed, not a minimized counterexample;
//! * **deterministic seeding** — each test function runs a fixed seed
//!   sequence, so CI results are reproducible; set `PROPTEST_SEED` to explore
//!   a different sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;

/// Everything the `proptest!` macro and typical strategies need.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each `fn name(pat in strategy, ...) { body }` item of a
/// [`proptest!`] block into a test function driven by a
/// [`test_runner::TestRunner`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strategy = ($($strat,)+);
            let result = runner.run(&strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(message) = result {
                panic!("{}", message);
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Fails the current test case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)*);
            }
        }
    };
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), left
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left != *right, $($fmt)*);
            }
        }
    };
}

/// Rejects the current test case (it does not count towards the case total)
/// if the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
