//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small, API-compatible timing harness covering what the `ugraph-bench`
//! targets use: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`, and `Bencher::iter`.
//!
//! Statistics are deliberately simple: each benchmark runs a calibration
//! pass to pick an iteration count, then `sample_size` timed samples, and
//! reports min / median / mean per-iteration time (plus throughput when
//! configured). There are no plots, no outlier analysis, and no saved
//! baselines — but the numbers are honest wall-clock measurements, good
//! enough for the A/B comparisons the benches make.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

/// Top-level benchmark driver. One per binary, created by
/// [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    /// Substring filter from the command line (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` (and possibly a filter string) to
        // harness=false bench binaries; keep anything that is not a flag as
        // a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { sample_size: 30, measurement_time: Duration::from_millis(600), filter }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            measurement_time: None,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        if self.matches(&label) {
            let report = run_benchmark(&mut f, self.sample_size, self.measurement_time);
            print_report(&label, &report, None);
        }
        self
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }
}

/// A group of benchmarks sharing a name prefix and measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Declares how much work one iteration performs, enabling throughput
    /// reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        if self.criterion.matches(&label) {
            let report = run_benchmark(
                &mut f,
                self.sample_size.unwrap_or(self.criterion.sample_size),
                self.measurement_time.unwrap_or(self.criterion.measurement_time),
            );
            print_report(&label, &report, self.throughput.as_ref());
        }
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (purely cosmetic in this harness).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs the timed routine.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Iterations to run in the current sample (set by the harness).
    iters: u64,
    /// Measured duration of the last [`Bencher::iter`] call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug)]
struct Report {
    min: Duration,
    median: Duration,
    mean: Duration,
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    f: &mut F,
    sample_size: usize,
    measurement_time: Duration,
) -> Report {
    // Calibration: find an iteration count so one sample takes roughly
    // measurement_time / sample_size.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let mut per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target_sample = (measurement_time / sample_size as u32).max(Duration::from_micros(200));
    let mut iters =
        (target_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.iters = iters;
        f(&mut bencher);
        samples.push(bencher.elapsed / iters as u32);
        // Light re-calibration guards against a wildly wrong first estimate.
        per_iter = bencher.elapsed.checked_div(iters as u32).unwrap_or(per_iter);
        if per_iter > Duration::ZERO {
            iters =
                (target_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;
        }
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    Report { min, median, mean }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn print_report(label: &str, report: &Report, throughput: Option<&Throughput>) {
    let mut line = format!(
        "  {label:<40} min {:>10}  median {:>10}  mean {:>10}",
        format_duration(report.min),
        format_duration(report.median),
        format_duration(report.mean),
    );
    if let Some(t) = throughput {
        let per_second = |count: u64| count as f64 / report.median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  [{:.3e} elem/s]", per_second(*n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  [{:.3e} B/s]", per_second(*n)));
            }
        }
    }
    println!("{line}");
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs this group's benchmark functions.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs this group's benchmark functions.
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the `main` function of a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(2);
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
