//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible subset of `rand 0.8`
//! covering exactly what the `ugraph` crates use:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`, `fill_bytes`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::SmallRng`], here implemented as xoshiro256++ (the same family
//!   the real `SmallRng` uses on 64-bit platforms) seeded via SplitMix64.
//!
//! The streams are high-quality and deterministic, but **not** bit-identical
//! to the real `rand` crate; all reproducibility contracts in this workspace
//! are stated relative to this implementation. Swapping in the real crate
//! only requires deleting this vendor directory and re-pointing the
//! workspace dependency at crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The backing source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`].
///
/// Stands in for `Standard: Distribution<T>` of the real crate.
pub trait Standard: Sized {
    /// Draws a uniform value of `Self`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Uniform on the closed interval: scale a 53-bit draw by span/(2^53-1).
        let ticks = (rng.next_u64() >> 11) as f64;
        lo + ticks * ((hi - lo) / ((1u64 << 53) - 1) as f64)
    }
}

/// Unbiased uniform draw from `[0, span)` by zone rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // 2^64 mod span == ((u64::MAX mod span) + 1) mod span; draws landing in
    // the final partial cycle [2^64 - rem, 2^64) would bias the modulus.
    let rem = ((u64::MAX % span) + 1) % span;
    let accept_max = u64::MAX - rem;
    loop {
        let v = rng.next_u64();
        if v <= accept_max {
            return v % span;
        }
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (`f64` in `[0, 1)`, full range for
    /// integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: **xoshiro256++**.
    ///
    /// Mirrors the role of `rand::rngs::SmallRng` (which is also
    /// xoshiro256++ on 64-bit targets), without promising identical
    /// streams.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = SmallRng::seed_from_u64(2);
        let mean: f64 = (0..100_000).map(|_| r.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(5usize..=17);
            assert!((5..=17).contains(&w));
            let x = r.gen_range(-1.5f64..=2.5);
            assert!((-1.5..=2.5).contains(&x));
        }
    }

    #[test]
    fn range_draws_cover_all_values() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
