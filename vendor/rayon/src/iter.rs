//! Parallel iterator subset: indexed sources, the `map` / `map_init`
//! adaptors, and the `collect` / `reduce` / `sum` / `for_each` consumers.
//!
//! Pipelines are driven chunk-wise: a consumer splits the index space into
//! one contiguous range per worker, and each worker streams its range
//! through the adaptor stack via [`ParallelIterator::drive`] — no
//! intermediate buffers between adaptors, and `map_init` state is created
//! once per worker chunk exactly like real rayon creates it once per job.

use std::ops::Range;

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice,
    };
}

/// Splits `0..len` into one contiguous chunk per worker and runs `worker`
/// on scoped threads, returning the per-chunk results in chunk order.
fn run_chunked<R, W>(len: usize, worker: W) -> Vec<R>
where
    R: Send,
    W: Fn(Range<usize>) -> R + Sync,
{
    let threads = crate::current_num_threads().min(len.max(1));
    if threads <= 1 {
        return vec![worker(0..len)];
    }
    let chunk = len.div_ceil(threads);
    let mut results = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(len);
            if lo >= hi {
                break;
            }
            let worker = &worker;
            handles.push(scope.spawn(move || worker(lo..hi)));
        }
        for handle in handles {
            results.push(handle.join().expect("parallel worker panicked"));
        }
    });
    results
}

/// An indexed parallel pipeline: a known length plus a chunk driver that
/// streams the elements of an index range into a visitor.
pub trait ParallelIterator: Sized + Send + Sync {
    /// The element type produced by the pipeline.
    type Item: Send;

    /// Number of elements.
    fn len(&self) -> usize;

    /// Whether the pipeline is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Streams the elements with indices in `range` (in order) into
    /// `visitor`. Called once per worker chunk.
    fn drive(&self, range: Range<usize>, visitor: &mut dyn FnMut(Self::Item));

    /// Transforms every element with `f`.
    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Send + Sync,
    {
        Map { inner: self, f }
    }

    /// Like [`map`](ParallelIterator::map), but hands the closure exclusive
    /// access to per-worker state built by `init` — the idiomatic way to
    /// reuse scratch buffers (`map_init` in real rayon).
    fn map_init<T, O, INIT, F>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        O: Send,
        INIT: Fn() -> T + Send + Sync,
        F: Fn(&mut T, Self::Item) -> O + Send + Sync,
    {
        MapInit { inner: self, init, f }
    }

    /// Collects the elements, preserving order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Folds the elements with `op`, seeding every chunk with `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let partials = run_chunked(self.len(), |range| {
            let mut accumulator = Some(identity());
            self.drive(range, &mut |item| {
                let acc = accumulator.take().expect("reduce accumulator");
                accumulator = Some(op(acc, item));
            });
            accumulator.expect("reduce accumulator")
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Sums the elements.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        run_chunked(self.len(), |range| {
            let mut items = Vec::with_capacity(range.len());
            self.drive(range, &mut |item| items.push(item));
            items.into_iter().sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// Runs `f` on every element.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_chunked(self.len(), |range| {
            self.drive(range, &mut |item| f(item));
        });
    }
}

/// Conversion into a parallel pipeline (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;

    /// Converts `self` into a parallel pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` sugar for by-reference parallel iteration.
pub trait IntoParallelRefIterator<'a> {
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a reference).
    type Item: Send + 'a;

    /// Parallel iteration over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    type Item = <&'a C as IntoParallelIterator>::Item;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Types a parallel pipeline can be collected into.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from the pipeline, preserving element order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        let len = iter.len();
        let chunks = run_chunked(len, |range| {
            let mut out = Vec::with_capacity(range.len());
            iter.drive(range, &mut |item| out.push(item));
            out
        });
        let mut all = Vec::with_capacity(len);
        for chunk in chunks {
            all.extend(chunk);
        }
        all
    }
}

/// See [`ParallelIterator::map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<P, F> {
    inner: P,
    f: F,
}

impl<P, O, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    O: Send,
    F: Fn(P::Item) -> O + Send + Sync,
{
    type Item = O;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn drive(&self, range: Range<usize>, visitor: &mut dyn FnMut(O)) {
        self.inner.drive(range, &mut |item| visitor((self.f)(item)));
    }
}

/// See [`ParallelIterator::map_init`].
#[derive(Clone, Copy, Debug)]
pub struct MapInit<P, INIT, F> {
    inner: P,
    init: INIT,
    f: F,
}

impl<P, T, O, INIT, F> ParallelIterator for MapInit<P, INIT, F>
where
    P: ParallelIterator,
    O: Send,
    INIT: Fn() -> T + Send + Sync,
    F: Fn(&mut T, P::Item) -> O + Send + Sync,
{
    type Item = O;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn drive(&self, range: Range<usize>, visitor: &mut dyn FnMut(O)) {
        let mut state = (self.init)();
        self.inner.drive(range, &mut |item| visitor((self.f)(&mut state, item)));
    }
}

/// Parallel pipeline over an integer range.
#[derive(Clone, Copy, Debug)]
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }

        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                self.len
            }

            fn drive(&self, range: Range<usize>, visitor: &mut dyn FnMut($t)) {
                for i in range {
                    visitor(self.start + i as $t);
                }
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize);

/// Parallel pipeline over slice elements.
#[derive(Debug)]
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn drive(&self, range: Range<usize>, visitor: &mut dyn FnMut(&'a T)) {
        for item in &self.slice[range] {
            visitor(item);
        }
    }
}

/// `par_chunks` support for slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iteration over non-overlapping sub-slices of length
    /// `chunk_size` (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ChunksIter<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksIter { slice: self, chunk_size }
    }
}

/// See [`ParallelSlice::par_chunks`].
#[derive(Debug)]
pub struct ChunksIter<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn drive(&self, range: Range<usize>, visitor: &mut dyn FnMut(&'a [T])) {
        for index in range {
            let lo = index * self.chunk_size;
            let hi = (lo + self.chunk_size).min(self.slice.len());
            visitor(&self.slice[lo..hi]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_map_collect_preserves_order() {
        let squares: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &s) in squares.iter().enumerate() {
            assert_eq!(s, (i * i) as u64);
        }
    }

    #[test]
    fn slice_par_iter_sum() {
        let values: Vec<u64> = (0..10_000).collect();
        let total: u64 = values.par_iter().map(|&v| v).sum();
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn par_chunks_cover_slice() {
        let values: Vec<u32> = (0..107).collect();
        let chunk_sums: Vec<u32> = values.par_chunks(10).map(|c| c.iter().sum::<u32>()).collect();
        assert_eq!(chunk_sums.len(), 11);
        assert_eq!(chunk_sums.iter().sum::<u32>(), values.iter().sum::<u32>());
    }

    #[test]
    fn reduce_merges_chunk_accumulators() {
        let values: Vec<u64> = (1..=100).collect();
        let max = values.par_iter().map(|&x| x).reduce(|| 0, |a, b| a.max(b));
        assert_eq!(max, 100);
    }

    #[test]
    fn map_init_builds_state_once_per_chunk() {
        let inits = AtomicUsize::new(0);
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0usize..1000)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        Vec::<usize>::new()
                    },
                    |scratch, i| {
                        scratch.push(i);
                        i * 2
                    },
                )
                .collect()
        });
        assert_eq!(out, (0usize..1000).map(|i| i * 2).collect::<Vec<_>>());
        let count = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&count), "init ran {count} times");
    }

    #[test]
    fn empty_range_collects_empty() {
        let v: Vec<u64> = (5u64..5).into_par_iter().map(|i| i * 2).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn respects_installed_thread_count() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let a: Vec<u64> = pool.install(|| (0u64..100).into_par_iter().map(|i| i * 3).collect());
        let pool8 = crate::ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let b: Vec<u64> = pool8.install(|| (0u64..100).into_par_iter().map(|i| i * 3).collect());
        assert_eq!(a, b);
    }
}
