//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! data-parallelism crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small, API-compatible subset of rayon sufficient for the sampling hot
//! path: `par_iter` / `into_par_iter` over slices and integer ranges,
//! `par_chunks`, the `map` adaptor, the `collect` / `reduce` / `sum` /
//! `for_each` consumers, and [`ThreadPoolBuilder`] / [`ThreadPool::install`]
//! for scoped control of the worker count.
//!
//! The execution model is simpler than real rayon — no work stealing; each
//! consumer splits its index space into one contiguous chunk per worker and
//! runs the chunks on [`std::thread::scope`] threads — but it is genuinely
//! parallel, preserves item order in `collect`, and honors
//! `ThreadPool::install` nesting. Code written against this subset compiles
//! unchanged against the real crate.

#![warn(missing_docs)]

use std::cell::Cell;
use std::num::NonZeroUsize;

pub mod iter;
pub use iter::prelude;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel consumers will use in the current
/// context: the innermost [`ThreadPool::install`] override, or the number of
/// available CPUs.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(Cell::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1))
}

/// Error building a thread pool (this implementation cannot actually fail;
/// the type exists for API compatibility).
#[derive(Clone, Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings (all available cores).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means "all available cores".
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A handle fixing the worker count for parallel work run inside
/// [`ThreadPool::install`].
///
/// Unlike real rayon there are no persistent worker threads — workers are
/// scoped threads spawned per consumer — so building a pool is free.
#[derive(Clone, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's worker count governing all parallel
    /// consumers invoked inside it (on this thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|cell| {
            let previous = cell.replace(Some(self.threads));
            let result = op();
            cell.set(previous);
            result
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_overrides_and_restores() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
