//! DBLP-like collaboration-graph generator.
//!
//! The paper derives its large benchmark from DBLP: authors are nodes, an
//! edge joins two authors with `x` co-authored journal papers, and the
//! edge probability is `p = 1 − e^(−x/2)` (the Potamias et al. convention).
//! The resulting distribution is discrete: ≈ 80 % of the edges have
//! `x = 1` (`p ≈ 0.39`), ≈ 12 % have `x = 2` (`p ≈ 0.63`) and the
//! remaining ≈ 8 % have `x ≥ 3` (§5, Table 1: 636 751 nodes / 2 366 461
//! edges in the largest connected component).
//!
//! The generator reproduces (a) that probability distribution exactly and
//! (b) the community-structured, heavy-tailed topology of co-authorship
//! networks, with a growth model: each new author joins a random research
//! community, co-authors with `1 + Geom` members of it chosen by
//! preferential attachment (guaranteeing connectivity), and occasionally
//! collaborates across communities. A `scale` factor shrinks the node
//! count for laptop-sized experiments while preserving average degree —
//! the benchmark harness defaults to `scale = 0.1` and documents it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ugraph_graph::{DedupPolicy, GraphBuilder, UncertainGraph};

/// Parameters of the DBLP-like generator.
#[derive(Clone, Debug, PartialEq)]
pub struct DblpConfig {
    /// Scale factor on the published node count (1.0 = 636 751 authors).
    pub scale: f64,
    /// Number of research communities (scaled alongside nodes).
    pub communities_per_kilonode: f64,
    /// Probability that a collaboration crosses communities.
    pub cross_community: f64,
    /// Mean of the geometric "extra collaborators per new author" draw;
    /// tunes the edge/node ratio (paper: ≈ 3.72 edges per node).
    pub extra_collaborators_mean: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            scale: 0.1,
            communities_per_kilonode: 2.0,
            cross_community: 0.05,
            extra_collaborators_mean: 2.7,
            seed: 0,
        }
    }
}

/// Published size of the DBLP largest connected component (paper Table 1).
pub const DBLP_PAPER_NODES: usize = 636_751;
/// Published edge count of the DBLP LCC (paper Table 1).
pub const DBLP_PAPER_EDGES: usize = 2_366_461;

/// Draws the number of co-authored papers `x ≥ 1` with the published
/// frequencies: 80 % x=1, 12 % x=2, 8 % tail (x = 3 + Geom(0.5)).
fn sample_paper_count(rng: &mut SmallRng) -> u32 {
    let u: f64 = rng.gen();
    if u < 0.80 {
        1
    } else if u < 0.92 {
        2
    } else {
        let mut x = 3u32;
        while rng.gen::<f64>() < 0.5 && x < 30 {
            x += 1;
        }
        x
    }
}

/// The Potamias et al. probability of an edge with `x` joint papers.
#[inline]
pub fn collaboration_prob(x: u32) -> f64 {
    1.0 - (-0.5 * f64::from(x)).exp()
}

/// Generates the DBLP-like uncertain collaboration graph.
pub fn dblp_like(cfg: &DblpConfig) -> UncertainGraph {
    assert!(cfg.scale > 0.0 && cfg.scale <= 1.0, "scale must be in (0, 1]");
    let n = ((DBLP_PAPER_NODES as f64) * cfg.scale).round().max(10.0) as usize;
    let num_communities =
        ((n as f64 / 1000.0 * cfg.communities_per_kilonode).round() as usize).max(1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Community member lists; membership entries are repeated per
    // collaboration so sampling from the list is degree-biased
    // (preferential attachment without an explicit degree array).
    let mut community_members: Vec<Vec<u32>> = vec![Vec::new(); num_communities];
    let mut b = GraphBuilder::with_capacity(n, n * 4).with_dedup(DedupPolicy::KeepMax);

    // Geometric success probability for "extra collaborators".
    let geo_p = 1.0 / (1.0 + cfg.extra_collaborators_mean);

    for u in 0..n as u32 {
        let home = rng.gen_range(0..num_communities);
        if community_members[home].is_empty() {
            community_members[home].push(u);
            // First author of a community: link to a random earlier author
            // to keep the graph connected (skip the very first author).
            if u > 0 {
                let v = rng.gen_range(0..u);
                let x = sample_paper_count(&mut rng);
                b.add_edge(u, v, collaboration_prob(x))
                    .unwrap_or_else(|e| unreachable!("generated edge is valid: {e}"));
            }
            continue;
        }
        // 1 + Geom(mean) collaborators from the home community (or across).
        let mut collaborators = 1usize;
        while rng.gen::<f64>() > geo_p {
            collaborators += 1;
        }
        for _ in 0..collaborators {
            let pool = if rng.gen::<f64>() < cfg.cross_community {
                let c = rng.gen_range(0..num_communities);
                if community_members[c].is_empty() {
                    home
                } else {
                    c
                }
            } else {
                home
            };
            let list = &community_members[pool];
            let v = list[rng.gen_range(0..list.len())];
            if v != u {
                let x = sample_paper_count(&mut rng);
                b.add_edge(u, v, collaboration_prob(x))
                    .unwrap_or_else(|e| unreachable!("generated edge is valid: {e}"));
                community_members[pool].push(v); // degree bias
            }
        }
        community_members[home].push(u);
    }
    b.build().unwrap_or_else(|e| unreachable!("DBLP build cannot fail: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::connected_components;

    fn tiny() -> UncertainGraph {
        dblp_like(&DblpConfig { scale: 0.01, seed: 7, ..Default::default() })
    }

    #[test]
    fn probability_levels_match_formula() {
        assert!((collaboration_prob(1) - 0.3934693402873666).abs() < 1e-12);
        assert!((collaboration_prob(2) - 0.6321205588285577).abs() < 1e-12);
        assert!((collaboration_prob(5) - 0.9179150013761012).abs() < 1e-12);
    }

    #[test]
    fn scale_controls_node_count() {
        let g = tiny();
        let want = (DBLP_PAPER_NODES as f64 * 0.01).round() as usize;
        assert_eq!(g.num_nodes(), want);
    }

    #[test]
    fn graph_is_connected() {
        let g = tiny();
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn probability_mass_matches_published_distribution() {
        let g = tiny();
        let m = g.num_edges() as f64;
        let p1 = collaboration_prob(1);
        let at_p1 = g.probs().iter().filter(|&&p| (p - p1).abs() < 1e-9).count() as f64 / m;
        // Dedup keeps the max of parallel draws, so the x = 1 share lands a
        // little under the raw 80 %.
        assert!(at_p1 > 0.65, "x=1 share {at_p1}");
        let p2 = collaboration_prob(2);
        let at_p2 = g.probs().iter().filter(|&&p| (p - p2).abs() < 1e-9).count() as f64 / m;
        assert!(at_p2 > 0.08 && at_p2 < 0.25, "x=2 share {at_p2}");
        let higher = g.probs().iter().filter(|&&p| p > p2 + 1e-9).count() as f64 / m;
        assert!(higher < 0.2, "x≥3 share {higher}");
    }

    #[test]
    fn average_degree_near_published_ratio() {
        let g = tiny();
        let avg_deg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        let published = 2.0 * DBLP_PAPER_EDGES as f64 / DBLP_PAPER_NODES as f64; // ≈ 7.43
        assert!(
            (avg_deg - published).abs() < 2.5,
            "generated avg degree {avg_deg} vs published {published}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.probs(), b.probs());
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        let _ = dblp_like(&DblpConfig { scale: 0.0, ..Default::default() });
    }
}
