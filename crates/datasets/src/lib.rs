//! # ugraph-datasets — synthetic stand-ins for the paper's datasets
//!
//! The evaluation of *Clustering Uncertain Graphs* (VLDB 2017, §5) uses
//! three protein-protein-interaction networks — **Collins**, **Gavin**,
//! **Krogan** — a **DBLP** co-authorship graph, and the hand-curated MIPS
//! complex ground truth. None of those files can be redistributed here, so
//! this crate generates synthetic equivalents that match the *published*
//! structural statistics (paper Table 1) and edge-probability
//! distributions (§5), which are the two properties the algorithms
//! actually see:
//!
//! | paper dataset | published traits | generator |
//! |---|---|---|
//! | Collins (1004 n / 8323 e) | mostly high-probability edges | [`ppi`] + [`ProbDistribution::HighConfidence`] |
//! | Gavin (1727 n / 7534 e) | mostly low-probability edges | [`ppi`] + [`ProbDistribution::LowConfidence`] |
//! | Krogan (2559 n / 7031 e) | ¼ of edges `p > 0.9`, rest ≈ uniform on (0.27, 0.9) | [`ppi`] + [`ProbDistribution::KroganMixture`] |
//! | DBLP (636751 n / 2366461 e) | `p = 1 − e^(−x/2)`, x = #joint papers; ≈80 % x=1, 12 % x=2, 8 % x≥3 | [`dblp`] |
//! | MIPS complexes | ground-truth protein complexes | planted complexes exported by [`ppi`] |
//!
//! The PPI generator **plants complexes** (dense subgraphs) and returns
//! them as ground truth, substituting for MIPS in the Table 2 experiment.
//! Every generator is deterministic under its seed. [`DatasetSpec`] wraps
//! the four paper datasets (largest connected component extracted, as in
//! the paper) behind one entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not panics; tests,
// benches, and doctests (separate crates / cfg(test) builds) may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod dblp;
pub mod ppi;
pub mod prob;
pub mod random;
pub mod spec;

pub use dblp::{dblp_like, DblpConfig};
pub use ppi::{ppi_like, PpiConfig, PpiDataset};
pub use prob::ProbDistribution;
pub use random::{erdos_renyi, planted_partition, PlantedPartitionConfig};
pub use spec::{DatasetSpec, GeneratedDataset};
