//! Edge-probability distributions calibrated to the paper's descriptions.

use rand::rngs::SmallRng;
use rand::Rng;

/// A distribution over edge existence probabilities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbDistribution {
    /// Collins-like (§5: "mostly comprising high-probability edges"):
    /// `p = 1 − 0.75·u³` for `u ~ U(0,1)` — median ≈ 0.91, ≈ 51 % of edges
    /// above 0.9, thin tail down to 0.25.
    HighConfidence,
    /// Gavin-like (§5: "most edges are associated to low probabilities"):
    /// `p = 0.05 + 0.9·u³` — median ≈ 0.16, ≈ 70 % of edges below 0.4.
    LowConfidence,
    /// Krogan-CORE-like (§5: "one fourth of the edges with probability
    /// greater than 0.9, and the others almost uniformly distributed
    /// between 0.27 and 0.9"): with probability ¼ uniform on (0.9, 1.0],
    /// else uniform on (0.27, 0.9).
    KroganMixture,
    /// Uniform on `[lo, hi]` (both in `(0, 1]`).
    Uniform(f64, f64),
    /// Every edge gets the same probability.
    Fixed(f64),
    /// Generic two-band mixture: with probability `frac_high` uniform on
    /// `[high.0, high.1]`, else uniform on `[low.0, low.1]`. Generalizes
    /// [`ProbDistribution::KroganMixture`] so dataset generators can split
    /// the high-confidence band between complex and background edges while
    /// preserving the published overall histogram.
    TwoBand {
        /// Probability of drawing from the high band.
        frac_high: f64,
        /// Inclusive bounds of the high band.
        high: (f64, f64),
        /// Inclusive bounds of the low band.
        low: (f64, f64),
    },
}

impl ProbDistribution {
    /// Draws one probability.
    pub fn sample(&self, rng: &mut SmallRng) -> f64 {
        match *self {
            ProbDistribution::HighConfidence => {
                let u: f64 = rng.gen();
                1.0 - 0.75 * u * u * u
            }
            ProbDistribution::LowConfidence => {
                let u: f64 = rng.gen();
                0.05 + 0.9 * u * u * u
            }
            ProbDistribution::KroganMixture => {
                if rng.gen::<f64>() < 0.25 {
                    0.9 + 0.1 * rng.gen::<f64>()
                } else {
                    0.27 + 0.63 * rng.gen::<f64>()
                }
            }
            ProbDistribution::Uniform(lo, hi) => {
                debug_assert!(0.0 < lo && lo <= hi && hi <= 1.0);
                lo + (hi - lo) * rng.gen::<f64>()
            }
            ProbDistribution::Fixed(p) => p,
            ProbDistribution::TwoBand { frac_high, high, low } => {
                let (lo, hi) = if rng.gen::<f64>() < frac_high { high } else { low };
                lo + (hi - lo) * rng.gen::<f64>()
            }
        }
        .clamp(f64::MIN_POSITIVE, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn draws(dist: ProbDistribution, n: usize) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(42);
        (0..n).map(|_| dist.sample(&mut rng)).collect()
    }

    #[test]
    fn all_distributions_stay_in_range() {
        for dist in [
            ProbDistribution::HighConfidence,
            ProbDistribution::LowConfidence,
            ProbDistribution::KroganMixture,
            ProbDistribution::Uniform(0.2, 0.8),
            ProbDistribution::Fixed(0.5),
        ] {
            for p in draws(dist, 5000) {
                assert!(p > 0.0 && p <= 1.0, "{dist:?} produced {p}");
            }
        }
    }

    #[test]
    fn high_confidence_is_mostly_high() {
        let ps = draws(ProbDistribution::HighConfidence, 20_000);
        let above_09 = ps.iter().filter(|&&p| p > 0.9).count() as f64 / ps.len() as f64;
        assert!(above_09 > 0.4, "only {above_09:.2} of mass above 0.9");
        let mean = ps.iter().sum::<f64>() / ps.len() as f64;
        assert!(mean > 0.75, "mean {mean}");
    }

    #[test]
    fn low_confidence_is_mostly_low() {
        let ps = draws(ProbDistribution::LowConfidence, 20_000);
        let below_04 = ps.iter().filter(|&&p| p < 0.4).count() as f64 / ps.len() as f64;
        assert!(below_04 > 0.6, "only {below_04:.2} of mass below 0.4");
    }

    #[test]
    fn krogan_mixture_matches_published_shape() {
        let ps = draws(ProbDistribution::KroganMixture, 40_000);
        let high = ps.iter().filter(|&&p| p > 0.9).count() as f64 / ps.len() as f64;
        assert!((high - 0.25).abs() < 0.02, "high fraction {high}");
        let mid =
            ps.iter().filter(|&&p| (0.27..=0.9).contains(&p)).count() as f64 / ps.len() as f64;
        assert!(mid > 0.7, "mid fraction {mid}");
        assert!(ps.iter().all(|&p| p >= 0.27));
    }

    #[test]
    fn uniform_and_fixed() {
        let ps = draws(ProbDistribution::Uniform(0.3, 0.6), 5000);
        assert!(ps.iter().all(|&p| (0.3..=0.6).contains(&p)));
        let mean = ps.iter().sum::<f64>() / ps.len() as f64;
        assert!((mean - 0.45).abs() < 0.01);
        assert!(draws(ProbDistribution::Fixed(0.7), 10).iter().all(|&p| p == 0.7));
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(
            draws(ProbDistribution::KroganMixture, 100),
            draws(ProbDistribution::KroganMixture, 100)
        );
    }
}
