//! One-stop dataset specifications mirroring the paper's Table 1.
//!
//! Each spec generates its synthetic graph, extracts the **largest
//! connected component** (the paper clusters LCCs only), and remaps any
//! planted ground truth into LCC-local node ids.

use ugraph_graph::{largest_connected_component, NodeId, UncertainGraph};

use crate::dblp::{dblp_like, DblpConfig};
use crate::ppi::{ppi_like, PpiConfig};
use crate::prob::ProbDistribution;

/// The four evaluation datasets (synthetic `-like` counterparts).
#[derive(Clone, Debug, PartialEq)]
pub enum DatasetSpec {
    /// Collins-like PPI: 1004 nodes / 8323 edges, high-probability edges.
    Collins,
    /// Gavin-like PPI: 1727 nodes / 7534 edges, low-probability edges.
    Gavin,
    /// Krogan-CORE-like PPI: 2559 nodes / 7031 edges, mixture distribution.
    Krogan,
    /// DBLP-like collaboration graph; `scale = 1.0` targets the published
    /// 636 751 nodes / 2 366 461 edges.
    Dblp {
        /// Fraction of the published node count to generate.
        scale: f64,
    },
    /// Sparse Erdős–Rényi instance at expected degree 8 with uniform
    /// `[0.1, 0.9]` edge probabilities — the scaling benches' input
    /// (Figure 4's size axis). Built by geometric skip sampling
    /// ([`crate::erdos_renyi`]), so generation is `O(n + m)` and graphs of
    /// hundreds of thousands of nodes are practical.
    LargeSparse {
        /// Number of nodes before the LCC cut.
        nodes: usize,
    },
}

/// A generated dataset: LCC graph, name, and optional planted complexes
/// (in LCC-local ids).
#[derive(Clone, Debug)]
pub struct GeneratedDataset {
    /// Dataset display name (with the `-like` suffix, as these are
    /// synthetic substitutes).
    pub name: String,
    /// The largest connected component of the generated graph.
    pub graph: UncertainGraph,
    /// Planted complexes in LCC-local node ids (PPI datasets only);
    /// complexes reduced below 2 members by the LCC cut are dropped.
    pub ground_truth: Option<Vec<Vec<NodeId>>>,
}

impl DatasetSpec {
    /// Published Table 1 targets `(nodes, edges)` for this dataset.
    pub fn paper_size(&self) -> (usize, usize) {
        match self {
            DatasetSpec::Collins => (1004, 8323),
            DatasetSpec::Gavin => (1727, 7534),
            DatasetSpec::Krogan => (2559, 7031),
            DatasetSpec::Dblp { .. } => {
                (crate::dblp::DBLP_PAPER_NODES, crate::dblp::DBLP_PAPER_EDGES)
            }
            // Not a Table 1 dataset: expected degree 8 ⇒ m = 4n.
            DatasetSpec::LargeSparse { nodes } => (*nodes, 4 * nodes),
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            DatasetSpec::Collins => "Collins-like".to_string(),
            DatasetSpec::Gavin => "Gavin-like".to_string(),
            DatasetSpec::Krogan => "Krogan-like".to_string(),
            DatasetSpec::Dblp { scale } => format!("DBLP-like(x{scale})"),
            DatasetSpec::LargeSparse { nodes } => format!("LargeSparse({nodes})"),
        }
    }

    /// Generates the dataset under `seed`.
    pub fn generate(&self, seed: u64) -> GeneratedDataset {
        match self {
            // PPI configurations are calibrated so the generated LCC sizes
            // land on the published (nodes, edges) targets: the spanning
            // chain contributes n−1 edges, complexes contribute
            // density·Σ C(s,2), the rest is background.
            DatasetSpec::Collins => {
                // Target 1004 n / 8323 e; Collins is dense (avg deg 16.6)
                // with pronounced complexes.
                self.build_ppi(PpiConfig {
                    num_proteins: 1004,
                    num_complexes: 60,
                    complex_size_range: (5, 12),
                    intra_density: 0.85,
                    background_edges: 7050,
                    prob_dist: ProbDistribution::HighConfidence,
                    intra_prob_dist: ProbDistribution::Uniform(0.9, 1.0),
                    seed,
                })
            }
            DatasetSpec::Gavin => {
                // Target 1727 n / 7534 e (avg deg 8.7), low probabilities.
                self.build_ppi(PpiConfig {
                    num_proteins: 1727,
                    num_complexes: 70,
                    complex_size_range: (4, 10),
                    intra_density: 0.7,
                    background_edges: 6680,
                    prob_dist: ProbDistribution::LowConfidence,
                    intra_prob_dist: ProbDistribution::TwoBand {
                        frac_high: 0.3,
                        high: (0.5, 0.9),
                        low: (0.08, 0.45),
                    },
                    seed,
                })
            }
            DatasetSpec::Krogan => {
                // Target 2559 n / 7031 e (avg deg 5.5), mixture distribution.
                self.build_ppi(PpiConfig {
                    num_proteins: 2559,
                    num_complexes: 90,
                    complex_size_range: (4, 9),
                    intra_density: 0.6,
                    // Overall histogram stays on the published Krogan
                    // mixture (~25% above 0.9): complexes take the high
                    // band, the background keeps a thinner high share.
                    background_edges: 5850,
                    prob_dist: ProbDistribution::TwoBand {
                        frac_high: 0.125,
                        high: (0.9, 1.0),
                        low: (0.27, 0.9),
                    },
                    intra_prob_dist: ProbDistribution::Uniform(0.88, 1.0),
                    seed,
                })
            }
            DatasetSpec::Dblp { scale } => {
                let g = dblp_like(&DblpConfig { scale: *scale, seed, ..Default::default() });
                let lcc = largest_connected_component(&g);
                GeneratedDataset { name: self.name(), graph: lcc.graph, ground_truth: None }
            }
            DatasetSpec::LargeSparse { nodes } => {
                // Expected degree 8 keeps the LCC near-total while the graph
                // stays sparse enough to sample at any size.
                let p = 8.0 / (*nodes as f64 - 1.0).max(1.0);
                let g = crate::erdos_renyi(
                    *nodes,
                    p.min(1.0),
                    ProbDistribution::Uniform(0.1, 0.9),
                    seed,
                );
                let lcc = largest_connected_component(&g);
                GeneratedDataset { name: self.name(), graph: lcc.graph, ground_truth: None }
            }
        }
    }

    fn build_ppi(&self, cfg: PpiConfig) -> GeneratedDataset {
        let dataset = ppi_like(&cfg);
        let lcc = largest_connected_component(&dataset.graph);
        let to_local = lcc.original_to_local(dataset.graph.num_nodes());
        let ground_truth: Vec<Vec<NodeId>> = dataset
            .complexes
            .iter()
            .map(|complex| complex.iter().filter_map(|&p| to_local[p.index()]).collect::<Vec<_>>())
            .filter(|c: &Vec<NodeId>| c.len() >= 2)
            .collect();
        GeneratedDataset { name: self.name(), graph: lcc.graph, ground_truth: Some(ground_truth) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::{connected_components, GraphStats};

    #[test]
    fn ppi_specs_land_near_published_sizes() {
        for spec in [DatasetSpec::Collins, DatasetSpec::Gavin, DatasetSpec::Krogan] {
            let d = spec.generate(1);
            let (want_n, want_m) = spec.paper_size();
            let n = d.graph.num_nodes();
            let m = d.graph.num_edges();
            // Within 5% of the published node count and 15% of the edges
            // (dedup between complex/background/chain edges adds noise).
            assert!(
                (n as f64 - want_n as f64).abs() / want_n as f64 <= 0.05,
                "{}: n = {n}, target {want_n}",
                d.name
            );
            assert!(
                (m as f64 - want_m as f64).abs() / want_m as f64 <= 0.15,
                "{}: m = {m}, target {want_m}",
                d.name
            );
        }
    }

    #[test]
    fn generated_graphs_are_connected() {
        for spec in [DatasetSpec::Collins, DatasetSpec::Gavin, DatasetSpec::Dblp { scale: 0.005 }] {
            let d = spec.generate(3);
            let (_, count) = connected_components(&d.graph);
            assert_eq!(count, 1, "{} LCC must be connected", d.name);
        }
    }

    #[test]
    fn probability_profiles_differ_as_published() {
        let collins = DatasetSpec::Collins.generate(5);
        let gavin = DatasetSpec::Gavin.generate(5);
        let s_collins = GraphStats::compute(&collins.graph);
        let s_gavin = GraphStats::compute(&gavin.graph);
        assert!(
            s_collins.mean_prob > 0.7,
            "Collins-like should be high-probability, mean {}",
            s_collins.mean_prob
        );
        assert!(
            s_gavin.mean_prob < 0.45,
            "Gavin-like should be low-probability, mean {}",
            s_gavin.mean_prob
        );
        assert!(s_collins.frac_high_prob > s_gavin.frac_high_prob);
    }

    #[test]
    fn krogan_mixture_shape_survives_generation() {
        let d = DatasetSpec::Krogan.generate(7);
        let s = GraphStats::compute(&d.graph);
        assert!((s.frac_high_prob - 0.25).abs() < 0.06, "fraction above 0.9: {}", s.frac_high_prob);
        assert!(s.min_prob >= 0.26);
    }

    #[test]
    fn ppi_ground_truth_is_valid_and_nontrivial() {
        let d = DatasetSpec::Krogan.generate(11);
        let gt = d.ground_truth.unwrap();
        assert!(gt.len() >= 80, "only {} complexes survived the LCC cut", gt.len());
        let n = d.graph.num_nodes();
        for complex in &gt {
            assert!(complex.len() >= 2);
            for &p in complex {
                assert!(p.index() < n);
            }
        }
    }

    #[test]
    fn dblp_has_no_ground_truth() {
        let d = DatasetSpec::Dblp { scale: 0.002 }.generate(1);
        assert!(d.ground_truth.is_none());
        assert!(d.graph.num_nodes() > 500);
    }

    #[test]
    fn large_sparse_is_sparse_connected_and_near_target() {
        let spec = DatasetSpec::LargeSparse { nodes: 20_000 };
        let d = spec.generate(13);
        let (want_n, want_m) = spec.paper_size();
        // Expected degree 8 ⇒ the LCC keeps almost every node.
        assert!(d.graph.num_nodes() as f64 >= 0.99 * want_n as f64, "LCC too small");
        let m = d.graph.num_edges() as f64;
        assert!((m - want_m as f64).abs() / want_m as f64 <= 0.05, "m = {m}, target {want_m}");
        let (_, count) = connected_components(&d.graph);
        assert_eq!(count, 1);
        assert!(d.ground_truth.is_none());
        assert_eq!(d.name, "LargeSparse(20000)");
    }

    #[test]
    fn names_mark_synthetic_provenance() {
        assert_eq!(DatasetSpec::Collins.name(), "Collins-like");
        assert!(DatasetSpec::Dblp { scale: 0.1 }.name().contains("0.1"));
    }
}
