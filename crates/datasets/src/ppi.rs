//! PPI-network generator with planted protein complexes.
//!
//! Real PPI networks are modular and **hub-peripheral**: proteins
//! aggregate into *complexes* (dense, reliably-interacting groups)
//! embedded in a sparser background whose degree distribution is heavily
//! skewed — a few hub proteins accumulate most transient interactions
//! while a large periphery hangs on one or two (often low-confidence)
//! edges. That periphery is what keeps the minimum connection probability
//! of any clustering well below 1 in the paper's Figure 1, so the
//! generator reproduces it directly:
//!
//! 1. plant `num_complexes` complexes with sizes uniform in
//!    `complex_size_range`, assigning member proteins from a shuffled pool
//!    (a protein belongs to at most one planted complex, matching how the
//!    MIPS ground truth is used for disjoint positive pairs in Table 2);
//! 2. wire each complex internally with density `intra_density`;
//! 3. add `background_edges` noise edges by **preferential attachment**:
//!    one endpoint uniform, the other degree-biased — yielding hubs plus a
//!    degree-1/2 periphery;
//! 4. connect the remaining components with single degree-biased edges
//!    (a handful at the calibrated densities), so the largest connected
//!    component retains ≈ all nodes as in the paper's datasets;
//! 5. draw every edge's probability from the dataset's
//!    [`ProbDistribution`].
//!
//! The planted complexes are returned as ground truth for the protein
//! -complex-prediction experiment (paper §5.2, substituting for MIPS).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ugraph_graph::{GraphBuilder, NodeId, UncertainGraph, UnionFind};

use crate::prob::ProbDistribution;

/// Parameters of the PPI generator.
#[derive(Clone, Debug, PartialEq)]
pub struct PpiConfig {
    /// Number of proteins (nodes).
    pub num_proteins: usize,
    /// Number of planted complexes.
    pub num_complexes: usize,
    /// Complex sizes drawn uniformly from this inclusive range.
    pub complex_size_range: (usize, usize),
    /// Within-complex edge density in `(0, 1]`.
    pub intra_density: f64,
    /// Number of random background edge draws (duplicates collapse, so the
    /// final edge count sits slightly below complexes + background).
    pub background_edges: usize,
    /// Probability distribution of background (and stitching) edges.
    pub prob_dist: ProbDistribution,
    /// Probability distribution of within-complex edges. In real PPI CORE
    /// datasets the high-confidence interactions concentrate inside
    /// complexes — that separation is what makes complexes detectable.
    /// Set equal to `prob_dist` for a uniform graph.
    pub intra_prob_dist: ProbDistribution,
    /// Generator seed.
    pub seed: u64,
}

/// A generated PPI dataset: the graph plus the planted-complex ground
/// truth.
#[derive(Clone, Debug)]
pub struct PpiDataset {
    /// The uncertain interaction network.
    pub graph: UncertainGraph,
    /// The planted complexes (disjoint member lists, each of size ≥ 2).
    pub complexes: Vec<Vec<NodeId>>,
}

/// Generates a PPI-like uncertain graph with planted complexes.
///
/// # Panics
/// Panics if the size range is degenerate or the complexes need more
/// proteins than available.
pub fn ppi_like(cfg: &PpiConfig) -> PpiDataset {
    let (lo, hi) = cfg.complex_size_range;
    assert!(2 <= lo && lo <= hi, "complex sizes must be at least 2");
    assert!(cfg.intra_density > 0.0 && cfg.intra_density <= 1.0);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.num_proteins;
    let mut b =
        GraphBuilder::with_capacity(n, cfg.background_edges + cfg.num_complexes * hi * hi / 2);
    let mut uf = UnionFind::new(n);
    // Degree-biased endpoint pool: every edge pushes both endpoints, so a
    // uniform draw from the pool is a draw proportional to current degree.
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(4 * cfg.background_edges);
    let add_edge = |b: &mut GraphBuilder,
                    uf: &mut UnionFind,
                    pool: &mut Vec<u32>,
                    rng: &mut SmallRng,
                    u: u32,
                    v: u32,
                    dist: &ProbDistribution| {
        b.add_edge(u, v, dist.sample(rng))
            .unwrap_or_else(|e| unreachable!("generated edge is valid: {e}"));
        uf.union(u, v);
        pool.push(u);
        pool.push(v);
    };

    // 1. Plant complexes on a shuffled protein pool.
    let mut pool: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        pool.swap(i, j);
    }
    let mut cursor = 0usize;
    let mut complexes: Vec<Vec<NodeId>> = Vec::with_capacity(cfg.num_complexes);
    for _ in 0..cfg.num_complexes {
        let size = rng.gen_range(lo..=hi);
        assert!(
            cursor + size <= n,
            "complexes need more than {n} proteins; shrink num_complexes or sizes"
        );
        let members: Vec<u32> = pool[cursor..cursor + size].to_vec();
        cursor += size;
        // 2. Dense internal wiring with the (typically stronger)
        // intra-complex distribution.
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                if rng.gen::<f64>() < cfg.intra_density {
                    add_edge(
                        &mut b,
                        &mut uf,
                        &mut endpoint_pool,
                        &mut rng,
                        u,
                        v,
                        &cfg.intra_prob_dist,
                    );
                }
            }
        }
        complexes.push(members.into_iter().map(NodeId).collect());
    }

    // 3. Chung-Lu background: both endpoints drawn proportionally to
    // heavy-tailed per-protein activity weights (Pareto-ish), the standard
    // model for PPI backbones. Unlike uniform endpoint sampling, this
    // leaves a large low-degree periphery — which is what keeps the
    // minimum connection probability of real PPI clusterings far below 1
    // (paper Figure 1).
    let tickets: Vec<u32> = {
        // w = u^{-0.75} capped: heavy tail without a single runaway hub.
        let mut t = Vec::with_capacity(8 * n);
        for node in 0..n as u32 {
            let u: f64 = rng.gen::<f64>().max(1e-9);
            let w = u.powf(-0.75).min(64.0);
            // Quantized to ticket counts with mean ≈ 3 (min 1).
            let count = w.round().max(1.0) as usize;
            for _ in 0..count {
                t.push(node);
            }
        }
        t
    };
    for _ in 0..cfg.background_edges {
        let u = tickets[rng.gen_range(0..tickets.len())];
        let v = tickets[rng.gen_range(0..tickets.len())];
        if u != v {
            add_edge(&mut b, &mut uf, &mut endpoint_pool, &mut rng, u, v, &cfg.prob_dist);
        }
    }

    // 4. Connect leftover components to the giant one with degree-biased
    // single edges (typically a handful at calibrated densities).
    let anchor = endpoint_pool.first().copied().unwrap_or(0);
    for u in 0..n as u32 {
        if uf.connected(u, anchor) {
            continue;
        }
        // Degree-biased partner in the anchor's component; bounded retries,
        // then fall back to the anchor itself.
        let mut partner = anchor;
        for _ in 0..32 {
            let cand = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            if uf.connected(cand, anchor) && cand != u {
                partner = cand;
                break;
            }
        }
        add_edge(&mut b, &mut uf, &mut endpoint_pool, &mut rng, u, partner, &cfg.prob_dist);
    }

    PpiDataset {
        graph: b.build().unwrap_or_else(|e| unreachable!("PPI build cannot fail: {e}")),
        complexes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::connected_components;

    fn small_cfg() -> PpiConfig {
        PpiConfig {
            num_proteins: 200,
            num_complexes: 12,
            complex_size_range: (4, 8),
            intra_density: 0.8,
            background_edges: 300,
            prob_dist: ProbDistribution::KroganMixture,
            intra_prob_dist: ProbDistribution::Uniform(0.85, 1.0),
            seed: 42,
        }
    }

    #[test]
    fn generates_requested_shape() {
        let d = ppi_like(&small_cfg());
        assert_eq!(d.graph.num_nodes(), 200);
        assert_eq!(d.complexes.len(), 12);
        for c in &d.complexes {
            assert!((4..=8).contains(&c.len()));
        }
    }

    #[test]
    fn complexes_are_disjoint() {
        let d = ppi_like(&small_cfg());
        let mut seen = std::collections::HashSet::new();
        for c in &d.complexes {
            for &m in c {
                assert!(seen.insert(m), "protein {m:?} in two complexes");
            }
        }
    }

    #[test]
    fn graph_is_connected() {
        let d = ppi_like(&small_cfg());
        let (_, count) = connected_components(&d.graph);
        assert_eq!(count, 1, "component stitching must connect everything");
    }

    #[test]
    fn degree_distribution_is_hub_peripheral() {
        let d = ppi_like(&small_cfg());
        let degrees: Vec<usize> = d.graph.nodes().map(|u| d.graph.degree(u)).collect();
        let max_deg = *degrees.iter().max().unwrap();
        let avg = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        // Preferential attachment: the biggest hub clearly outgrows the
        // average, and a periphery of low-degree nodes exists.
        assert!(max_deg as f64 > 3.0 * avg, "max {max_deg} vs avg {avg}");
        let low = degrees.iter().filter(|&&d| d <= 2).count();
        assert!(low > degrees.len() / 10, "only {low} peripheral nodes");
    }

    #[test]
    fn complexes_are_denser_than_background() {
        let d = ppi_like(&small_cfg());
        let overall_density = 2.0 * d.graph.num_edges() as f64 / (200.0 * 199.0);
        for c in &d.complexes {
            let members: std::collections::HashSet<_> = c.iter().copied().collect();
            let mut internal = 0usize;
            for (_, u, v, _) in d.graph.edges() {
                if members.contains(&u) && members.contains(&v) {
                    internal += 1;
                }
            }
            let pairs = c.len() * (c.len() - 1) / 2;
            let density = internal as f64 / pairs as f64;
            assert!(
                density > 5.0 * overall_density,
                "complex density {density} not above background {overall_density}"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = ppi_like(&small_cfg());
        let b = ppi_like(&small_cfg());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.complexes, b.complexes);
        let mut cfg = small_cfg();
        cfg.seed = 43;
        let c = ppi_like(&cfg);
        assert_ne!(a.complexes, c.complexes);
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn too_many_complexes_panics() {
        let cfg = PpiConfig {
            num_proteins: 10,
            num_complexes: 5,
            complex_size_range: (4, 4),
            intra_density: 0.5,
            background_edges: 0,
            prob_dist: ProbDistribution::Fixed(0.5),
            intra_prob_dist: ProbDistribution::Fixed(0.5),
            seed: 0,
        };
        let _ = ppi_like(&cfg);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_size_range_panics() {
        let cfg = PpiConfig {
            num_proteins: 10,
            num_complexes: 1,
            complex_size_range: (1, 1),
            intra_density: 0.5,
            background_edges: 0,
            prob_dist: ProbDistribution::Fixed(0.5),
            intra_prob_dist: ProbDistribution::Fixed(0.5),
            seed: 0,
        };
        let _ = ppi_like(&cfg);
    }
}
