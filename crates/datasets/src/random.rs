//! Generic random-graph generators (Erdős–Rényi and planted partition),
//! used by tests and ablation benches.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ugraph_graph::{GraphBuilder, UncertainGraph};

use crate::prob::ProbDistribution;

/// `G(n, p_edge)` with edge probabilities drawn from `dist`.
///
/// Edges are drawn by **geometric skip sampling** (Batagelj–Brandes):
/// rather than one Bernoulli draw per pair, the generator jumps straight
/// to the next present edge — the gap between successive edges of the
/// linearized upper triangle is geometric with parameter `p_edge` — so
/// generation costs `O(n + m_expected)` instead of `Θ(n²)`. That makes
/// sparse instances of hundreds of thousands of nodes (the scaling
/// benches' input, see [`crate::DatasetSpec::LargeSparse`]) practical to
/// build. The edge *set* equals a pair scan in distribution; the exact
/// edges for a given seed differ from the old scan, but every generator
/// remains fully deterministic in `(n, p_edge, dist, seed)`.
pub fn erdos_renyi(n: usize, p_edge: f64, dist: ProbDistribution, seed: u64) -> UncertainGraph {
    assert!((0.0..=1.0).contains(&p_edge));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n >= 2 && p_edge > 0.0 {
        if p_edge >= 1.0 {
            // Every pair present: the skip formula divides by ln(0).
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    b.add_edge(u, v, dist.sample(&mut rng))
                        .unwrap_or_else(|e| unreachable!("generated edge is valid: {e}"));
                }
            }
        } else {
            let log_q = (1.0 - p_edge).ln();
            let n = n as u64;
            // (w, v) walk the upper triangle row-major: w < v, row v.
            let mut v: u64 = 1;
            let mut w: i64 = -1;
            while v < n {
                let r: f64 = rng.gen(); // in [0, 1): 1 - r never 0
                let skip = ((1.0 - r).ln() / log_q).floor() as i64;
                w = w.saturating_add(1).saturating_add(skip);
                while v < n && w >= v as i64 {
                    w -= v as i64;
                    v += 1;
                }
                if v < n {
                    b.add_edge(w as u32, v as u32, dist.sample(&mut rng))
                        .unwrap_or_else(|e| unreachable!("generated edge is valid: {e}"));
                }
            }
        }
    }
    b.build().unwrap_or_else(|e| unreachable!("ER build cannot fail: {e}"))
}

/// Configuration of the planted-partition (stochastic block) generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlantedPartitionConfig {
    /// Number of blocks (communities).
    pub blocks: usize,
    /// Nodes per block.
    pub block_size: usize,
    /// Edge density inside a block.
    pub p_intra: f64,
    /// Edge density between blocks.
    pub p_inter: f64,
    /// Probability distribution of intra-block edges.
    pub intra_dist: ProbDistribution,
    /// Probability distribution of inter-block edges.
    pub inter_dist: ProbDistribution,
}

/// Generates a planted-partition uncertain graph; returns the graph and the
/// block index of every node. Block `b` holds nodes
/// `b·block_size .. (b+1)·block_size`.
pub fn planted_partition(cfg: &PlantedPartitionConfig, seed: u64) -> (UncertainGraph, Vec<usize>) {
    let n = cfg.blocks * cfg.block_size;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let block_of = |u: usize| u / cfg.block_size;
    for u in 0..n {
        for v in (u + 1)..n {
            let same = block_of(u) == block_of(v);
            let (p_edge, dist) =
                if same { (cfg.p_intra, cfg.intra_dist) } else { (cfg.p_inter, cfg.inter_dist) };
            if rng.gen::<f64>() < p_edge {
                b.add_edge(u as u32, v as u32, dist.sample(&mut rng))
                    .unwrap_or_else(|e| unreachable!("generated edge is valid: {e}"));
            }
        }
    }
    let labels = (0..n).map(block_of).collect();
    (b.build().unwrap_or_else(|e| unreachable!("planted partition build cannot fail: {e}")), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_edge_count_concentrates() {
        let g = erdos_renyi(100, 0.1, ProbDistribution::Fixed(0.5), 7);
        let expected = 0.1 * (100.0 * 99.0 / 2.0);
        let m = g.num_edges() as f64;
        assert!((m - expected).abs() < 4.0 * expected.sqrt(), "m = {m}, expected {expected}");
    }

    #[test]
    fn er_extremes() {
        let empty = erdos_renyi(10, 0.0, ProbDistribution::Fixed(0.5), 1);
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(10, 1.0, ProbDistribution::Fixed(0.5), 1);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn er_deterministic() {
        let a = erdos_renyi(50, 0.2, ProbDistribution::KroganMixture, 9);
        let b = erdos_renyi(50, 0.2, ProbDistribution::KroganMixture, 9);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.probs(), b.probs());
    }

    #[test]
    fn er_skip_sampling_scales_to_sparse_instances() {
        // 200k nodes at expected degree 8: a pair scan would visit 2·10¹⁰
        // pairs; skip sampling builds it in O(n + m).
        let n = 200_000;
        let p = 8.0 / (n as f64 - 1.0);
        let g = erdos_renyi(n, p, ProbDistribution::Uniform(0.1, 0.9), 42);
        assert_eq!(g.num_nodes(), n);
        let expected = p * (n as f64) * (n as f64 - 1.0) / 2.0;
        let m = g.num_edges() as f64;
        assert!((m - expected).abs() < 6.0 * expected.sqrt(), "m = {m}, expected {expected}");
        // Every edge is a valid upper-triangle pair with a valid prob.
        for (_, u, v, p) in g.edges() {
            assert!(u < v, "self-loop or flipped pair ({u}, {v})");
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn planted_partition_denser_inside() {
        let cfg = PlantedPartitionConfig {
            blocks: 4,
            block_size: 25,
            p_intra: 0.5,
            p_inter: 0.02,
            intra_dist: ProbDistribution::Fixed(0.9),
            inter_dist: ProbDistribution::Fixed(0.1),
        };
        let (g, labels) = planted_partition(&cfg, 3);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(labels.len(), 100);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (_, u, v, p) in g.edges() {
            if labels[u.index()] == labels[v.index()] {
                intra += 1;
                assert_eq!(p, 0.9);
            } else {
                inter += 1;
                assert_eq!(p, 0.1);
            }
        }
        // Expected intra ≈ 4 · 0.5 · C(25,2) = 600; inter ≈ 0.02 · 3750 = 75.
        assert!(intra > 400, "intra = {intra}");
        assert!(inter < 200, "inter = {inter}");
    }

    #[test]
    fn planted_partition_block_labels() {
        let cfg = PlantedPartitionConfig {
            blocks: 3,
            block_size: 10,
            p_intra: 1.0,
            p_inter: 0.0,
            intra_dist: ProbDistribution::Fixed(1.0),
            inter_dist: ProbDistribution::Fixed(1.0),
        };
        let (g, labels) = planted_partition(&cfg, 1);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[10], 1);
        assert_eq!(labels[29], 2);
        // Fully dense blocks, no inter edges: 3 components of size 10.
        let (comp, count) = ugraph_graph::connected_components(&g);
        assert_eq!(count, 3);
        for u in 0..30 {
            assert_eq!(comp[u] as usize, labels[u]);
        }
    }
}
