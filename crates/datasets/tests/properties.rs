//! Property-based tests for the dataset generators.

use proptest::prelude::*;
use ugraph_datasets::{
    dblp_like, erdos_renyi, planted_partition, ppi_like, DblpConfig, PlantedPartitionConfig,
    PpiConfig, ProbDistribution,
};
use ugraph_graph::connected_components;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every distribution keeps probabilities in (0, 1].
    #[test]
    fn distributions_in_range(seed in any::<u64>(), frac in 0.0f64..1.0) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for dist in [
            ProbDistribution::HighConfidence,
            ProbDistribution::LowConfidence,
            ProbDistribution::KroganMixture,
            ProbDistribution::Uniform(0.1, 0.9),
            ProbDistribution::Fixed(0.42),
            ProbDistribution::TwoBand { frac_high: frac, high: (0.8, 1.0), low: (0.05, 0.5) },
        ] {
            for _ in 0..200 {
                let p = dist.sample(&mut rng);
                prop_assert!(p > 0.0 && p <= 1.0, "{dist:?} gave {p}");
            }
        }
    }

    /// The PPI generator output is connected with disjoint in-range
    /// complexes, deterministically per seed.
    #[test]
    fn ppi_generator_contract(
        n in 60usize..200,
        complexes in 2usize..8,
        seed in any::<u64>(),
    ) {
        let cfg = PpiConfig {
            num_proteins: n,
            num_complexes: complexes,
            complex_size_range: (3, 6),
            intra_density: 0.7,
            background_edges: n,
            prob_dist: ProbDistribution::KroganMixture,
            intra_prob_dist: ProbDistribution::Uniform(0.8, 1.0),
            seed,
        };
        let d = ppi_like(&cfg);
        prop_assert_eq!(d.graph.num_nodes(), n);
        let (_, count) = connected_components(&d.graph);
        prop_assert_eq!(count, 1, "generated PPI graph must be connected");
        let mut seen = std::collections::HashSet::new();
        for c in &d.complexes {
            prop_assert!((3..=6).contains(&c.len()));
            for &m in c {
                prop_assert!(m.index() < n);
                prop_assert!(seen.insert(m), "complexes overlap");
            }
        }
        let d2 = ppi_like(&cfg);
        prop_assert_eq!(d.graph.num_edges(), d2.graph.num_edges());
        prop_assert_eq!(d.graph.probs(), d2.graph.probs());
    }

    /// The DBLP generator stays connected, respects the scale knob, and
    /// emits only the discrete collaboration probabilities.
    #[test]
    fn dblp_generator_contract(seed in any::<u64>()) {
        let cfg = DblpConfig { scale: 0.003, seed, ..Default::default() };
        let g = dblp_like(&cfg);
        prop_assert_eq!(g.num_nodes(), (636_751.0f64 * 0.003).round() as usize);
        let (_, count) = connected_components(&g);
        prop_assert_eq!(count, 1);
        // All probabilities must be of the form 1 - e^{-x/2}, x ≥ 1.
        for &p in g.probs() {
            let x = -2.0 * (1.0 - p).ln();
            prop_assert!((x - x.round()).abs() < 1e-9, "p = {p} is not a level");
            prop_assert!(x.round() >= 1.0);
        }
    }

    /// Erdős–Rényi edge counts concentrate around the expectation.
    #[test]
    fn er_concentration(n in 30usize..100, p in 0.05f64..0.5, seed in any::<u64>()) {
        let g = erdos_renyi(n, p, ProbDistribution::Fixed(0.5), seed);
        let pairs = (n * (n - 1) / 2) as f64;
        let expected = p * pairs;
        let sd = (pairs * p * (1.0 - p)).sqrt();
        prop_assert!(
            (g.num_edges() as f64 - expected).abs() <= 6.0 * sd + 1.0,
            "m = {} vs expected {expected}",
            g.num_edges()
        );
    }

    /// Planted partition: intra density ≥ inter density in realized edges
    /// when configured that way.
    #[test]
    fn planted_partition_density_ordering(seed in any::<u64>()) {
        let cfg = PlantedPartitionConfig {
            blocks: 3,
            block_size: 20,
            p_intra: 0.4,
            p_inter: 0.05,
            intra_dist: ProbDistribution::Fixed(0.9),
            inter_dist: ProbDistribution::Fixed(0.1),
        };
        let (g, labels) = planted_partition(&cfg, seed);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (_, u, v, _) in g.edges() {
            if labels[u.index()] == labels[v.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // intra pairs: 3·C(20,2)·0.4 = 228 expected; inter: 1200·0.05 = 60.
        prop_assert!(intra > inter, "intra {intra} ≤ inter {inter}");
    }
}
