//! Protocol robustness: hostile and damaged input must always produce a
//! typed error — never a panic, never a leaked worker. The suite drives a
//! real single-worker server with forged frames, wrong-version
//! handshakes, and torn writes, then fuzzes the pure codecs with
//! proptest.

use std::sync::Arc;
use std::time::Duration;

use ugraph_cluster::ClusterConfig;
use ugraph_graph::{GraphBuilder, UncertainGraph};
use ugraph_sampling::{BlockWidth, EngineKind};
use ugraph_server::protocol::{
    decode_request, decode_response, encode_request, KIND_CLUSTER, MAX_FRAME_LEN,
};
use ugraph_server::{
    Client, ClusterCall, ErrorCode, ProtocolError, Request, Response, RunningServer, Server,
    ServerConfig, WireDepth,
};

fn small_graph() -> Arc<UncertainGraph> {
    let mut b = GraphBuilder::new(6);
    for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
        b.add_edge(u, v, 0.9).unwrap();
    }
    b.add_edge(2, 3, 0.2).unwrap();
    Arc::new(b.build().unwrap())
}

/// One worker on purpose: if any hostile connection hung or leaked its
/// handler, every later request in the test would block forever.
fn start_single_worker() -> RunningServer {
    Server::bind(
        "127.0.0.1:0",
        vec![("g".into(), small_graph())],
        ClusterConfig::default().with_seed(7),
        ServerConfig { workers: 1, ..ServerConfig::default() },
    )
    .unwrap()
    .start()
    .unwrap()
}

fn good_call() -> ClusterCall {
    ClusterCall {
        graph: "g".into(),
        engine: EngineKind::Scalar,
        width: BlockWidth::W64,
        objective: ugraph_cluster::Objective::MinProb,
        k: 2,
        depth: WireDepth::Unlimited,
        deadline_micros: None,
    }
}

/// A syntactically valid cluster frame to mutilate.
fn valid_frame() -> Vec<u8> {
    encode_request(&Request::Cluster(good_call()))
}

/// Patches the length header after payload surgery so the server reads
/// exactly the bytes we forged.
fn with_fixed_len(mut frame: Vec<u8>) -> Vec<u8> {
    let len = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&len.to_le_bytes());
    frame
}

fn expect_error_then_close(server: &RunningServer, frame: &[u8], code: ErrorCode) {
    let mut client = Client::connect(server.addr()).unwrap();
    client.send_raw(frame).unwrap();
    match client.read_response().unwrap() {
        Response::Error(e) => assert_eq!(e.code, code, "{}", e.message),
        other => panic!("expected error frame, got {other:?}"),
    }
    // The server answered, then dropped the desynchronized connection.
    let after = client.read_response();
    assert!(
        matches!(after, Err(ProtocolError::Io(_))),
        "connection must be closed after a protocol error, got {after:?}"
    );
}

#[test]
fn wrong_version_handshake_is_refused_with_the_servers_version() {
    let server = start_single_worker();

    let err = Client::connect_with_version(server.addr(), 99).unwrap_err();
    match err {
        ProtocolError::VersionMismatch { ours, theirs } => {
            assert_eq!(ours, 99);
            assert_eq!(theirs, ugraph_server::PROTOCOL_VERSION, "server announces what it speaks");
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }

    // The refusal is per-connection: a speaker of the right version is
    // served immediately afterwards.
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.cluster(&good_call()).unwrap().is_ok());
}

#[test]
fn forged_frames_get_typed_errors_and_never_kill_the_server() {
    let server = start_single_worker();

    // Unknown frame kind.
    expect_error_then_close(
        &server,
        &with_fixed_len(vec![0, 0, 0, 0, 0x55]),
        ErrorCode::UnknownKind,
    );

    // Truncated payload (header patched, so the damage is in the body).
    let mut truncated = valid_frame();
    truncated.truncate(truncated.len() - 3);
    expect_error_then_close(&server, &with_fixed_len(truncated), ErrorCode::Malformed);

    // Trailing garbage after a complete payload.
    let mut trailing = valid_frame();
    trailing.push(0xAB);
    expect_error_then_close(&server, &with_fixed_len(trailing), ErrorCode::Malformed);

    // A header announcing more than MAX_FRAME_LEN: rejected before any
    // payload byte is read or allocated.
    expect_error_then_close(&server, &(MAX_FRAME_LEN + 1).to_le_bytes(), ErrorCode::Oversized);

    // A zero-length frame.
    expect_error_then_close(&server, &0u32.to_le_bytes(), ErrorCode::Oversized);

    // A bogus engine name inside an otherwise well-formed frame.
    let bogus = encode_request(&Request::Cluster(good_call()));
    let needle = b"scalar";
    let at = bogus.windows(needle.len()).position(|w| w == needle).unwrap();
    let mut wrong_engine = bogus.clone();
    wrong_engine[at..at + needle.len()].copy_from_slice(b"quantm");
    expect_error_then_close(&server, &wrong_engine, ErrorCode::Malformed);

    // After six hostile connections the single worker still answers, and
    // the damage is tallied.
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.cluster(&good_call()).unwrap().is_ok());
    let stats = client.stats(None).unwrap().unwrap();
    assert_eq!(stats.protocol_errors, 6);
    assert_eq!(stats.cluster_requests, 1);
}

#[test]
fn unknown_graph_is_a_typed_refusal_on_a_healthy_connection() {
    let server = start_single_worker();
    let mut client = Client::connect(server.addr()).unwrap();

    let err =
        client.cluster(&ClusterCall { graph: "nope".into(), ..good_call() }).unwrap().unwrap_err();
    assert_eq!(err.code, ErrorCode::UnknownGraph);

    // Unlike a malformed frame, a well-formed refusal keeps the
    // connection usable.
    assert!(client.cluster(&good_call()).unwrap().is_ok());
    let stats = client.stats(None).unwrap().unwrap();
    assert_eq!(stats.admission_rejections, 1);
    assert_eq!(stats.protocol_errors, 0);
}

#[cfg(feature = "fault-injection")]
#[test]
fn torn_client_write_leaves_the_server_serving() {
    use ugraph_sampling::{faults, FaultPlan, FaultSite};

    let server = start_single_worker();

    // Fault plans are thread-local: the failpoint fires on THIS thread's
    // next wire write — the client side — while server workers write
    // unimpeded.
    let mut doomed = Client::connect(server.addr()).unwrap();
    {
        let _guard = faults::install(FaultPlan::new().fail_at(FaultSite::WireWrite, 1));
        let err = doomed.cluster(&good_call()).unwrap_err();
        assert!(matches!(err, ProtocolError::Fault(_)), "got {err:?}");
    }
    // Half a frame is on the wire; closing the connection leaves the
    // server mid-frame, which it must score as a protocol error — not
    // crash, not hang its only worker.
    drop(doomed);

    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.cluster(&good_call()).unwrap().is_ok());
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        // The worker notices the dead connection on its next read tick.
        let stats = client.stats(None).unwrap().unwrap();
        if stats.protocol_errors >= 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "torn frame never tallied: {stats:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[cfg(feature = "fault-injection")]
#[test]
fn dropped_client_read_is_typed_and_the_stream_survives() {
    use ugraph_sampling::{faults, FaultPlan, FaultSite};

    let server = start_single_worker();
    let mut client = Client::connect(server.addr()).unwrap();

    let _guard = faults::install(FaultPlan::new().fail_at(FaultSite::WireRead, 1));
    client.send_raw(&valid_frame()).unwrap();
    let err = client.read_response().unwrap_err();
    assert!(matches!(err, ProtocolError::Fault(_)), "got {err:?}");
    assert_eq!(faults::hits(FaultSite::WireRead), 1, "the read failpoint must be reached");

    // The failpoint fires before a byte is consumed, so the response is
    // still queued intact: the symmetric half of the WireWrite contract
    // (a failed read never desynchronizes the stream).
    match client.read_response().unwrap() {
        Response::Cluster(_) => {}
        other => panic!("expected the queued cluster answer, got {other:?}"),
    }
    assert_eq!(faults::hits(FaultSite::WireRead), 2);
}

#[cfg(feature = "fault-injection")]
#[test]
fn refused_dial_is_typed_and_the_next_dial_succeeds() {
    use ugraph_sampling::{faults, FaultPlan, FaultSite};

    let server = start_single_worker();

    let _guard = faults::install(FaultPlan::new().fail_at(FaultSite::Connect, 1));
    let err = Client::connect(server.addr()).unwrap_err();
    assert!(matches!(err, ProtocolError::Fault(_)), "got {err:?}");
    assert_eq!(faults::hits(FaultSite::Connect), 1, "the dial failpoint must be reached");

    // Connect refusal is transient by definition — the immediate redial
    // works, which is exactly why the retry policy classes it retryable.
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(faults::hits(FaultSite::Connect), 2);
    assert!(client.cluster(&good_call()).unwrap().is_ok());
}

mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary bytes through the request decoder: typed error or
        /// valid request, never a panic, never an absurd allocation.
        #[test]
        fn request_decoder_never_panics(kind in 0u8..=255, payload in proptest::collection::vec(0u8..=255, 0..256)) {
            let _ = decode_request(kind, &payload);
        }

        /// Arbitrary bytes through the response decoder.
        #[test]
        fn response_decoder_never_panics(kind in 0u8..=255, payload in proptest::collection::vec(0u8..=255, 0..256)) {
            let _ = decode_response(kind, &payload);
        }

        /// Every strict prefix of a valid frame is rejected with a typed
        /// error (no partial decode is ever accepted).
        #[test]
        fn truncations_of_a_valid_frame_never_decode(cut in 0usize..100) {
            let frame = valid_frame();
            let payload = &frame[5..];
            prop_assume!(cut < payload.len());
            prop_assert!(decode_request(KIND_CLUSTER, &payload[..cut]).is_err());
        }

        /// Single-byte corruption anywhere in the payload either still
        /// decodes (the byte was free) or fails typed — never panics.
        #[test]
        fn bitflips_never_panic(pos in 0usize..100, flip in 1u8..=255) {
            let frame = valid_frame();
            let mut payload = frame[5..].to_vec();
            prop_assume!(pos < payload.len());
            payload[pos] ^= flip;
            let _ = decode_request(KIND_CLUSTER, &payload);
        }
    }
}
