//! Retry classification and pacing: the full retryable-vs-terminal table
//! over every wire error code, and a proptest that the deadline-composed
//! backoff schedule can never sleep past the request deadline (or the
//! cumulative retry budget) — verified through the pure
//! [`RetryPolicy::next_backoff`], so no test ever actually sleeps.

use std::time::Duration;

use ugraph_server::{ErrorCode, ErrorFrame, ProtocolError, RetryError, RetryPolicy};

/// Every one of the 14 wire error codes with its expected class. The
/// retryable set is exactly the transient refusals: memory pressure
/// passes, a dead session respawns, a draining server fails over —
/// while everything else indicts the request itself or the solve's
/// outcome, which an identical re-send cannot change.
const CLASSIFICATION: [(ErrorCode, bool); 14] = [
    (ErrorCode::UnsupportedVersion, false),
    (ErrorCode::Malformed, false),
    (ErrorCode::Oversized, false),
    (ErrorCode::UnknownKind, false),
    (ErrorCode::UnknownGraph, false),
    (ErrorCode::AdmissionRejected, true),
    (ErrorCode::KOutOfRange, false),
    (ErrorCode::NoFullClustering, false),
    (ErrorCode::InvalidConfig, false),
    (ErrorCode::Sampling, false),
    (ErrorCode::DeadlineExceeded, false),
    (ErrorCode::Cancelled, false),
    (ErrorCode::SessionClosed, true),
    (ErrorCode::ShuttingDown, true),
];

#[test]
fn every_error_code_is_classified() {
    for (code, retryable) in CLASSIFICATION {
        assert_eq!(
            code.is_retryable(),
            retryable,
            "{code:?} must be {}",
            if retryable { "retryable" } else { "terminal" }
        );
        // The classification is the same seen through a server frame.
        let err = RetryError::Server(ErrorFrame::new(code, "x"));
        assert_eq!(err.is_retryable(), retryable, "{code:?} via RetryError");
    }
    // The table covers the wire's whole code space: 14 codes, dense.
    assert!(ErrorCode::from_u16(15).is_none(), "table must be extended with the enum");
    for v in 1..=14 {
        assert!(ErrorCode::from_u16(v).is_some());
    }
}

#[test]
fn transport_errors_are_retryable_except_version_mismatch() {
    let io = RetryError::Protocol(ProtocolError::Io(std::io::Error::other("conn reset")));
    assert!(io.is_retryable(), "a broken transport is what retries are for");
    let torn = RetryError::Protocol(ProtocolError::Malformed("torn frame".into()));
    assert!(torn.is_retryable());
    let magic = RetryError::Protocol(ProtocolError::BadMagic(*b"HTTP"));
    assert!(magic.is_retryable(), "a confused proxy can clear up on reconnect");
    let version = RetryError::Protocol(ProtocolError::VersionMismatch { ours: 2, theirs: 9 });
    assert!(!version.is_retryable(), "no reconnect fixes a version gap");
}

mod pacing {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    proptest! {
        /// Simulates the retry driver's loop against a fixed deadline:
        /// whatever the policy parameters, the jitter seed, and the
        /// failure count, the cumulative backoff stays strictly inside
        /// the deadline (each granted sleep leaves room for one more
        /// attempt) and never exceeds the retry budget.
        #[test]
        fn backoff_never_sleeps_past_deadline_or_budget(
            base_ms in 1u64..500,
            max_ms in 1u64..3_000,
            seed in any::<u64>(),
            max_attempts in 1u32..24,
            deadline_ms in 0u64..10_000,
            // Values past 3_000 mean "no budget" (the vendored proptest
            // has no Option strategy).
            budget_sel in 0u64..6_000,
        ) {
            let budget_ms = (budget_sel < 3_000).then_some(budget_sel);
            let policy = RetryPolicy {
                max_attempts,
                base_backoff: ms(base_ms),
                max_backoff: ms(max_ms),
                jitter_seed: seed,
                budget: budget_ms.map(ms),
            };
            let deadline = ms(deadline_ms);
            let mut slept = Duration::ZERO;
            // Probe past max_attempts on purpose: the policy must refuse
            // there too.
            for attempt in 1..=max_attempts.saturating_add(3) {
                let remaining = deadline.saturating_sub(slept);
                if let Some(backoff) = policy.next_backoff(attempt, slept, Some(remaining)) {
                    prop_assert!(attempt < max_attempts, "no sleep once attempts are exhausted");
                    prop_assert!(backoff < remaining, "sleep {backoff:?} must not reach the remaining {remaining:?}");
                    slept += backoff;
                }
                prop_assert!(slept < deadline || deadline.is_zero());
                if let Some(budget) = policy.budget {
                    prop_assert!(slept <= budget, "cumulative {slept:?} within budget {budget:?}");
                }
            }
        }

        /// The schedule is a pure function of the seed: same policy, same
        /// failure history, same sleeps — so a logged retry storm can be
        /// replayed exactly.
        #[test]
        fn schedule_is_deterministic(seed in any::<u64>(), attempt in 1u32..20) {
            let policy = RetryPolicy { max_attempts: 32, jitter_seed: seed, budget: None, ..RetryPolicy::default() };
            let a = policy.next_backoff(attempt, Duration::ZERO, None);
            let b = policy.next_backoff(attempt, Duration::ZERO, None);
            prop_assert_eq!(a, b);
        }

        /// Jitter stays within [raw/2, raw] of the capped exponential —
        /// never under half the intended pace, never over it.
        #[test]
        fn jitter_is_bounded(seed in any::<u64>(), attempt in 1u32..16, base_ms in 1u64..200) {
            let policy = RetryPolicy {
                max_attempts: 32,
                base_backoff: ms(base_ms),
                max_backoff: ms(60_000),
                jitter_seed: seed,
                budget: None,
            };
            let raw = ms(base_ms.saturating_mul(1 << (attempt - 1).min(31))).min(ms(60_000));
            let got = policy.next_backoff(attempt, Duration::ZERO, None).unwrap();
            prop_assert!(got >= raw / 2 && got <= raw, "{got:?} outside [{:?}, {raw:?}]", raw / 2);
        }
    }
}
