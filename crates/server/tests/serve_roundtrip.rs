//! Loopback integration suite: a real [`Server`] on `127.0.0.1:0`, real
//! [`Client`]s, and the library as the reference — every served answer
//! must be **bit-identical** to a local [`UgraphSession`] replaying the
//! same request sequence.

use std::sync::Arc;
use std::time::Duration;

use ugraph_cluster::{ClusterConfig, ClusterRequest, SolveResult, UgraphSession};
use ugraph_graph::{GraphBuilder, UncertainGraph};
use ugraph_sampling::{BlockWidth, EngineKind, Interrupt};
use ugraph_server::{
    Client, ClusterCall, ErrorCode, RunningServer, Server, ServerConfig, WireDepth, WireSolve,
};

const SEED: u64 = 7;

fn two_communities() -> Arc<UncertainGraph> {
    let mut b = GraphBuilder::new(6);
    for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
        b.add_edge(u, v, 0.9).unwrap();
    }
    b.add_edge(2, 3, 0.2).unwrap();
    Arc::new(b.build().unwrap())
}

/// A graph big enough that one solve spans many cancellation checkpoints.
fn chunky_ring() -> Arc<UncertainGraph> {
    let n = 600;
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        b.add_edge(u, (u + 1) % n as u32, 0.7).unwrap();
        b.add_edge(u, (u + 7) % n as u32, 0.4).unwrap();
    }
    Arc::new(b.build().unwrap())
}

fn base_config() -> ClusterConfig {
    ClusterConfig::default().with_seed(SEED)
}

/// A local reference session with the same shape [`call`] asks the server
/// for (scalar engine, 64-bit blocks) — the registry pins the session
/// config the same way, so counters must line up too.
fn local_session(g: &Arc<UncertainGraph>) -> UgraphSession<'_> {
    let cfg = base_config().with_engine(EngineKind::Scalar).with_block_width(BlockWidth::W64);
    UgraphSession::new(g, cfg).unwrap()
}

fn start(graphs: Vec<(String, Arc<UncertainGraph>)>, config: ServerConfig) -> RunningServer {
    Server::bind("127.0.0.1:0", graphs, base_config(), config).unwrap().start().unwrap()
}

fn call(graph: &str, k: u32) -> ClusterCall {
    ClusterCall {
        graph: graph.into(),
        engine: EngineKind::Scalar,
        width: BlockWidth::W64,
        objective: ugraph_cluster::Objective::MinProb,
        k,
        depth: WireDepth::Unlimited,
        deadline_micros: None,
    }
}

/// Bit-identity between a wire answer and a local solver result —
/// everything except the server-side clock must match exactly, floats
/// compared as bit patterns.
fn assert_matches_local(wire: &WireSolve, local: &SolveResult) {
    let mut expected = WireSolve::from_result(local);
    expected.elapsed_micros = wire.elapsed_micros;
    assert_eq!(wire, &expected);
    assert_eq!(
        wire.objective_estimate.to_bits(),
        local.objective_estimate.to_bits(),
        "objective estimate must survive the wire bit-identically"
    );
    assert_eq!(wire.clustering().unwrap(), local.clustering);
}

#[test]
fn served_answers_are_bit_identical_to_local_replay_for_every_engine() {
    let g = two_communities();
    let server = start(vec![("g".into(), Arc::clone(&g))], ServerConfig::default());

    for engine in [EngineKind::Scalar, EngineKind::BitParallel, EngineKind::Adaptive] {
        // Local reference: one session, a fixed request sequence.
        let cfg = base_config().with_engine(engine).with_block_width(BlockWidth::W64);
        let mut local = UgraphSession::new(&g, cfg).unwrap();
        let reference: Vec<SolveResult> = [
            ClusterRequest::mcp(2),
            ClusterRequest::acp(2),
            ClusterRequest::mcp(3),
            ClusterRequest::mcp_depth(2, 3),
        ]
        .into_iter()
        .map(|r| local.solve(r).unwrap())
        .collect();

        // The same sequence over the wire (one session per engine shape).
        let mut client = Client::connect(server.addr()).unwrap();
        let calls = [
            ClusterCall { engine, ..call("g", 2) },
            ClusterCall { engine, objective: ugraph_cluster::Objective::AvgProb, ..call("g", 2) },
            ClusterCall { engine, ..call("g", 3) },
            ClusterCall { engine, depth: WireDepth::Uniform(3), ..call("g", 2) },
        ];
        for (call, local_result) in calls.iter().zip(&reference) {
            let wire = client.cluster(call).unwrap().unwrap();
            assert_matches_local(&wire, local_result);
        }
    }
}

#[test]
fn concurrent_clients_run_in_parallel_across_sessions_and_stay_bit_identical() {
    let names = ["g0", "g1", "g2"];
    let graphs: Vec<(String, Arc<UncertainGraph>)> =
        names.iter().map(|n| (n.to_string(), two_communities())).collect();
    let server = start(graphs, ServerConfig { workers: 3, ..ServerConfig::default() });
    let addr = server.addr();

    // Local reference for the per-graph sequence.
    let g = two_communities();
    let mut local = local_session(&g);
    let reference: Vec<SolveResult> = [ClusterRequest::mcp(2), ClusterRequest::mcp(3)]
        .into_iter()
        .map(|r| local.solve(r).unwrap())
        .collect();
    let reference = Arc::new(reference);

    let threads: Vec<_> = names
        .into_iter()
        .map(|name| {
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for (k, local_result) in [(2u32, &reference[0]), (3, &reference[1])] {
                    let wire = client.cluster(&call(name, k)).unwrap().unwrap();
                    assert_matches_local(&wire, local_result);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats(None).unwrap().unwrap();
    assert_eq!(stats.cluster_requests, 6);
    assert_eq!(stats.connections, 4);
    assert_eq!(stats.graphs, ["g0", "g1", "g2"]);
    assert_eq!(stats.sessions.len(), 3, "one session per graph");
}

#[test]
fn ping_pong_echoes_the_nonce_without_touching_sessions_or_traffic_stats() {
    let server = start(vec![("g".into(), two_communities())], ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    for nonce in [0u64, 1, 0xDEAD_BEEF_CAFE_F00D, u64::MAX] {
        client.ping(nonce).unwrap();
    }

    // Health checks spawn no session and skew no traffic counter.
    let stats = client.stats(None).unwrap().unwrap();
    assert_eq!(stats.cluster_requests, 0);
    assert_eq!(stats.stats_requests, 1);
    assert_eq!(stats.peer_stalled, 0, "nobody stalled in this test");
    assert!(stats.sessions.is_empty(), "pings must not open sessions");
    assert_eq!(server.registry().num_sessions(), 0);
}

#[test]
fn deadline_exceeded_is_typed_and_the_session_survives() {
    let g = two_communities();
    let server = start(vec![("g".into(), Arc::clone(&g))], ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    // A deterministically-expired deadline: the first checkpoint trips.
    let doomed = ClusterCall { deadline_micros: Some(0), ..call("g", 2) };
    let err = client.cluster(&doomed).unwrap().unwrap_err();
    assert_eq!(err.code, ErrorCode::DeadlineExceeded);
    let report = err.interrupt.expect("deadline errors carry a report").to_report().unwrap();
    assert_eq!(report.kind, Interrupt::DeadlineExceeded);

    // Local reference experiences the same failed solve first — the
    // session (and its pools) must march in lockstep with the server's.
    let mut local = local_session(&g);
    let local_err = local.solve(ClusterRequest::mcp(2).with_deadline(Duration::ZERO)).unwrap_err();
    assert!(local_err.interrupt_report().is_some());
    let local_ok = local.solve(ClusterRequest::mcp(2)).unwrap();

    // Same connection, same session: no poison, bit-identical recovery.
    let wire = client.cluster(&call("g", 2)).unwrap().unwrap();
    assert_matches_local(&wire, &local_ok);

    let stats = client.stats(None).unwrap().unwrap();
    assert_eq!(stats.deadline_rejections, 1);
}

#[test]
fn tight_global_budget_serves_both_graphs_by_evicting_the_idle_session() {
    let limit = 3 << 10;
    let graphs = vec![("a".into(), two_communities()), ("b".into(), two_communities())];
    let server =
        start(graphs, ServerConfig { global_budget: Some(limit), ..ServerConfig::default() });
    let mut client = Client::connect(server.addr()).unwrap();

    // Reference: an unbudgeted local session.
    let g = two_communities();
    let mut local = local_session(&g);
    let reference = local.solve(ClusterRequest::mcp(2)).unwrap();

    let a1 = client.cluster(&call("a", 2)).unwrap().unwrap();
    let b1 = client.cluster(&call("b", 2)).unwrap().unwrap();
    let a2 = client.cluster(&call("a", 2)).unwrap().unwrap();

    // Eviction and regeneration are invisible in the answers…
    assert_matches_local(&a1, &reference);
    assert_matches_local(&b1, &reference);
    assert_eq!(a1, WireSolve { elapsed_micros: a1.elapsed_micros, ..a2.clone() });

    // …but visible in the ledger.
    let stats = client.stats(None).unwrap().unwrap();
    assert!(stats.sessions_evicted >= 1, "tight budget must evict: {stats:?}");
    assert!(stats.bytes_held <= limit as u64, "at rest the ceiling holds: {stats:?}");
    assert_eq!(stats.bytes_limit, Some(limit as u64));
    assert_eq!(stats.admission_rejections, 0, "idle eviction must make room");
}

#[test]
fn stats_kv_lines_are_machine_readable_over_the_wire() {
    let server = start(vec![("g".into(), two_communities())], ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    client.cluster(&call("g", 2)).unwrap().unwrap();

    let stats = client.stats(Some("g")).unwrap().unwrap();
    assert_eq!(stats.sessions.len(), 1);
    let kv = &stats.sessions[0].kv;
    assert!(!kv.contains('\n'));
    for token in kv.split_whitespace() {
        let (key, value) = token.split_once('=').expect("key=value tokens");
        assert!(!key.is_empty());
        value.parse::<u64>().unwrap_or_else(|_| panic!("{key} has non-integer value {value}"));
    }
    assert!(kv.contains("requests=1"), "{kv}");
}

#[test]
fn shutdown_drains_in_flight_solves_and_refuses_new_work() {
    let server = start(
        vec![("big".into(), chunky_ring())],
        ServerConfig { workers: 2, ..ServerConfig::default() },
    );
    let addr = server.addr();
    let shutdown = server.shutdown_handle();

    let solver = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.cluster(&call("big", 3)).unwrap()
    });
    // Let the solve get going, then pull the plug mid-flight.
    std::thread::sleep(Duration::from_millis(30));
    shutdown.trigger();

    // Drain, don't drop: the client still receives a frame — either the
    // finished result (the solve won the race) or a typed cancellation
    // carrying the interrupt report.
    match solver.join().unwrap() {
        Ok(solve) => assert!(solve.num_nodes == 600),
        Err(e) => {
            assert_eq!(e.code, ErrorCode::Cancelled);
            let report = e.interrupt.expect("cancellations carry a report");
            assert_eq!(report.to_report().unwrap().kind, Interrupt::Cancelled);
        }
    }
    server.stop().unwrap();
}

#[test]
fn idle_evict_frees_sessions_by_age() {
    let server = start(
        vec![("g".into(), two_communities())],
        ServerConfig { idle_evict: Some(Duration::from_millis(50)), ..ServerConfig::default() },
    );
    let mut client = Client::connect(server.addr()).unwrap();
    client.cluster(&call("g", 2)).unwrap().unwrap();

    // The accept loop sweeps every ~25 ms; after the idle age passes the
    // session must be gone (and the answer after respawn identical).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = client.stats(None).unwrap().unwrap();
        if stats.sessions_evicted >= 1 && stats.sessions.is_empty() {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "idle session never evicted: {stats:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let again = client.cluster(&call("g", 2)).unwrap().unwrap();
    let g = two_communities();
    let mut local = local_session(&g);
    assert_matches_local(&again, &local.solve(ClusterRequest::mcp(2)).unwrap());
}
