//! Network chaos suite: a loopback fault-injecting proxy between a real
//! [`ClientPool`] and a real [`Server`] drops and truncates traffic at
//! chosen byte offsets, and failpoints stall frames mid-write — and
//! under every schedule the retried answers must be **bit-identical** to
//! a fault-free local [`UgraphSession`] replay, with no worker leaked
//! and the memory ledger balanced.
//!
//! The proxy is deliberately dumb: per accepted connection it pops one
//! [`ConnFault`] from a deterministic queue (empty queue = transparent
//! relay) and enforces it as a byte budget on one direction of the
//! relay, severing the whole connection when the budget runs out. Every
//! failure mode the pool must survive — refused dials, torn requests,
//! truncated responses — is a budget placement.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use ugraph_cluster::{ClusterConfig, ClusterRequest, SolveResult, UgraphSession};
use ugraph_graph::{GraphBuilder, UncertainGraph};
use ugraph_sampling::{BlockWidth, EngineKind};
use ugraph_server::protocol::{MAGIC, PROTOCOL_VERSION, STALL_PAUSE};
use ugraph_server::{
    Client, ClientPool, ClusterCall, RetryPolicy, RunningServer, Server, ServerConfig, WireDepth,
    WireSolve,
};

const SEED: u64 = 7;

fn two_communities() -> Arc<UncertainGraph> {
    let mut b = GraphBuilder::new(6);
    for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
        b.add_edge(u, v, 0.9).unwrap();
    }
    b.add_edge(2, 3, 0.2).unwrap();
    Arc::new(b.build().unwrap())
}

fn base_config() -> ClusterConfig {
    ClusterConfig::default().with_seed(SEED)
}

fn start(config: ServerConfig) -> RunningServer {
    Server::bind("127.0.0.1:0", vec![("g".into(), two_communities())], base_config(), config)
        .unwrap()
        .start()
        .unwrap()
}

fn call(k: u32) -> ClusterCall {
    ClusterCall {
        graph: "g".into(),
        engine: EngineKind::Scalar,
        width: BlockWidth::W64,
        objective: ugraph_cluster::Objective::MinProb,
        k,
        depth: WireDepth::Unlimited,
        deadline_micros: None,
    }
}

/// A fault-free local replay with the session shape the server pins.
fn local_reference(requests: &[ClusterRequest]) -> Vec<SolveResult> {
    let g = two_communities();
    let cfg = base_config().with_engine(EngineKind::Scalar).with_block_width(BlockWidth::W64);
    let mut session = UgraphSession::new(&g, cfg).unwrap();
    requests.iter().map(|r| session.solve(r.clone()).unwrap()).collect()
}

/// Bit-identity on the **answer** (clustering, probabilities, objective,
/// sample counts), with per-request telemetry normalized: the server's
/// clock differs by nature, and the row-cache hit counters depend on
/// cache warmth — which a retry legitimately changes, since a solve
/// whose response was severed still warmed the server's cache before
/// being recomputed.
fn assert_matches_local(wire: &WireSolve, local: &SolveResult) {
    let mut expected = WireSolve::from_result(local);
    expected.elapsed_micros = wire.elapsed_micros;
    expected.row_cache = wire.row_cache;
    assert_eq!(wire, &expected);
    assert_eq!(wire.objective_estimate.to_bits(), local.objective_estimate.to_bits());
}

/// A fast, deterministic retry policy for loopback tests.
fn test_policy(retries: u32) -> RetryPolicy {
    RetryPolicy {
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(10),
        jitter_seed: SEED,
        budget: Some(Duration::from_secs(5)),
        ..RetryPolicy::with_retries(retries)
    }
}

/// What to do to the next accepted proxy connection.
#[derive(Clone, Copy, Debug)]
enum ConnFault {
    /// Forward at most `n` client→server bytes, then sever both ways.
    /// Small `n` kills the handshake (a refused dial from the pool's
    /// point of view); `n` past the hello tears the request mid-frame.
    DropRequestAfter(usize),
    /// Forward at most `n` server→client bytes, then sever — a truncated
    /// (or entirely dropped) response: the server did the work, the
    /// client never saw the answer, and the retry must recompute it
    /// bit-identically.
    DropResponseAfter(usize),
}

/// The loopback chaos proxy — see the [module docs](self).
struct ChaosProxy {
    addr: SocketAddr,
    plans: Arc<Mutex<VecDeque<ConnFault>>>,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    fn start(upstream: SocketAddr) -> ChaosProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let plans: Arc<Mutex<VecDeque<ConnFault>>> = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let plans = Arc::clone(&plans);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((down, _)) => {
                            let fault = plans.lock().unwrap().pop_front();
                            match TcpStream::connect(upstream) {
                                Ok(up) => relay(down, up, fault),
                                Err(_) => drop(down),
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => {}
                    }
                }
            })
        };
        ChaosProxy { addr, plans, stop, accept: Some(accept) }
    }

    /// Queues `fault` for the next accepted connection (FIFO; unqueued
    /// connections relay transparently).
    fn schedule(&self, fault: ConnFault) {
        self.plans.lock().unwrap().push_back(fault);
    }

    fn scheduled_all_consumed(&self) -> bool {
        self.plans.lock().unwrap().is_empty()
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Spawns the two pump threads of one relayed connection. The threads
/// are detached on purpose: they exit when either endpoint closes (or a
/// budget severs the pair), so joining them would add nothing but a way
/// to deadlock the accept loop behind a parked connection.
fn relay(down: TcpStream, up: TcpStream, fault: Option<ConnFault>) {
    let (req_budget, resp_budget) = match fault {
        None => (usize::MAX, usize::MAX),
        Some(ConnFault::DropRequestAfter(n)) => (n, usize::MAX),
        Some(ConnFault::DropResponseAfter(n)) => (usize::MAX, n),
    };
    let (down2, up2) = match (down.try_clone(), up.try_clone()) {
        (Ok(d), Ok(u)) => (d, u),
        _ => return,
    };
    thread::spawn(move || pump(down, up, req_budget));
    thread::spawn(move || pump(up2, down2, resp_budget));
}

/// Forwards bytes until EOF, error, or the budget runs out — then severs
/// both sockets so neither side can wait on a half-dead pipe.
fn pump(mut from: TcpStream, mut to: TcpStream, mut budget: usize) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let allow = n.min(budget);
        if to.write_all(&buf[..allow]).is_err() {
            break;
        }
        budget -= allow;
        if allow < n || budget == 0 {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[test]
fn pooled_client_rides_over_every_fault_schedule_bit_identically() {
    let server = start(ServerConfig { workers: 2, ..ServerConfig::default() });
    let proxy = ChaosProxy::start(server.addr());
    let mut pool = ClientPool::new(proxy.addr.to_string(), 2, test_policy(5));

    let reference = local_reference(&[
        ClusterRequest::mcp(2),
        ClusterRequest::mcp(3),
        ClusterRequest::acp(2),
        ClusterRequest::mcp(2),
    ]);
    let calls = [
        call(2),
        call(3),
        ClusterCall { objective: ugraph_cluster::Objective::AvgProb, ..call(2) },
        call(2),
    ];

    // One fault schedule per call. Faults fire on fresh proxy dials, so
    // the two-fault pile-up goes first, while both pool slots are still
    // empty (afterwards one slot holds a healthy parked connection that
    // serves every second attempt without dialing). Every failed attempt
    // consumes one queued fault, so within 5 retries the pool always
    // reaches a transparent connection.
    let schedules: [&[ConnFault]; 4] = [
        // Two dead dials in a row: severed mid-hello, then at byte zero.
        &[ConnFault::DropRequestAfter(3), ConnFault::DropRequestAfter(0)],
        // A torn request: the hello passes, the frame dies mid-write.
        &[ConnFault::DropRequestAfter(10)],
        // A truncated response: the server did the work, the client saw
        // two bytes of it.
        &[ConnFault::DropResponseAfter(8)],
        // The connection dies right after the handshake echo.
        &[ConnFault::DropResponseAfter(6)],
    ];

    for ((wire_call, local), schedule) in calls.iter().zip(&reference).zip(schedules) {
        for &fault in schedule {
            proxy.schedule(fault);
        }
        let wire = pool.cluster(wire_call).unwrap_or_else(|report| {
            panic!("pool must ride over {schedule:?}: {report}");
        });
        assert_matches_local(&wire, local);
        assert!(proxy.scheduled_all_consumed(), "every scheduled fault must have fired");
    }
    assert!(
        pool.reconnects() >= 2,
        "post-handshake faults force reconnects: {}",
        pool.reconnects()
    );
    assert!(pool.dials() >= 6, "every faulted attempt re-dials: {}", pool.dials());

    // No worker leaked: both workers still answer, concurrently, on
    // direct connections — a leaked (pinned) worker would park one of
    // these threads forever.
    let addr = server.addr();
    let local = local_reference(&[ClusterRequest::mcp(2)]).remove(0);
    let checks: Vec<_> = (0..2)
        .map(|_| {
            let local = local.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let wire = client.cluster(&call(2)).unwrap().unwrap();
                assert_matches_local(&wire, &local);
            })
        })
        .collect();
    for check in checks {
        check.join().unwrap();
    }

    // Ledger balance: with every session idle and evicted, the global
    // ledger must return to zero — no fault path leaked a charge.
    server.registry().evict_idle_for(Duration::ZERO);
    let stats = server.registry().global_stats();
    assert_eq!(stats.bytes_held, 0, "ledger must balance after chaos: {stats:?}");
}

#[cfg(feature = "fault-injection")]
#[test]
fn mid_frame_stall_is_cut_tallied_and_the_worker_survives() {
    use ugraph_sampling::{faults, FaultPlan, FaultSite};

    let io_timeout = Duration::from_millis(100);
    assert!(io_timeout < STALL_PAUSE, "the stall must outlast the server's deadline");
    // One worker on purpose: if the stalled peer pinned it, the recovery
    // request below would hang forever.
    let server =
        start(ServerConfig { workers: 1, io_timeout: Some(io_timeout), ..ServerConfig::default() });

    let mut stalled = Client::connect(server.addr()).unwrap();
    {
        let _guard = faults::install(FaultPlan::new().fail_at(FaultSite::WireStall, 1));
        // The failpoint writes half the request frame, sleeps STALL_PAUSE,
        // then finishes; the server's mid-frame stall clock trips first
        // and cuts the connection, so the call cannot complete.
        let result = stalled.cluster(&call(2));
        assert!(result.is_err(), "a stalled request must fail, got {result:?}");
        assert_eq!(faults::hits(FaultSite::WireStall), 1, "the stall failpoint must fire");
    }
    drop(stalled);

    // The worker is free again and the stall was tallied as its own
    // typed counter — not lumped in with protocol errors.
    let mut client = Client::connect(server.addr()).unwrap();
    let local = local_reference(&[ClusterRequest::mcp(2)]).remove(0);
    let wire = client.cluster(&call(2)).unwrap().unwrap();
    assert_matches_local(&wire, &local);
    let stats = client.stats(None).unwrap().unwrap();
    assert_eq!(stats.peer_stalled, 1, "{stats:?}");
}

#[test]
fn half_a_header_is_cut_but_idle_connections_park_freely() {
    let io_timeout = Duration::from_millis(100);
    let server =
        start(ServerConfig { workers: 2, io_timeout: Some(io_timeout), ..ServerConfig::default() });

    // Slow loris: a valid hello, then two bytes of a frame header and
    // silence. The stall clock starts at the first mid-frame byte and
    // the server hangs up within the IO deadline.
    let mut loris = TcpStream::connect(server.addr()).unwrap();
    let mut hello = Vec::from(MAGIC);
    hello.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    loris.write_all(&hello).unwrap();
    let mut echo = [0u8; 6];
    loris.read_exact(&mut echo).unwrap();
    loris.write_all(&[0xFF, 0x00]).unwrap();
    loris.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut sink = [0u8; 16];
    match loris.read(&mut sink) {
        Ok(0) | Err(_) => {} // cut, or reset — either way the worker is free
        Ok(n) => panic!("expected the stalled connection to be cut, got {n} bytes"),
    }

    // An *idle* connection — no partial frame on the wire — may park far
    // past the IO deadline and still be served: the deadline measures
    // mid-frame silence, not keep-alive idleness.
    let mut idle = Client::connect(server.addr()).unwrap();
    std::thread::sleep(io_timeout * 4);
    let local = local_reference(&[ClusterRequest::mcp(2)]).remove(0);
    let wire = idle.cluster(&call(2)).unwrap().unwrap();
    assert_matches_local(&wire, &local);

    let stats = idle.stats(None).unwrap().unwrap();
    assert_eq!(stats.peer_stalled, 1, "{stats:?}");
}

#[test]
fn pool_rides_over_a_full_server_restart_bit_identically() {
    let g = two_communities();
    let server1 = Server::bind(
        "127.0.0.1:0",
        vec![("g".into(), Arc::clone(&g))],
        base_config(),
        ServerConfig::default(),
    )
    .unwrap()
    .start()
    .unwrap();
    let addr = server1.addr();

    // One slot, so the retry after the restart must notice the dead
    // parked connection (failed Ping health check) and re-dial it.
    let mut pool = ClientPool::new(addr.to_string(), 1, test_policy(5));
    let before = pool.cluster(&call(2)).unwrap();
    assert_eq!(pool.reconnects(), 0);

    server1.stop().unwrap();
    let server2 = Server::bind(addr, vec![("g".into(), g)], base_config(), ServerConfig::default())
        .unwrap()
        .start()
        .unwrap();

    // Same pool, same call: the health check fails, the pool re-dials,
    // and the fresh server (same seed) answers bit-identically.
    let after = pool.cluster(&call(2)).unwrap();
    assert!(pool.reconnects() >= 1, "the dead connection must be detected");
    assert_eq!(before, WireSolve { elapsed_micros: before.elapsed_micros, ..after.clone() });
    let local = local_reference(&[ClusterRequest::mcp(2)]).remove(0);
    assert_matches_local(&after, &local);
    drop(server2);
}
