//! The blocking TCP [`Server`]: a fixed worker-thread pool over a
//! [`TcpListener`], pure `std` — no async runtime.
//!
//! ## Life of a connection
//!
//! The accept loop (nonblocking, ~25 ms poll so shutdown is prompt) hands
//! each accepted stream to a fixed pool of worker threads over an mpsc
//! channel. A worker performs the 6-byte version handshake — echoing the
//! client's version when it matches, answering with its **own** version
//! and closing when it does not — then serves frames until the client
//! closes, a protocol error terminates the connection, or the server
//! shuts down. Socket reads run under a short read timeout with a manual
//! accumulate loop, so a worker parked on an idle connection still
//! observes shutdown within ~100 ms.
//!
//! ## Shutdown drains, it does not drop
//!
//! [`ShutdownHandle::trigger`] (wired to SIGINT/SIGTERM by the CLI) sets
//! the shutdown flag **and** cancels the server-owned
//! [`CancelToken`] shared by every session
//! config. In-flight solves observe the token at their next checkpoint
//! and return a typed cancellation carrying an
//! [`InterruptReport`](ugraph_cluster::InterruptReport); the worker sends
//! that report to the client as an [`ErrorCode::Cancelled`] frame before
//! closing. Requests arriving after the trigger get
//! [`ErrorCode::ShuttingDown`].

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ugraph_cluster::{ClusterConfig, ClusterError};
use ugraph_graph::UncertainGraph;
use ugraph_sampling::CancelToken;

use crate::protocol::{
    self, ClusterCall, ErrorCode, ErrorFrame, ProtocolError, Request, Response, ServerStats,
    WireSolve, MAGIC, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use crate::registry::{RegistryConfig, RegistryError, SessionRegistry};

/// How often parked reads and the accept loop re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Per-`read` socket timeout; the accumulate loop spans many of these.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads serving connections (also the maximum number of
    /// concurrently-served connections).
    pub workers: usize,
    /// Server-side ceiling applied to every cluster request's wall clock.
    /// Composes with a client-supplied deadline by *minimum*, so a client
    /// cannot extend it.
    pub request_timeout: Option<Duration>,
    /// Global solver-memory ceiling across all sessions (`None` =
    /// unbounded) — the registry's admission/eviction budget.
    pub global_budget: Option<usize>,
    /// Optional additional per-session ceiling.
    pub session_budget: Option<usize>,
    /// Evict sessions idle for at least this long, regardless of memory
    /// pressure (`None` = only budget pressure evicts).
    pub idle_evict: Option<Duration>,
    /// Per-connection IO deadline against a **stalled** peer (`None` =
    /// wait forever, the pre-hardening behavior). A peer that stops
    /// making progress *mid-frame* for this long — on the read side
    /// (slow-loris half-frames) or the write side (a dead TCP half that
    /// never drains our response) — is disconnected and tallied in
    /// [`ServerStats::peer_stalled`]. Idle time **between** frames is
    /// not limited: parked keep-alive connections are legitimate.
    pub io_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            request_timeout: None,
            global_budget: None,
            session_budget: None,
            idle_evict: None,
            io_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// Monotonic server counters, reported by the wire `stats` request.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    cluster_requests: AtomicU64,
    stats_requests: AtomicU64,
    protocol_errors: AtomicU64,
    admission_rejections: AtomicU64,
    deadline_rejections: AtomicU64,
    cancelled_rejections: AtomicU64,
    solve_errors: AtomicU64,
    peer_stalled: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Triggers a cooperative server shutdown from any thread: sets the stop
/// flag (accept loop and parked reads exit within one poll interval) and
/// cancels the server-owned token (in-flight solves return a typed
/// cancellation that is *answered*, not dropped).
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    cancel: CancelToken,
}

impl ShutdownHandle {
    /// Requests shutdown. Idempotent.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        self.cancel.cancel();
    }

    /// Whether shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// The serve-mode front end — see the [module docs](self).
pub struct Server {
    listener: TcpListener,
    registry: Arc<SessionRegistry>,
    counters: Arc<Counters>,
    config: ServerConfig,
    shutdown: ShutdownHandle,
}

impl Server {
    /// Binds the listener and builds the session registry over `graphs`.
    /// `base` is the solver configuration every session inherits (engine
    /// and block width are overridden per request shape); the server
    /// attaches its own [`CancelToken`] so shutdown reaches every solve.
    ///
    /// # Errors
    /// [`ProtocolError::Io`] when the address cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        graphs: Vec<(String, Arc<UncertainGraph>)>,
        base: ClusterConfig,
        config: ServerConfig,
    ) -> Result<Server, ProtocolError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let cancel = CancelToken::new();
        let registry = Arc::new(SessionRegistry::new(
            graphs,
            RegistryConfig {
                base: base.with_cancel_token(cancel.clone()),
                global_budget: config.global_budget,
                session_budget: config.session_budget,
            },
        ));
        Ok(Server {
            listener,
            registry,
            counters: Arc::new(Counters::default()),
            config,
            shutdown: ShutdownHandle { flag: Arc::new(AtomicBool::new(false)), cancel },
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    /// [`ProtocolError::Io`] when the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, ProtocolError> {
        Ok(self.listener.local_addr()?)
    }

    /// A handle that shuts this server down from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// The session registry (stats and tests).
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// Runs the accept loop on the calling thread until
    /// [`ShutdownHandle::trigger`] fires, then joins every worker —
    /// workers finish (and answer) their in-flight request first.
    ///
    /// # Errors
    /// [`ProtocolError::Io`] when the worker pool cannot be spawned.
    pub fn run(self) -> Result<(), ProtocolError> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.config.workers.max(1));
        for i in 0..self.config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let ctx = ConnCtx {
                registry: Arc::clone(&self.registry),
                counters: Arc::clone(&self.counters),
                shutdown: self.shutdown.clone(),
                request_timeout: self.config.request_timeout,
                io_timeout: self.config.io_timeout,
            };
            let worker =
                thread::Builder::new().name(format!("ugraph-serve-{i}")).spawn(move || loop {
                    let next = {
                        let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                        guard.recv()
                    };
                    match next {
                        Ok(stream) => ctx.serve_connection(stream),
                        // Channel closed: the accept loop is gone.
                        Err(_) => return,
                    }
                })?;
            workers.push(worker);
        }

        while !self.shutdown.is_triggered() {
            if let Some(age) = self.config.idle_evict {
                self.registry.evict_idle_for(age);
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    Counters::bump(&self.counters.connections);
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Transient accept failures (per-connection resets) must
                // not take the server down.
                Err(_) => thread::sleep(POLL_INTERVAL),
            }
        }
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Spawns [`Server::run`] on a background thread and returns a
    /// [`RunningServer`] that stops (and joins) it on drop — the loopback
    /// harness the tests and the CLI smoke path build on.
    ///
    /// # Errors
    /// [`ProtocolError::Io`] when the thread cannot be spawned.
    pub fn start(self) -> Result<RunningServer, ProtocolError> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown_handle();
        let registry = Arc::clone(&self.registry);
        let join =
            thread::Builder::new().name("ugraph-serve-accept".into()).spawn(move || self.run())?;
        Ok(RunningServer { addr, shutdown, registry, join: Some(join) })
    }
}

/// A server running on a background thread. Dropping it triggers shutdown
/// and joins the accept loop (which drains the workers first).
pub struct RunningServer {
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    registry: Arc<SessionRegistry>,
    join: Option<thread::JoinHandle<Result<(), ProtocolError>>>,
}

impl RunningServer {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown trigger.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// The session registry (stats and tests).
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// Triggers shutdown and waits for the drain to finish.
    ///
    /// # Errors
    /// The accept loop's error, if it failed to start its worker pool.
    pub fn stop(mut self) -> Result<(), ProtocolError> {
        self.shutdown.trigger();
        match self.join.take() {
            Some(join) => join.join().unwrap_or_else(|_| {
                Err(ProtocolError::Io(std::io::Error::other("accept loop panicked")))
            }),
            None => Ok(()),
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.shutdown.trigger();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// What one shutdown-aware socket read produced.
enum ReadStatus {
    /// The buffer is full.
    Done,
    /// Clean EOF before the first byte (peer closed between frames).
    Eof,
    /// Shutdown was requested while waiting.
    Shutdown,
    /// The peer went silent mid-message for longer than the IO deadline.
    Stalled,
}

/// One frame off the wire, or the reason the connection is over.
enum NextFrame {
    Frame(u8, Vec<u8>),
    Closed,
    /// The peer stalled mid-frame; drop it without a response (its read
    /// half may be as dead as its write half).
    Stalled,
}

/// Everything a worker needs to serve connections.
struct ConnCtx {
    registry: Arc<SessionRegistry>,
    counters: Arc<Counters>,
    shutdown: ShutdownHandle,
    request_timeout: Option<Duration>,
    io_timeout: Option<Duration>,
}

/// Whether a transport failure is a stalled peer (our send never
/// drained) rather than a hard disconnect — the write-deadline analogue
/// of [`ReadStatus::Stalled`].
fn is_write_stall(e: &ProtocolError) -> bool {
    matches!(
        e,
        ProtocolError::Io(io) if matches!(
            io.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    )
}

impl ConnCtx {
    /// Serves one connection to completion. Never panics; protocol
    /// violations are answered (best effort) and counted, then the
    /// connection is closed.
    fn serve_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
            return;
        }
        // The write deadline: a peer that never drains our response frame
        // cannot pin this worker past the IO deadline. Progress resets
        // it (each accepted chunk gets a fresh window), so only a fully
        // stalled peer trips it.
        if stream.set_write_timeout(self.io_timeout).is_err() {
            return;
        }
        match self.handshake(&mut stream) {
            Ok(true) => {}
            Ok(false) => return,
            Err(_) => {
                Counters::bump(&self.counters.protocol_errors);
                return;
            }
        }
        loop {
            match self.next_frame(&mut stream) {
                Ok(NextFrame::Frame(kind, payload)) => {
                    let (response, close) = self.respond(kind, &payload);
                    if close {
                        Counters::bump(&self.counters.protocol_errors);
                    }
                    let frame = protocol::encode_response(&response);
                    if let Err(e) = protocol::write_frame(&mut stream, &frame) {
                        if is_write_stall(&e) {
                            Counters::bump(&self.counters.peer_stalled);
                        }
                        return;
                    }
                    if close {
                        return;
                    }
                }
                Ok(NextFrame::Closed) => return,
                Ok(NextFrame::Stalled) => {
                    Counters::bump(&self.counters.peer_stalled);
                    return;
                }
                Err(e) => {
                    Counters::bump(&self.counters.protocol_errors);
                    // Best-effort: tell the client why before closing.
                    let frame =
                        protocol::encode_response(&Response::Error(error_frame_of_protocol(&e)));
                    if let Err(e) = protocol::write_frame(&mut stream, &frame) {
                        if is_write_stall(&e) {
                            Counters::bump(&self.counters.peer_stalled);
                        }
                    }
                    return;
                }
            }
        }
    }

    /// Fills `buf`, tolerating read timeouts and checking the shutdown
    /// flag between them. `read_exact` cannot be used here: it discards
    /// partial data when a timeout splits a frame.
    ///
    /// The stall clock: with an IO deadline configured, a peer that stops
    /// delivering bytes **mid-message** for that long yields
    /// [`ReadStatus::Stalled`]. When `idle_ok` is set (waiting at a
    /// message boundary) the clock only starts once the first byte
    /// arrives — idle keep-alive connections may park forever; half a
    /// header may not. Every received byte restarts the clock, so a slow
    /// but live peer is served, and only a silent one is cut.
    fn read_full(
        &self,
        stream: &mut TcpStream,
        buf: &mut [u8],
        idle_ok: bool,
    ) -> Result<ReadStatus, ProtocolError> {
        let mut got = 0;
        let mut last_progress = if idle_ok { None } else { Some(Instant::now()) };
        while got < buf.len() {
            if self.shutdown.is_triggered() {
                return Ok(ReadStatus::Shutdown);
            }
            if let (Some(since), Some(limit)) = (last_progress, self.io_timeout) {
                if since.elapsed() >= limit {
                    return Ok(ReadStatus::Stalled);
                }
            }
            match stream.read(&mut buf[got..]) {
                Ok(0) if got == 0 && idle_ok => return Ok(ReadStatus::Eof),
                Ok(0) => {
                    return Err(ProtocolError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed mid-message",
                    )))
                }
                Ok(n) => {
                    got += n;
                    last_progress = Some(Instant::now());
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(ProtocolError::Io(e)),
            }
        }
        Ok(ReadStatus::Done)
    }

    /// Server side of the version handshake. Returns `Ok(true)` when the
    /// connection may proceed; `Ok(false)` closes it quietly (clean
    /// disconnect, shutdown, or a version mismatch already answered).
    fn handshake(&self, stream: &mut TcpStream) -> Result<bool, ProtocolError> {
        let mut hello = [0u8; 6];
        match self.read_full(stream, &mut hello, true)? {
            ReadStatus::Done => {}
            ReadStatus::Eof | ReadStatus::Shutdown => return Ok(false),
            ReadStatus::Stalled => {
                Counters::bump(&self.counters.peer_stalled);
                return Ok(false);
            }
        }
        if hello[..4] != MAGIC {
            let mut magic = [0u8; 4];
            magic.copy_from_slice(&hello[..4]);
            return Err(ProtocolError::BadMagic(magic));
        }
        let theirs = u16::from_le_bytes([hello[4], hello[5]]);
        // Always answer with the version *we* speak: on a match this is
        // the echo the client expects; on a mismatch it tells the old
        // client exactly what to report before we close.
        protocol::write_hello(stream, PROTOCOL_VERSION)?;
        if theirs != PROTOCOL_VERSION {
            Counters::bump(&self.counters.protocol_errors);
            return Ok(false);
        }
        Ok(true)
    }

    /// Reads one frame under the shutdown-aware accumulate loop.
    fn next_frame(&self, stream: &mut TcpStream) -> Result<NextFrame, ProtocolError> {
        let mut header = [0u8; 4];
        match self.read_full(stream, &mut header, true)? {
            ReadStatus::Done => {}
            ReadStatus::Eof | ReadStatus::Shutdown => return Ok(NextFrame::Closed),
            ReadStatus::Stalled => return Ok(NextFrame::Stalled),
        }
        let len = u32::from_le_bytes(header);
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(ProtocolError::Oversized(len));
        }
        let mut body = vec![0u8; len as usize];
        match self.read_full(stream, &mut body, false)? {
            ReadStatus::Done => {}
            // Shutdown mid-frame: the bytes are part of a request we will
            // no longer serve; drop them with the connection.
            ReadStatus::Eof | ReadStatus::Shutdown => return Ok(NextFrame::Closed),
            ReadStatus::Stalled => return Ok(NextFrame::Stalled),
        }
        let kind = body[0];
        body.drain(..1);
        Ok(NextFrame::Frame(kind, body))
    }

    /// Turns one decoded frame into a response. The `bool` asks the
    /// caller to close the connection after sending (decode failures —
    /// the stream may be desynchronized even though framing held).
    fn respond(&self, kind: u8, payload: &[u8]) -> (Response, bool) {
        let request = match protocol::decode_request(kind, payload) {
            Ok(request) => request,
            Err(e) => return (Response::Error(error_frame_of_protocol(&e)), true),
        };
        match request {
            Request::Cluster(call) => {
                Counters::bump(&self.counters.cluster_requests);
                if self.shutdown.is_triggered() {
                    let frame = ErrorFrame::new(
                        ErrorCode::ShuttingDown,
                        "server is shutting down and accepts no new work",
                    );
                    return (Response::Error(frame), false);
                }
                (self.cluster(&call), false)
            }
            Request::Stats { graph } => {
                Counters::bump(&self.counters.stats_requests);
                (Response::Stats(self.stats(graph.as_deref())), false)
            }
            // Health checks are answered even during shutdown (the pool
            // uses them to decide where to retry) and left out of the
            // request counters so probing never skews traffic stats.
            Request::Ping { nonce } => (Response::Pong { nonce }, false),
        }
    }

    /// Serves one cluster call through the registry.
    fn cluster(&self, call: &ClusterCall) -> Response {
        let lease = match self.registry.acquire(call) {
            Ok(lease) => lease,
            Err(RegistryError::UnknownGraph(name)) => {
                Counters::bump(&self.counters.admission_rejections);
                let frame = ErrorFrame::new(
                    ErrorCode::UnknownGraph,
                    format!("graph {name:?} is not loaded on this server"),
                );
                return Response::Error(frame);
            }
            Err(e @ RegistryError::AdmissionRejected { .. }) => {
                Counters::bump(&self.counters.admission_rejections);
                return Response::Error(ErrorFrame::new(
                    ErrorCode::AdmissionRejected,
                    e.to_string(),
                ));
            }
            Err(RegistryError::Session(e)) => {
                Counters::bump(&self.counters.solve_errors);
                return Response::Error(ErrorFrame::from_cluster_error(&e));
            }
        };
        let mut request = call.to_request();
        if let Some(timeout) = self.request_timeout {
            // `with_deadline` takes the minimum, so a client deadline can
            // only tighten the server's ceiling, never extend it.
            request = request.with_deadline(timeout);
        }
        match lease.solve(request) {
            Ok(result) => Response::Cluster(WireSolve::from_result(&result)),
            Err(e) => {
                match &e {
                    ClusterError::DeadlineExceeded(_) => {
                        Counters::bump(&self.counters.deadline_rejections)
                    }
                    ClusterError::Cancelled(_) => {
                        Counters::bump(&self.counters.cancelled_rejections)
                    }
                    ClusterError::SessionClosed => {
                        Counters::bump(&self.counters.solve_errors);
                        // The actor behind this session is gone; drop the
                        // poisoned entry so a retry respawns a fresh one
                        // (bit-identical answers) instead of re-leasing
                        // the corpse.
                        self.registry.discard(lease.key());
                    }
                    _ => Counters::bump(&self.counters.solve_errors),
                }
                Response::Error(ErrorFrame::from_cluster_error(&e))
            }
        }
    }

    /// Assembles the wire stats report.
    fn stats(&self, graph_filter: Option<&str>) -> ServerStats {
        let memory = self.registry.global_stats();
        ServerStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            cluster_requests: self.counters.cluster_requests.load(Ordering::Relaxed),
            stats_requests: self.counters.stats_requests.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            admission_rejections: self.counters.admission_rejections.load(Ordering::Relaxed),
            deadline_rejections: self.counters.deadline_rejections.load(Ordering::Relaxed),
            cancelled_rejections: self.counters.cancelled_rejections.load(Ordering::Relaxed),
            solve_errors: self.counters.solve_errors.load(Ordering::Relaxed),
            peer_stalled: self.counters.peer_stalled.load(Ordering::Relaxed),
            sessions_evicted: self.registry.sessions_evicted(),
            bytes_held: memory.bytes_held as u64,
            bytes_limit: memory.bytes_limit.map(|l| l as u64),
            graphs: self.registry.graph_names().to_vec(),
            sessions: self.registry.stats_entries(graph_filter),
        }
    }
}

/// The wire error a protocol violation is answered with.
fn error_frame_of_protocol(e: &ProtocolError) -> ErrorFrame {
    let code = match e {
        ProtocolError::VersionMismatch { .. } => ErrorCode::UnsupportedVersion,
        ProtocolError::Oversized(_) => ErrorCode::Oversized,
        ProtocolError::UnknownKind(_) => ErrorCode::UnknownKind,
        _ => ErrorCode::Malformed,
    };
    ErrorFrame::new(code, e.to_string())
}
