//! # ugraph-server — the network front end of the solver stack
//!
//! Serve mode for uncertain-graph clustering (*Clustering Uncertain
//! Graphs*, Ceccarello et al., VLDB 2017): long-lived graphs answer many
//! clustering queries, which is precisely the read-mostly, session-
//! amortized shape [`UgraphSession`](ugraph_cluster::UgraphSession)
//! optimizes. This crate puts a TCP socket in front of it:
//!
//! * [`protocol`] — a versioned, length-prefixed **binary wire protocol**
//!   (magic + version handshake, typed request/response frames,
//!   hand-serialized with no external dependency, documented in the
//!   repository's `PROTOCOL.md`);
//! * [`registry`] — the [`SessionRegistry`]: one
//!   [`SessionHandle`](ugraph_cluster::SessionHandle) per
//!   `(graph, engine, width)` shape, requests serialized per session but
//!   parallel across sessions, and admission + LRU eviction of whole
//!   *idle* sessions under one global
//!   [`MemoryBudget`](ugraph_sampling::MemoryBudget) — evicted sessions
//!   are respawned on demand and, thanks to per-index RNG streams, answer
//!   **bit-identically**;
//! * [`server`] — a pure-`std` blocking [`Server`]: fixed worker-thread
//!   pool over a `TcpListener` (no async runtime — dependencies are
//!   vendored offline), per-request deadlines wired into
//!   [`ClusterRequest::with_deadline`](ugraph_cluster::ClusterRequest::with_deadline),
//!   and a server-owned [`CancelToken`](ugraph_cluster::CancelToken)
//!   fan-out so shutdown drains in-flight solves cooperatively and
//!   responds with their
//!   [`InterruptReport`](ugraph_cluster::InterruptReport) instead of
//!   dropping connections;
//! * [`client`] — a small blocking [`Client`] used by the `ugraph client`
//!   subcommand and the loopback test suites;
//! * [`retry`] — the [`RetryPolicy`]: deterministic exponential backoff
//!   with seeded jitter, a cumulative retry budget, and a
//!   retryable-vs-terminal classification of every failure, all
//!   min-composed with the request deadline (retrying is safe because
//!   wire answers are bit-identical and solves idempotent);
//! * [`pool`] — the [`ClientPool`]: lazily-dialed, `Ping`-health-checked
//!   connections with transparent reconnect-on-failure, driving requests
//!   under the retry policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not panics; tests,
// benches, and doctests (separate crates / cfg(test) builds) may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod pool;
pub mod protocol;
pub mod registry;
pub mod retry;
pub mod server;

pub use client::Client;
pub use pool::ClientPool;
pub use protocol::{
    ClusterCall, ErrorCode, ErrorFrame, ProtocolError, Request, Response, ServerStats,
    SessionEntry, WireDepth, WireSolve, PROTOCOL_VERSION,
};
pub use registry::{Lease, RegistryConfig, RegistryError, SessionKey, SessionRegistry};
pub use retry::{RetryError, RetryPolicy, RetryReport};
pub use server::{RunningServer, Server, ServerConfig, ShutdownHandle};
