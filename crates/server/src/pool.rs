//! The [`ClientPool`]: lazily-dialed, health-checked connections with
//! transparent reconnect-on-failure.
//!
//! A pool owns up to `size` parked [`Client`] connections to one server
//! address. Nothing is dialed until a request needs a connection;
//! checked-in connections are **health-checked** with a v2 `Ping` before
//! reuse (a dead TCP half is discovered by a 16-byte round trip, not by
//! failing the caller's request); any connection that fails is dropped
//! and transparently re-dialed — the reconnect is counted, never
//! surfaced as an error by itself.
//!
//! The request methods ([`ClientPool::cluster`],
//! [`ClientPool::stats`]) drive the pool under the
//! [`RetryPolicy`]: each attempt checks out a connection (round-robin,
//! so a retry prefers a *different* slot than the one that just
//! failed), and the loop obeys the policy's attempt/budget bounds
//! min-composed with the call's own deadline — a retry never outlives
//! the moment the answer stops mattering. Exhaustion surfaces the typed
//! [`RetryReport`].
//!
//! The pool is a blocking, single-owner object (`&mut self`), matching
//! the blocking [`Client`] it manages: share-nothing callers (the CLI,
//! one pool per thread in tests) need no lock.

use std::time::{Duration, Instant};

use crate::client::Client;
use crate::protocol::{ClusterCall, ProtocolError, ServerStats, WireSolve};
use crate::retry::{run_with_retries, RetryPolicy, RetryReport};

/// A pool of reconnecting connections to one serve-mode address — see
/// the [module docs](self).
#[derive(Debug)]
pub struct ClientPool {
    addr: String,
    slots: Vec<Option<Client>>,
    next_slot: usize,
    policy: RetryPolicy,
    nonce: u64,
    dials: u64,
    reconnects: u64,
}

impl ClientPool {
    /// A pool of up to `size` connections (minimum 1) to `addr`, retried
    /// under `policy`. Nothing is dialed yet.
    pub fn new(addr: impl Into<String>, size: usize, policy: RetryPolicy) -> ClientPool {
        ClientPool {
            addr: addr.into(),
            slots: (0..size.max(1)).map(|_| None).collect(),
            next_slot: 0,
            policy,
            nonce: 0,
            dials: 0,
            reconnects: 0,
        }
    }

    /// Number of connection slots.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Connections dialed so far (first dials and re-dials).
    pub fn dials(&self) -> u64 {
        self.dials
    }

    /// Re-dials forced by a failed health check or a failed request —
    /// the count the CLI logs so an operator can see the pool riding
    /// over restarts.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The retry policy requests run under.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Checks out a healthy connection from the next slot (round-robin):
    /// a parked connection is ping-verified first (failing the check
    /// discards it and counts a reconnect); an empty slot dials lazily.
    ///
    /// # Errors
    /// The dial's [`ProtocolError`] — retryable at the caller's layer
    /// unless it is a version mismatch.
    fn checkout(&mut self) -> Result<(usize, Client), ProtocolError> {
        let slot = self.next_slot;
        self.next_slot = (self.next_slot + 1) % self.slots.len();
        if let Some(mut client) = self.slots[slot].take() {
            self.nonce += 1;
            if client.ping(self.nonce).is_ok() {
                return Ok((slot, client));
            }
            // The parked connection is dead (server restarted, half-open
            // TCP, …): discard it and fall through to a fresh dial.
            self.reconnects += 1;
        }
        self.dials += 1;
        Ok((slot, Client::connect(&self.addr)?))
    }

    /// Parks a connection that completed a request cleanly.
    fn check_in(&mut self, slot: usize, client: Client) {
        self.slots[slot] = Some(client);
    }

    /// One attempt of `op` on a checked-out connection. A transport-layer
    /// failure drops the connection (the next attempt re-dials); a clean
    /// round trip — even a typed server refusal — parks it for reuse.
    fn attempt<T>(
        &mut self,
        op: impl FnOnce(&mut Client) -> Result<T, ProtocolError>,
    ) -> Result<T, ProtocolError> {
        let (slot, mut client) = match self.checkout() {
            Ok(pair) => pair,
            Err(e) => {
                // A failed dial forces the next attempt to re-dial too —
                // count it, so riding over a down-then-restarted server
                // is visible even when no connection was ever parked.
                self.reconnects += 1;
                return Err(e);
            }
        };
        match op(&mut client) {
            Ok(value) => {
                self.check_in(slot, client);
                Ok(value)
            }
            Err(e) => {
                // The stream may be desynchronized: never park it.
                drop(client);
                self.reconnects += 1;
                Err(e)
            }
        }
    }

    /// Issues `call` with retries. The call's own `deadline_micros`
    /// (clocked from now) min-composes with the policy: backoff never
    /// sleeps past it.
    ///
    /// # Errors
    /// A [`RetryReport`] when the attempts, the retry budget, or the
    /// deadline are exhausted, or the failure is terminal (malformed
    /// request, version mismatch, solver error).
    pub fn cluster(&mut self, call: &ClusterCall) -> Result<WireSolve, RetryReport> {
        let deadline =
            call.deadline_micros.map(|micros| Instant::now() + Duration::from_micros(micros));
        let policy = self.policy.clone();
        run_with_retries(&policy, deadline, |_attempt| self.attempt(|client| client.cluster(call)))
    }

    /// Fetches server statistics with retries (no deadline of its own).
    ///
    /// # Errors
    /// See [`ClientPool::cluster`].
    pub fn stats(&mut self, graph: Option<&str>) -> Result<ServerStats, RetryReport> {
        let policy = self.policy.clone();
        run_with_retries(&policy, None, |_attempt| self.attempt(|client| client.stats(graph)))
    }
}
