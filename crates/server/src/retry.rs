//! Deadline-aware retry policy with deterministic backoff.
//!
//! Retrying is *safe* on this wire in a way it rarely is elsewhere:
//! solves are idempotent by construction (per-index RNG streams make
//! every re-issue bit-identical), so the only question a failure poses
//! is whether it is **transient**. The [`RetryPolicy`] answers it:
//!
//! * transport failures ([`ProtocolError`]) are retryable — except
//!   [`ProtocolError::VersionMismatch`], which no reconnect can fix;
//! * typed server refusals retry exactly when
//!   [`ErrorCode::is_retryable`](crate::ErrorCode::is_retryable) says
//!   so (`AdmissionRejected`,
//!   `SessionClosed`, `ShuttingDown`);
//! * everything else is terminal and surfaces immediately.
//!
//! Backoff is exponential with **deterministic seeded jitter** — no
//! wall-clock entropy, so a retry schedule is exactly reproducible from
//! the seed — and is min-composed with both a cumulative sleep
//! [`RetryPolicy::budget`] and the request deadline: a retry loop never
//! sleeps past the moment the answer stops mattering. The arithmetic
//! lives in the pure [`RetryPolicy::next_backoff`], so tests can verify
//! the never-outlives-the-deadline property without sleeping at all.
//!
//! On exhaustion the caller gets a typed [`RetryReport`]: how many
//! attempts ran, how long was slept between them, and the last error.

use std::fmt;
use std::time::{Duration, Instant};

use crate::protocol::{ErrorFrame, ProtocolError};

/// How a retry loop paces and bounds itself.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry after that.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter (same seed, same schedule).
    pub jitter_seed: u64,
    /// Ceiling on the **cumulative** backoff slept across all retries of
    /// one request (`None` = only `max_attempts` and the deadline bound
    /// the loop).
    pub budget: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0,
            budget: Some(Duration::from_secs(30)),
        }
    }
}

/// Finalizer of splitmix64 — the same generator the sampling layer
/// trusts for per-index streams, reused here so jitter needs no entropy
/// source.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy allowing `retries` retries after the first attempt — the
    /// shape the `--retries` CLI flag denotes.
    pub fn with_retries(retries: u32) -> RetryPolicy {
        RetryPolicy { max_attempts: retries.saturating_add(1), ..RetryPolicy::default() }
    }

    /// The backoff to sleep after failed attempt number `attempt`
    /// (1-based), or `None` when the loop must stop instead: attempts
    /// exhausted, cumulative [`budget`](RetryPolicy::budget) spent
    /// (`slept` is what previous retries already used), or the sleep
    /// would reach `remaining` — the time left until the request
    /// deadline — leaving no room to actually retry.
    ///
    /// Pure: same inputs, same answer. The exponential raw value
    /// `base_backoff << (attempt-1)` is capped at
    /// [`max_backoff`](RetryPolicy::max_backoff), then jittered into
    /// `[raw/2, raw]` by the seeded splitmix64 stream.
    pub fn next_backoff(
        &self,
        attempt: u32,
        slept: Duration,
        remaining: Option<Duration>,
    ) -> Option<Duration> {
        if attempt >= self.max_attempts {
            return None;
        }
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .base_backoff
            .checked_mul(1u32 << exp.min(31))
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff);
        // Jitter into [raw/2, raw]: desynchronizes a fleet of clients
        // hammering a recovering server without ever under-waiting below
        // half the intended pace.
        let half = raw / 2;
        let spread = raw.saturating_sub(half);
        let roll = splitmix64(self.jitter_seed ^ u64::from(attempt));
        let jittered = half + spread.mul_f64((roll % 1024) as f64 / 1023.0);
        if let Some(budget) = self.budget {
            if slept + jittered > budget {
                return None;
            }
        }
        if let Some(remaining) = remaining {
            if jittered >= remaining {
                return None;
            }
        }
        Some(jittered)
    }
}

/// The last failure a retry loop observed, either layer.
#[derive(Debug)]
pub enum RetryError {
    /// The transport/codec layer failed (connection level).
    Protocol(ProtocolError),
    /// The server answered with a typed refusal.
    Server(ErrorFrame),
}

impl RetryError {
    /// Whether this failure is worth retrying — the policy's
    /// classification table:
    ///
    /// | failure | class |
    /// |---|---|
    /// | [`ProtocolError::VersionMismatch`] | terminal |
    /// | any other [`ProtocolError`] (IO, torn frames, bad magic, …) | retryable |
    /// | [`ErrorFrame`] with [`is_retryable`](crate::ErrorCode::is_retryable) code | retryable |
    /// | any other [`ErrorFrame`] | terminal |
    pub fn is_retryable(&self) -> bool {
        match self {
            RetryError::Protocol(ProtocolError::VersionMismatch { .. }) => false,
            RetryError::Protocol(_) => true,
            RetryError::Server(frame) => frame.code.is_retryable(),
        }
    }
}

impl fmt::Display for RetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryError::Protocol(e) => write!(f, "transport: {e}"),
            RetryError::Server(frame) => write!(f, "server: {:?}: {}", frame.code, frame.message),
        }
    }
}

/// Why (and how) a retried request ultimately failed.
#[derive(Debug)]
pub struct RetryReport {
    /// Attempts that ran (including the first).
    pub attempts: u32,
    /// Total backoff slept between attempts.
    pub backoff_slept: Duration,
    /// The failure of the final attempt.
    pub last_error: RetryError,
}

impl fmt::Display for RetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "request failed after {} attempt(s) ({:?} backoff): {}",
            self.attempts, self.backoff_slept, self.last_error
        )
    }
}

impl std::error::Error for RetryReport {}

/// Drives `op` under `policy` until it succeeds, fails terminally, or
/// the policy (attempts, budget, `deadline`) is exhausted. `op` receives
/// the 1-based attempt number and answers in the client's two-layer
/// result shape; the loop flattens it, classifying each layer per
/// [`RetryError::is_retryable`].
///
/// # Errors
/// A [`RetryReport`] carrying the last failure.
pub fn run_with_retries<T>(
    policy: &RetryPolicy,
    deadline: Option<Instant>,
    mut op: impl FnMut(u32) -> Result<Result<T, ErrorFrame>, ProtocolError>,
) -> Result<T, RetryReport> {
    let mut slept = Duration::ZERO;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let error = match op(attempt) {
            Ok(Ok(value)) => return Ok(value),
            Ok(Err(frame)) => RetryError::Server(frame),
            Err(e) => RetryError::Protocol(e),
        };
        let report = RetryReport { attempts: attempt, backoff_slept: slept, last_error: error };
        if !report.last_error.is_retryable() {
            return Err(report);
        }
        let remaining = deadline.map(|d| d.saturating_duration_since(Instant::now()));
        let Some(backoff) = policy.next_backoff(attempt, slept, remaining) else {
            return Err(report);
        };
        std::thread::sleep(backoff);
        slept += backoff;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorCode;

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(450),
            jitter_seed: 42,
            budget: None,
        };
        let a = policy.next_backoff(1, Duration::ZERO, None).unwrap();
        let b = policy.next_backoff(2, Duration::ZERO, None).unwrap();
        let c = policy.next_backoff(5, Duration::ZERO, None).unwrap();
        // Same inputs, same schedule.
        assert_eq!(a, policy.next_backoff(1, Duration::ZERO, None).unwrap());
        // Jitter stays within [raw/2, raw].
        assert!(a >= Duration::from_millis(50) && a <= Duration::from_millis(100), "{a:?}");
        assert!(b >= Duration::from_millis(100) && b <= Duration::from_millis(200), "{b:?}");
        // Attempt 5 raw would be 1600ms; the cap holds it at 450ms.
        assert!(c <= Duration::from_millis(450), "{c:?}");
    }

    #[test]
    fn attempts_budget_and_deadline_all_stop_the_loop() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0,
            budget: Some(Duration::from_millis(120)),
        };
        assert!(policy.next_backoff(3, Duration::ZERO, None).is_none(), "attempts exhausted");
        assert!(policy.next_backoff(1, Duration::from_millis(100), None).is_none(), "budget spent");
        assert!(
            policy.next_backoff(1, Duration::ZERO, Some(Duration::from_millis(10))).is_none(),
            "deadline too close"
        );
        assert!(policy.next_backoff(1, Duration::ZERO, Some(Duration::from_secs(5))).is_some());
    }

    #[test]
    fn terminal_failures_do_not_retry() {
        let policy = RetryPolicy::with_retries(5);
        let mut calls = 0;
        let report = run_with_retries::<()>(&policy, None, |_| {
            calls += 1;
            Ok(Err(ErrorFrame::new(ErrorCode::Malformed, "bad frame")))
        })
        .unwrap_err();
        assert_eq!(calls, 1, "terminal errors must not be retried");
        assert_eq!(report.attempts, 1);
        assert!(
            matches!(report.last_error, RetryError::Server(ref f) if f.code == ErrorCode::Malformed)
        );
    }

    #[test]
    fn retryable_failures_retry_until_success() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..RetryPolicy::with_retries(5)
        };
        let mut calls = 0;
        let value = run_with_retries(&policy, None, |attempt| {
            calls += 1;
            if attempt < 3 {
                Ok(Err(ErrorFrame::new(ErrorCode::ShuttingDown, "draining")))
            } else {
                Ok(Ok(42u32))
            }
        })
        .unwrap();
        assert_eq!(value, 42);
        assert_eq!(calls, 3);
    }

    #[test]
    fn version_mismatch_is_terminal_even_though_transport() {
        let policy = RetryPolicy::with_retries(5);
        let mut calls = 0;
        let report = run_with_retries::<()>(&policy, None, |_| {
            calls += 1;
            Err(ProtocolError::VersionMismatch { ours: 2, theirs: 1 })
        })
        .unwrap_err();
        assert_eq!(calls, 1);
        assert!(!report.last_error.is_retryable());
    }
}
