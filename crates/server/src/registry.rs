//! The [`SessionRegistry`]: one session per `(graph, engine, width)`
//! shape, leased to workers, under one global memory budget.
//!
//! The registry generalizes the per-session ledger of the solver stack to
//! a **server-wide** one: every session it spawns charges a
//! [`MemoryBudget::subledger`] of a single global budget, so
//!
//! * pool-level shard eviction inside any session reacts to *global*
//!   pressure exactly as it does to a per-session limit, and
//! * the registry itself evicts **whole idle sessions** (LRU by lease
//!   time) when the global ledger runs hot — freeing their row caches and
//!   labels too, which shard eviction alone cannot.
//!
//! Eviction is safe because a session is a pure function of
//! `(graph, config, seed)`: a respawned session answers every request
//! **bit-identically** to the evicted one (per-index RNG streams). Graphs
//! themselves stay resident in the catalog — only solver state is evicted.
//!
//! Leases ([`SessionRegistry::acquire`]) carry an in-flight guard:
//! sessions with live leases are never evicted, so the LRU policy always
//! takes an idle victim, never the session a worker is solving on.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ugraph_cluster::{ClusterConfig, ClusterError, ClusterRequest, SessionHandle, SolveResult};
use ugraph_graph::UncertainGraph;
use ugraph_sampling::{BlockWidth, EngineKind, MemoryBudget, MemoryStats};

use crate::protocol::{ClusterCall, SessionEntry};

/// Shape a session is keyed by: the graph plus the engine configuration
/// that changes its sampling layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionKey {
    /// Catalog name of the graph.
    pub graph: String,
    /// Engine backend.
    pub engine: EngineKind,
    /// Mask-block width.
    pub width: BlockWidth,
}

impl SessionKey {
    /// The key a wire call resolves to.
    pub fn of_call(call: &ClusterCall) -> SessionKey {
        SessionKey { graph: call.graph.clone(), engine: call.engine, width: call.width }
    }
}

/// Registry construction parameters.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Base solver configuration for every session (seed, schedule,
    /// thresholds, cancellation token, …). The engine and block width are
    /// overridden per [`SessionKey`]; `memory_budget` is ignored in favor
    /// of the ledger plumbing below.
    pub base: ClusterConfig,
    /// Global byte ceiling across **all** sessions (`None` = unbounded).
    pub global_budget: Option<usize>,
    /// Optional additional per-session ceiling (`None` = sessions bound
    /// only by the global ledger).
    pub session_budget: Option<usize>,
}

/// Why the registry refused to lease a session.
#[derive(Clone, Debug, PartialEq)]
pub enum RegistryError {
    /// The named graph is not in the catalog.
    UnknownGraph(String),
    /// The global ledger is over its limit even with every idle session
    /// evicted — all remaining footprint belongs to active sessions, so
    /// admitting more work would only deepen the overload.
    AdmissionRejected {
        /// Bytes currently held globally.
        held: usize,
        /// The global limit.
        limit: usize,
    },
    /// Spawning or configuring the session failed.
    Session(ClusterError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownGraph(name) => write!(f, "unknown graph {name:?}"),
            RegistryError::AdmissionRejected { held, limit } => write!(
                f,
                "admission rejected: {held} bytes held by active sessions exceed the global \
                 budget of {limit} bytes"
            ),
            RegistryError::Session(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One live session plus its bookkeeping.
struct Entry {
    handle: Arc<SessionHandle>,
    /// Live leases (queued or executing requests). Guarded sessions are
    /// never evicted.
    in_flight: Arc<AtomicUsize>,
    /// Lease-time tick of the registry clock — the LRU order.
    last_used: u64,
    /// Wall-clock moment of the last lease or release — the age
    /// [`SessionRegistry::evict_idle_for`] measures against.
    last_activity: Instant,
    /// This session's own subledger (its footprint, excluding siblings).
    ledger: MemoryBudget,
    /// Last `kv_line` snapshot, refreshed whenever the session is
    /// observed idle — served for busy sessions so a stats request never
    /// queues behind a long solve.
    last_kv: String,
}

struct Inner {
    /// Insertion-ordered so stats listings are deterministic.
    sessions: Vec<(SessionKey, Entry)>,
    clock: u64,
}

/// The session registry — see the [module docs](self).
pub struct SessionRegistry {
    catalog: HashMap<String, Arc<UncertainGraph>>,
    /// Catalog names in registration order (deterministic listings).
    names: Vec<String>,
    inner: Mutex<Inner>,
    global: MemoryBudget,
    config: RegistryConfig,
    evicted: AtomicU64,
}

/// A leased session: solve through it, drop it to release. While any
/// lease on a session is alive the registry will not evict it.
#[must_use = "dropping the lease releases the session"]
pub struct Lease<'r> {
    registry: &'r SessionRegistry,
    handle: Arc<SessionHandle>,
    guard: Arc<AtomicUsize>,
    key: SessionKey,
}

impl fmt::Debug for Lease<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lease")
            .field("in_flight", &self.guard.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl Lease<'_> {
    /// Solves on the leased session ([`SessionHandle::solve`]).
    ///
    /// # Errors
    /// The [`SessionHandle::solve`] contract.
    pub fn solve(&self, request: ClusterRequest) -> Result<SolveResult, ClusterError> {
        self.handle.solve(request)
    }

    /// The leased handle.
    pub fn handle(&self) -> &Arc<SessionHandle> {
        &self.handle
    }

    /// The shape this lease was acquired for.
    pub fn key(&self) -> &SessionKey {
        &self.key
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        self.guard.fetch_sub(1, Ordering::SeqCst);
        // Idle age counts from release, not lease: a long solve must not
        // look stale the moment it finishes.
        {
            let mut inner = self.registry.locked();
            if let Some((_, entry)) = inner.sessions.iter_mut().find(|(k, _)| *k == self.key) {
                entry.last_activity = Instant::now();
            }
        }
        // At-rest trim: respect the full ceiling once this request is
        // done (the acquire path trims more aggressively, to half).
        if let Some(limit) = self.registry.config.global_budget {
            self.registry.evict_idle_above(limit);
        }
    }
}

impl SessionRegistry {
    /// Builds a registry over a fixed catalog of graphs. Graph memory is
    /// not governed by the budget — only solver state (pools, caches,
    /// labels) is, exactly as in the per-session ledger design.
    pub fn new(
        graphs: Vec<(String, Arc<UncertainGraph>)>,
        config: RegistryConfig,
    ) -> SessionRegistry {
        let global =
            config.global_budget.map_or_else(MemoryBudget::unbounded, MemoryBudget::bounded);
        let names = graphs.iter().map(|(n, _)| n.clone()).collect();
        SessionRegistry {
            catalog: graphs.into_iter().collect(),
            names,
            inner: Mutex::new(Inner { sessions: Vec::new(), clock: 0 }),
            global,
            config,
            evicted: AtomicU64::new(0),
        }
    }

    /// Registered graph names, in registration order.
    pub fn graph_names(&self) -> &[String] {
        &self.names
    }

    /// The global ledger's snapshot (bytes held across all sessions plus
    /// propagated eviction/regeneration counters).
    pub fn global_stats(&self) -> MemoryStats {
        self.global.stats()
    }

    /// Whole sessions evicted so far.
    pub fn sessions_evicted(&self) -> u64 {
        self.evicted.load(Ordering::SeqCst)
    }

    /// The registry lock (poison-safe: the lock only guards bookkeeping).
    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Leases the session for `call`, spawning it on first use. Before a
    /// spawn or reuse, idle sessions are evicted (LRU first) until the
    /// global ledger holds at most **half** its limit — headroom for the
    /// incoming request, so a hot request set does not thrash against
    /// cold sessions' resident shards.
    ///
    /// # Errors
    /// [`RegistryError::UnknownGraph`] for a graph outside the catalog;
    /// [`RegistryError::AdmissionRejected`] when the ledger is over
    /// budget with no idle session left to evict;
    /// [`RegistryError::Session`] when the session cannot be spawned.
    pub fn acquire(&self, call: &ClusterCall) -> Result<Lease<'_>, RegistryError> {
        let key = SessionKey::of_call(call);
        let graph = self
            .catalog
            .get(&key.graph)
            .ok_or_else(|| RegistryError::UnknownGraph(key.graph.clone()))?;

        let mut inner = self.locked();
        inner.clock += 1;
        let tick = inner.clock;
        if let Some((_, entry)) = inner.sessions.iter_mut().find(|(k, _)| *k == key) {
            entry.last_used = tick;
            entry.last_activity = Instant::now();
            entry.in_flight.fetch_add(1, Ordering::SeqCst);
            let lease = Lease {
                registry: self,
                handle: Arc::clone(&entry.handle),
                guard: Arc::clone(&entry.in_flight),
                key,
            };
            drop(inner);
            self.make_headroom()?;
            return Ok(lease);
        }
        drop(inner);

        // Make room before spawning: the new session starts empty, but
        // its pools will want the budget's headroom immediately.
        self.make_headroom()?;

        let config = self.config.base.clone().with_engine(key.engine).with_block_width(key.width);
        let ledger = self.global.subledger(self.config.session_budget);
        let handle = SessionHandle::spawn_with_ledger(Arc::clone(graph), config, ledger.clone())
            .map_err(RegistryError::Session)?;
        let handle = Arc::new(handle);
        let in_flight = Arc::new(AtomicUsize::new(1));

        let mut inner = self.locked();
        // Another worker may have spawned the same key while we were
        // unlocked; keep the first one (ours is fresh and empty, cheap to
        // drop) so both workers serialize on a single session.
        if let Some((_, entry)) = inner.sessions.iter_mut().find(|(k, _)| *k == key) {
            entry.in_flight.fetch_add(1, Ordering::SeqCst);
            let lease = Lease {
                registry: self,
                handle: Arc::clone(&entry.handle),
                guard: Arc::clone(&entry.in_flight),
                key,
            };
            return Ok(lease);
        }
        let lease = Lease {
            registry: self,
            handle: Arc::clone(&handle),
            guard: Arc::clone(&in_flight),
            key: key.clone(),
        };
        let entry = Entry {
            handle,
            in_flight,
            last_used: tick,
            last_activity: Instant::now(),
            ledger,
            last_kv: String::new(),
        };
        inner.sessions.push((key, entry));
        Ok(lease)
    }

    /// Acquire-path trim: evict idle sessions (LRU first) until the
    /// global ledger holds at most half its limit, then check admission.
    fn make_headroom(&self) -> Result<(), RegistryError> {
        let Some(limit) = self.config.global_budget else { return Ok(()) };
        self.evict_idle_above(limit / 2);
        let held = self.global.bytes_held();
        if held > limit {
            return Err(RegistryError::AdmissionRejected { held, limit });
        }
        Ok(())
    }

    /// Evicts idle sessions, least-recently-leased first, until the
    /// global ledger holds at most `watermark` bytes or no idle session
    /// remains. Active sessions (live leases) are never touched.
    fn evict_idle_above(&self, watermark: usize) {
        loop {
            if self.global.bytes_held() <= watermark {
                return;
            }
            let victim = {
                let mut inner = self.locked();
                let victim_idx = inner
                    .sessions
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, e))| {
                        e.in_flight.load(Ordering::SeqCst) == 0 && e.ledger.bytes_held() > 0
                    })
                    .min_by_key(|(_, (_, e))| e.last_used)
                    .map(|(i, _)| i);
                match victim_idx {
                    Some(i) => inner.sessions.remove(i),
                    None => return,
                }
            };
            // Dropping outside the lock: the handle join (actor drain)
            // must not serialize unrelated registry traffic.
            drop(victim);
            self.evicted.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Evicts every session that has been idle (no live lease) for at
    /// least `age`, regardless of memory pressure — freeing its worker
    /// thread and resident state. Returns how many were evicted. The
    /// server's accept loop drives this for the `--idle-evict` flag.
    pub fn evict_idle_for(&self, age: Duration) -> usize {
        let victims: Vec<(SessionKey, Entry)> = {
            let mut inner = self.locked();
            let mut victims = Vec::new();
            let mut i = 0;
            while i < inner.sessions.len() {
                let (_, entry) = &inner.sessions[i];
                if entry.in_flight.load(Ordering::SeqCst) == 0
                    && entry.last_activity.elapsed() >= age
                {
                    victims.push(inner.sessions.remove(i));
                } else {
                    i += 1;
                }
            }
            victims
        };
        let n = victims.len();
        // Dropped outside the lock: actor joins must not block traffic.
        drop(victims);
        self.evicted.fetch_add(n as u64, Ordering::SeqCst);
        n
    }

    /// Per-session stats rows for the wire `stats` response, optionally
    /// filtered by graph name. Idle sessions are queried live (and the
    /// snapshot cached); busy sessions report their cached snapshot, so a
    /// stats request never queues behind a long-running solve.
    pub fn stats_entries(&self, graph_filter: Option<&str>) -> Vec<SessionEntry> {
        // Snapshot handles outside the lock: stats() can block briefly.
        let snapshot: Vec<(SessionKey, Arc<SessionHandle>, Arc<AtomicUsize>)> = {
            let inner = self.locked();
            inner
                .sessions
                .iter()
                .filter(|(k, _)| graph_filter.is_none_or(|g| k.graph == g))
                .map(|(k, e)| (k.clone(), Arc::clone(&e.handle), Arc::clone(&e.in_flight)))
                .collect()
        };
        let mut entries = Vec::with_capacity(snapshot.len());
        for (key, handle, in_flight) in snapshot {
            let load = in_flight.load(Ordering::SeqCst);
            let kv = if load == 0 {
                match handle.stats() {
                    Ok(stats) => {
                        let kv = stats.kv_line();
                        let mut inner = self.locked();
                        if let Some((_, e)) = inner.sessions.iter_mut().find(|(k, _)| *k == key) {
                            e.last_kv.clone_from(&kv);
                        }
                        kv
                    }
                    Err(_) => String::new(),
                }
            } else {
                let inner = self.locked();
                inner
                    .sessions
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, e)| e.last_kv.clone())
                    .unwrap_or_default()
            };
            entries.push(SessionEntry {
                graph: key.graph,
                engine: key.engine.name().to_string(),
                width: key.width.name().to_string(),
                in_flight: load as u32,
                kv,
            });
        }
        entries
    }

    /// Removes the session for `key` from the registry, if present — the
    /// recovery path for a dead session actor
    /// ([`ClusterError::SessionClosed`](ugraph_cluster::ClusterError)):
    /// a poisoned entry must not be handed to the next request, which
    /// should instead respawn a fresh session (bit-identical by the
    /// per-index RNG stream invariant). Callers may still hold leases on
    /// the discarded session; its state is freed once the last one drops.
    /// Not counted as an eviction — discards are a failure path, not a
    /// memory-pressure decision.
    pub fn discard(&self, key: &SessionKey) {
        let victim = {
            let mut inner = self.locked();
            inner.sessions.iter().position(|(k, _)| k == key).map(|i| inner.sessions.remove(i))
        };
        // Dropped outside the lock, like every other entry removal.
        drop(victim);
    }

    /// Number of live sessions.
    pub fn num_sessions(&self) -> usize {
        self.locked().sessions.len()
    }
}

impl fmt::Debug for SessionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionRegistry")
            .field("graphs", &self.names)
            .field("sessions", &self.num_sessions())
            .field("global", &self.global.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WireDepth;
    use ugraph_cluster::Objective;
    use ugraph_graph::GraphBuilder;

    fn two_communities() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, 0.2).unwrap();
        Arc::new(b.build().unwrap())
    }

    fn call(graph: &str) -> ClusterCall {
        ClusterCall {
            graph: graph.into(),
            engine: EngineKind::Scalar,
            width: BlockWidth::W64,
            objective: Objective::MinProb,
            k: 2,
            depth: WireDepth::Unlimited,
            deadline_micros: None,
        }
    }

    fn registry(global: Option<usize>) -> SessionRegistry {
        SessionRegistry::new(
            vec![("a".into(), two_communities()), ("b".into(), two_communities())],
            RegistryConfig {
                base: ClusterConfig::default().with_seed(7),
                global_budget: global,
                session_budget: None,
            },
        )
    }

    #[test]
    fn sessions_are_keyed_by_shape_and_reused() {
        let r = registry(None);
        {
            let lease = r.acquire(&call("a")).unwrap();
            lease.solve(ClusterRequest::mcp(2)).unwrap();
        }
        {
            let lease = r.acquire(&call("a")).unwrap();
            lease.solve(ClusterRequest::mcp(3)).unwrap();
        }
        assert_eq!(r.num_sessions(), 1, "same shape reuses the session");
        let other_engine = ClusterCall { engine: EngineKind::Adaptive, ..call("a") };
        drop(r.acquire(&other_engine).unwrap());
        drop(r.acquire(&call("b")).unwrap());
        assert_eq!(r.num_sessions(), 3, "engine and graph are part of the key");
        let entries = r.stats_entries(None);
        assert_eq!(entries.len(), 3);
        assert!(entries[0].kv.contains("requests=2"), "{}", entries[0].kv);
        assert_eq!(r.stats_entries(Some("b")).len(), 1);
    }

    #[test]
    fn unknown_graph_is_rejected() {
        let r = registry(None);
        assert_eq!(
            r.acquire(&call("nope")).unwrap_err(),
            RegistryError::UnknownGraph("nope".into())
        );
    }

    #[test]
    fn idle_sessions_are_evicted_lru_and_respawn_bit_identically() {
        // Reference answers from an unbudgeted registry.
        let free = registry(None);
        let ref_a = free.acquire(&call("a")).unwrap().solve(ClusterRequest::mcp(2)).unwrap();
        let ref_b = free.acquire(&call("b")).unwrap().solve(ClusterRequest::mcp(2)).unwrap();

        // A global budget far below two sessions' combined footprint.
        let tight = registry(Some(3 << 10));
        let a1 = tight.acquire(&call("a")).unwrap().solve(ClusterRequest::mcp(2)).unwrap();
        assert!(tight.global_stats().bytes_held > 0);
        // Leasing the second graph must make headroom by evicting the
        // idle session for "a" — not by touching the one we lease.
        let b1 = {
            let lease = tight.acquire(&call("b")).unwrap();
            assert!(
                tight.sessions_evicted() >= 1,
                "idle session must be evicted for headroom: {:?}",
                tight.global_stats()
            );
            lease.solve(ClusterRequest::mcp(2)).unwrap()
        };
        // Both graphs keep answering, bit-identically to the unbudgeted
        // run, across evict/respawn cycles.
        let a2 = tight.acquire(&call("a")).unwrap().solve(ClusterRequest::mcp(2)).unwrap();
        for (got, want) in [(&a1, &ref_a), (&b1, &ref_b), (&a2, &ref_a)] {
            assert_eq!(got.clustering, want.clustering);
            assert_eq!(got.objective_estimate.to_bits(), want.objective_estimate.to_bits());
            assert_eq!(got.assign_probs, want.assign_probs);
        }
        // The ledger respects the ceiling at rest.
        assert!(tight.global_stats().bytes_held <= 3 << 10);
    }

    #[test]
    fn active_sessions_are_never_evicted() {
        let r = registry(Some(1)); // everything is over budget immediately
        let lease_a = r.acquire(&call("a")).unwrap();
        lease_a.solve(ClusterRequest::mcp(2)).unwrap();
        // "a" is still leased: headroom-making cannot evict it, and with
        // no idle victim left the next acquire is an admission rejection.
        let err = r.acquire(&call("b")).unwrap_err();
        assert!(
            matches!(err, RegistryError::AdmissionRejected { .. }),
            "expected admission rejection, got {err:?}"
        );
        assert_eq!(r.sessions_evicted(), 0);
        // Releasing the lease frees the victim; "b" is admitted.
        drop(lease_a);
        let lease_b = r.acquire(&call("b")).unwrap();
        assert!(r.sessions_evicted() >= 1, "idle 'a' must have been evicted");
        lease_b.solve(ClusterRequest::mcp(2)).unwrap();
    }
}
