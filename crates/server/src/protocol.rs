//! The versioned, length-prefixed binary wire protocol of serve mode.
//!
//! Everything here is hand-serialized — no serde, no external codec — and
//! documented byte-for-byte in the repository's `PROTOCOL.md`. The layer
//! split is deliberate:
//!
//! * **pure codecs** ([`encode_request`], [`decode_request`],
//!   [`encode_response`], [`decode_response`]) turn typed frames into
//!   bytes and back with no IO, so robustness tests can fuzz them
//!   directly;
//! * **blocking IO helpers** ([`read_frame`], [`write_frame`], the
//!   handshake functions) move whole frames over any `Read`/`Write`;
//!   [`write_frame`] carries the
//!   [`FaultSite::WireWrite`](ugraph_sampling::FaultSite) failpoint, which
//!   tests use to simulate torn writes on the socket path.
//!
//! ## Framing
//!
//! A connection opens with a 6-byte handshake in each direction: the
//! 4-byte magic `b"UGRP"` followed by a little-endian `u16` protocol
//! version. The server echoes the client's version when it speaks it and
//! answers with its **own** version (then closes) when it does not, so an
//! old client sees a typed [`ProtocolError::VersionMismatch`] rather than
//! garbage. After the handshake, every message is one frame:
//!
//! ```text
//! [len: u32 LE] [kind: u8] [payload: len-1 bytes]
//! ```
//!
//! `len` counts the kind byte plus the payload and must be in
//! `1..=`[`MAX_FRAME_LEN`]; integers are little-endian, `f64`s travel as
//! their IEEE-754 bit patterns (estimates survive the wire
//! **bit-identically**), strings as a `u32` length + UTF-8 bytes.
//! Decoders reject trailing bytes, truncated payloads, unknown
//! discriminants, and oversized or empty frames with a typed
//! [`ProtocolError`] — never a panic.

use std::fmt;
use std::io::{Read, Write};
use std::time::Duration;

use ugraph_cluster::{
    ClusterError, ClusterRequest, Clustering, InterruptReport, Objective, SolveResult,
};
use ugraph_graph::NodeId;
use ugraph_sampling::{
    faults, BlockWidth, EngineKind, EngineStats, FaultSite, Interrupt, RowCacheStats,
    SamplingError, SamplingPhase,
};

/// The 4-byte connection magic (`b"UGRP"`).
pub const MAGIC: [u8; 4] = *b"UGRP";
/// The protocol version this build speaks. Version 2 added the
/// `Ping`/`Pong` health frames (pool health checks) and the
/// `peer_stalled` counter in the stats payload.
pub const PROTOCOL_VERSION: u16 = 2;
/// Hard ceiling on `len` (kind + payload bytes) of a single frame. A
/// larger announced length is rejected **before** any allocation, so a
/// hostile header cannot balloon server memory.
pub const MAX_FRAME_LEN: u32 = 1 << 24; // 16 MiB

/// Frame kind: cluster request (client → server).
pub const KIND_CLUSTER: u8 = 0x01;
/// Frame kind: stats request (client → server).
pub const KIND_STATS: u8 = 0x02;
/// Frame kind: health-check ping (client → server), since v2.
pub const KIND_PING: u8 = 0x03;
/// Frame kind: successful cluster response (server → client).
pub const KIND_CLUSTER_OK: u8 = 0x81;
/// Frame kind: successful stats response (server → client).
pub const KIND_STATS_OK: u8 = 0x82;
/// Frame kind: health-check pong (server → client), since v2.
pub const KIND_PONG: u8 = 0x83;
/// Frame kind: typed error response (server → client).
pub const KIND_ERROR: u8 = 0xEE;
/// How long the [`FaultSite::WireStall`] failpoint holds the second half
/// of a frame mid-write — long enough to trip any realistic server IO
/// deadline in tests.
pub const STALL_PAUSE: Duration = Duration::from_millis(300);

/// Protocol-level failures: transport errors, handshake mismatches, and
/// malformed frames. Solver-level failures travel inside [`ErrorFrame`]s
/// instead.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer's handshake did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version this side speaks.
        ours: u16,
        /// The version the peer announced.
        theirs: u16,
    },
    /// A frame announced a length outside `1..=`[`MAX_FRAME_LEN`].
    Oversized(u32),
    /// A frame kind this side does not know.
    UnknownKind(u8),
    /// A payload that does not decode (truncated, trailing bytes, or an
    /// invalid discriminant/value), with a description of the violation.
    Malformed(String),
    /// An injected [`FaultSite::WireWrite`] failpoint fired (simulated
    /// torn write; test-only in practice).
    Fault(SamplingError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport failed: {e}"),
            ProtocolError::BadMagic(m) => write!(f, "bad connection magic {m:02x?}"),
            ProtocolError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: we speak v{ours}, peer speaks v{theirs}")
            }
            ProtocolError::Oversized(len) => {
                write!(f, "frame length {len} outside 1..={MAX_FRAME_LEN}")
            }
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtocolError::Malformed(why) => write!(f, "malformed frame: {why}"),
            ProtocolError::Fault(e) => write!(f, "injected wire fault: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Depth restriction of a wire cluster call — mirrors the request
/// constructors of [`ClusterRequest`] (`mcp`/`acp`, the `*_depth`
/// variants, and the explicit `with_depths` form).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireDepth {
    /// Unlimited path length.
    Unlimited,
    /// The uniform `d` of `mcp_depth`/`acp_depth`.
    Uniform(u32),
    /// Explicit `(d_select, d_cover)`.
    Explicit {
        /// Selection-disk depth.
        d_select: u32,
        /// Cover-disk depth.
        d_cover: u32,
    },
}

/// One cluster call as it travels over the wire: the session shape the
/// registry resolves (`graph`, `engine`, `width`) plus the request proper
/// (objective, `k`, depths, optional deadline).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterCall {
    /// Name of the graph to query (a dataset loaded at serve time).
    pub graph: String,
    /// Engine backend ([`EngineKind::name`] form).
    pub engine: EngineKind,
    /// Mask-block width ([`BlockWidth::name`] form).
    pub width: BlockWidth,
    /// MCP or ACP.
    pub objective: Objective,
    /// Number of clusters.
    pub k: u32,
    /// Depth restriction.
    pub depth: WireDepth,
    /// Per-request wall-clock deadline in microseconds (`Some(0)` is a
    /// valid, deterministically-expired deadline — useful in tests).
    pub deadline_micros: Option<u64>,
}

impl ClusterCall {
    /// The [`ClusterRequest`] this call denotes (deadline attached; the
    /// clock starts when the session's solve starts).
    pub fn to_request(&self) -> ClusterRequest {
        let k = self.k as usize;
        let mut request = match (self.objective, self.depth) {
            (Objective::MinProb, WireDepth::Unlimited) => ClusterRequest::mcp(k),
            (Objective::MinProb, WireDepth::Uniform(d)) => ClusterRequest::mcp_depth(k, d),
            (Objective::AvgProb, WireDepth::Unlimited) => ClusterRequest::acp(k),
            (Objective::AvgProb, WireDepth::Uniform(d)) => ClusterRequest::acp_depth(k, d),
            (Objective::MinProb, WireDepth::Explicit { d_select, d_cover }) => {
                ClusterRequest::mcp(k).with_depths(d_select, d_cover)
            }
            (Objective::AvgProb, WireDepth::Explicit { d_select, d_cover }) => {
                ClusterRequest::acp(k).with_depths(d_select, d_cover)
            }
        };
        if let Some(micros) = self.deadline_micros {
            request = request.with_deadline(Duration::from_micros(micros));
        }
        request
    }
}

/// A client → server frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Solve one clustering request.
    Cluster(ClusterCall),
    /// Report server and per-session statistics, optionally filtered to
    /// one graph.
    Stats {
        /// `Some(name)` restricts the per-session listing to that graph.
        graph: Option<String>,
    },
    /// Health check (since v2): the server echoes `nonce` in a
    /// [`Response::Pong`] without touching any session — connection pools
    /// use it to validate idle connections before reuse.
    Ping {
        /// Opaque value echoed back verbatim.
        nonce: u64,
    },
}

/// An interruption report as it travels over the wire (see
/// [`InterruptReport`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireInterrupt {
    /// 0 = deadline exceeded, 1 = cancelled.
    pub kind: u8,
    /// [`SamplingPhase`] discriminant (0 = generation … 3 = admission).
    pub phase: u8,
    /// Worlds fully sampled when the solve stopped.
    pub worlds_sampled: u64,
    /// `min-partial` guesses completed before the stop.
    pub guesses_completed: u64,
}

impl WireInterrupt {
    /// Encodes a report.
    pub fn from_report(r: &InterruptReport) -> WireInterrupt {
        WireInterrupt {
            kind: match r.kind {
                Interrupt::DeadlineExceeded => 0,
                Interrupt::Cancelled => 1,
            },
            phase: match r.phase {
                SamplingPhase::Generation => 0,
                SamplingPhase::Sweep => 1,
                SamplingPhase::Labeling => 2,
                SamplingPhase::Admission => 3,
            },
            worlds_sampled: r.worlds_sampled as u64,
            guesses_completed: r.guesses_completed as u64,
        }
    }

    /// Decodes back into a typed report.
    ///
    /// # Errors
    /// [`ProtocolError::Malformed`] on an unknown kind or phase
    /// discriminant.
    pub fn to_report(&self) -> Result<InterruptReport, ProtocolError> {
        let kind = match self.kind {
            0 => Interrupt::DeadlineExceeded,
            1 => Interrupt::Cancelled,
            other => {
                return Err(ProtocolError::Malformed(format!("unknown interrupt kind {other}")))
            }
        };
        let phase = match self.phase {
            0 => SamplingPhase::Generation,
            1 => SamplingPhase::Sweep,
            2 => SamplingPhase::Labeling,
            3 => SamplingPhase::Admission,
            other => {
                return Err(ProtocolError::Malformed(format!("unknown interrupt phase {other}")))
            }
        };
        Ok(InterruptReport {
            kind,
            phase,
            worlds_sampled: self.worlds_sampled as usize,
            guesses_completed: self.guesses_completed as usize,
        })
    }
}

/// A [`SolveResult`] as it travels over the wire. Floats are carried as
/// bit patterns, so a decoded result is **bit-identical** to the solver's.
#[derive(Clone, Debug, PartialEq)]
pub struct WireSolve {
    /// Number of nodes of the graph the clustering partitions.
    pub num_nodes: u32,
    /// Cluster centers, in cluster order.
    pub centers: Vec<u32>,
    /// Cluster index per node; `u32::MAX` = unassigned outlier.
    pub assignment: Vec<u32>,
    /// Estimated connection probability of each node to its center.
    pub assign_probs: Vec<f64>,
    /// The driver's objective estimate.
    pub objective_estimate: f64,
    /// The threshold `q` that produced the clustering.
    pub final_q: f64,
    /// `min-partial` invocations performed.
    pub guesses: u64,
    /// Monte-Carlo samples backing the estimates.
    pub samples_used: u64,
    /// Row-cache counters of this request: hits, top-ups, fulls.
    pub row_cache: [u64; 3],
    /// Engine counters of this request: finalized blocks, finalized
    /// lanes, label queries, mask queries.
    pub engine: [u64; 4],
    /// Server-side solve time in microseconds.
    pub elapsed_micros: u64,
    /// Present iff the solve completed best-effort after an interruption.
    pub interrupt: Option<WireInterrupt>,
}

impl WireSolve {
    /// Encodes a solver result.
    pub fn from_result(r: &SolveResult) -> WireSolve {
        let n = r.clustering.num_nodes();
        let assignment = (0..n)
            .map(|u| r.clustering.cluster_of(NodeId::from_index(u)).map_or(u32::MAX, |c| c as u32))
            .collect();
        WireSolve {
            num_nodes: n as u32,
            centers: r.clustering.centers().iter().map(|c| c.0).collect(),
            assignment,
            assign_probs: r.assign_probs.clone(),
            objective_estimate: r.objective_estimate,
            final_q: r.final_q,
            guesses: r.guesses as u64,
            samples_used: r.samples_used as u64,
            row_cache: [
                r.row_cache.hits as u64,
                r.row_cache.topups as u64,
                r.row_cache.fulls as u64,
            ],
            engine: [
                r.engine.finalized_blocks as u64,
                r.engine.finalized_lanes as u64,
                r.engine.label_queries as u64,
                r.engine.mask_queries as u64,
            ],
            elapsed_micros: r.elapsed.as_micros() as u64,
            interrupt: r.interrupt.as_ref().map(WireInterrupt::from_report),
        }
    }

    /// Reconstructs the typed [`Clustering`], re-validating every
    /// invariant — wire data is untrusted, so a forged payload yields a
    /// typed error, never a panic.
    ///
    /// # Errors
    /// [`ProtocolError::Malformed`] when the parts violate a clustering
    /// invariant.
    pub fn clustering(&self) -> Result<Clustering, ProtocolError> {
        let centers = self.centers.iter().map(|&c| NodeId(c)).collect();
        let assignment = self.assignment.iter().map(|&a| (a != u32::MAX).then_some(a)).collect();
        Clustering::try_new(centers, assignment)
            .map_err(|why| ProtocolError::Malformed(format!("invalid clustering: {why}")))
    }

    /// The row-cache counters as the typed stats struct.
    pub fn row_cache_stats(&self) -> RowCacheStats {
        RowCacheStats {
            hits: self.row_cache[0] as usize,
            topups: self.row_cache[1] as usize,
            fulls: self.row_cache[2] as usize,
        }
    }

    /// The engine counters as the typed stats struct.
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            finalized_blocks: self.engine[0] as usize,
            finalized_lanes: self.engine[1] as usize,
            label_queries: self.engine[2] as usize,
            mask_queries: self.engine[3] as usize,
        }
    }
}

/// One session's row in a [`ServerStats`] listing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionEntry {
    /// Graph the session is bound to.
    pub graph: String,
    /// Engine backend name.
    pub engine: String,
    /// Block width name.
    pub width: String,
    /// Requests currently executing or queued on the session.
    pub in_flight: u32,
    /// The session's [`SessionStats`](ugraph_cluster::SessionStats) in
    /// its machine-readable `kv_line` form.
    pub kv: String,
}

/// The stats response: server-level counters plus one [`SessionEntry`]
/// per live session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since start.
    pub connections: u64,
    /// Cluster requests received.
    pub cluster_requests: u64,
    /// Stats requests received.
    pub stats_requests: u64,
    /// Connections terminated by a protocol error (malformed frame,
    /// version mismatch, oversized length, …).
    pub protocol_errors: u64,
    /// Cluster requests rejected at admission (unknown graph, or the
    /// global budget cannot fit a new session).
    pub admission_rejections: u64,
    /// Cluster requests that exceeded their deadline.
    pub deadline_rejections: u64,
    /// Cluster requests cancelled (shutdown drain included).
    pub cancelled_rejections: u64,
    /// Cluster requests failing with any other solver error.
    pub solve_errors: u64,
    /// Connections terminated because the peer stalled mid-frame past the
    /// server's IO deadline (slow-loris reads or unread responses), so the
    /// worker was reclaimed instead of pinned (since v2).
    pub peer_stalled: u64,
    /// Whole idle sessions evicted under global memory pressure.
    pub sessions_evicted: u64,
    /// Bytes currently charged to the global ledger.
    pub bytes_held: u64,
    /// The global byte ceiling (`None` = unbounded).
    pub bytes_limit: Option<u64>,
    /// Graphs loaded in the catalog, in registration order — present even
    /// when no session exists yet, so clients can discover what to query.
    pub graphs: Vec<String>,
    /// Live sessions.
    pub sessions: Vec<SessionEntry>,
}

/// Typed error codes carried by [`ErrorFrame`]s — stable wire values,
/// documented in `PROTOCOL.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Handshake version not supported by the server.
    UnsupportedVersion = 1,
    /// The request frame did not decode.
    Malformed = 2,
    /// The request frame announced an out-of-range length.
    Oversized = 3,
    /// Unknown request kind.
    UnknownKind = 4,
    /// The named graph is not loaded on this server.
    UnknownGraph = 5,
    /// Admission rejected: the global memory budget cannot fit a session
    /// for this request.
    AdmissionRejected = 6,
    /// `k` out of range for the graph.
    KOutOfRange = 7,
    /// No full k-clustering above the probability floor.
    NoFullClustering = 8,
    /// Invalid configuration or request parameters.
    InvalidConfig = 9,
    /// The sampling layer failed (invalid depths, injected fault, …).
    Sampling = 10,
    /// The request's deadline passed (report attached).
    DeadlineExceeded = 11,
    /// The solve was cancelled, e.g. by shutdown drain (report attached).
    Cancelled = 12,
    /// The session's worker is gone; retry re-opens it.
    SessionClosed = 13,
    /// The server is shutting down and accepts no new work.
    ShuttingDown = 14,
}

impl ErrorCode {
    /// Parses a wire value.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            1 => UnsupportedVersion,
            2 => Malformed,
            3 => Oversized,
            4 => UnknownKind,
            5 => UnknownGraph,
            6 => AdmissionRejected,
            7 => KOutOfRange,
            8 => NoFullClustering,
            9 => InvalidConfig,
            10 => Sampling,
            11 => DeadlineExceeded,
            12 => Cancelled,
            13 => SessionClosed,
            14 => ShuttingDown,
            _ => return None,
        })
    }

    /// Whether a retry of the *same* request can succeed. Solves are
    /// idempotent (per-index RNG streams make every re-issue
    /// bit-identical), so the only question is whether the refusal is
    /// transient:
    ///
    /// * [`AdmissionRejected`](ErrorCode::AdmissionRejected) — memory
    ///   pressure passes as other sessions go idle;
    /// * [`SessionClosed`](ErrorCode::SessionClosed) — the retry respawns
    ///   the session (the code's own contract);
    /// * [`ShuttingDown`](ErrorCode::ShuttingDown) — a restarted or
    ///   failed-over server will take the work.
    ///
    /// Everything else is terminal: the request itself is at fault
    /// (malformed, invalid parameters, unknown graph), the solver
    /// genuinely failed, or the deadline already passed — re-sending the
    /// identical bytes cannot change the answer. The retryability column
    /// of the error-code table in `PROTOCOL.md` mirrors this method.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::AdmissionRejected | ErrorCode::SessionClosed | ErrorCode::ShuttingDown
        )
    }
}

/// A typed error response: a stable [`ErrorCode`], a human-readable
/// message, and — for interrupted solves — the [`InterruptReport`] saying
/// how far the solve got before it stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Stable error code.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
    /// Progress report of an interrupted solve.
    pub interrupt: Option<WireInterrupt>,
}

impl ErrorFrame {
    /// A frame with `code` and `message`, no report.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ErrorFrame {
        ErrorFrame { code, message: message.into(), interrupt: None }
    }

    /// Maps a solver error onto its wire code, attaching the interrupt
    /// report of deadline/cancellation errors.
    pub fn from_cluster_error(e: &ClusterError) -> ErrorFrame {
        let code = match e {
            ClusterError::KOutOfRange { .. } => ErrorCode::KOutOfRange,
            ClusterError::NoFullClustering { .. } => ErrorCode::NoFullClustering,
            ClusterError::InvalidConfig { .. } => ErrorCode::InvalidConfig,
            ClusterError::Sampling(_) => ErrorCode::Sampling,
            ClusterError::DeadlineExceeded(_) => ErrorCode::DeadlineExceeded,
            ClusterError::Cancelled(_) => ErrorCode::Cancelled,
            ClusterError::SessionClosed => ErrorCode::SessionClosed,
        };
        ErrorFrame {
            code,
            message: e.to_string(),
            interrupt: e.interrupt_report().map(WireInterrupt::from_report),
        }
    }
}

/// A server → client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A successful solve.
    Cluster(WireSolve),
    /// A stats report.
    Stats(ServerStats),
    /// The echo of a [`Request::Ping`] (since v2).
    Pong {
        /// The nonce of the ping being answered.
        nonce: u64,
    },
    /// A typed error.
    Error(ErrorFrame),
}

// ---------------------------------------------------------------------
// Byte-level helpers
// ---------------------------------------------------------------------

/// Append-only frame builder.
struct FrameWriter {
    buf: Vec<u8>,
}

impl FrameWriter {
    /// Starts a frame of `kind`; the length header is patched by
    /// [`FrameWriter::finish`].
    fn new(kind: u8) -> FrameWriter {
        FrameWriter { buf: vec![0, 0, 0, 0, kind] }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Patches the length header and returns the frame bytes.
    fn finish(mut self) -> Vec<u8> {
        let len = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&len.to_le_bytes());
        self.buf
    }
}

/// Strict payload reader: every read is bounds-checked and
/// [`finish`](FrameCursor::finish) rejects trailing bytes.
struct FrameCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameCursor<'a> {
    fn new(buf: &'a [u8]) -> FrameCursor<'a> {
        FrameCursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            ProtocolError::Malformed(format!(
                "truncated payload reading {what} at offset {}",
                self.pos
            ))
        })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, ProtocolError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, ProtocolError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProtocolError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self, what: &str) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str(&mut self, what: &str) -> Result<String, ProtocolError> {
        let len = self.u32(what)? as usize;
        // A string cannot be longer than the bytes that remain — checked
        // by `take` — but reject absurd lengths before allocating.
        if len > self.buf.len() {
            return Err(ProtocolError::Malformed(format!(
                "string length {len} for {what} exceeds payload size {}",
                self.buf.len()
            )));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::Malformed(format!("non-UTF-8 {what}")))
    }

    /// Bounded element count for a repeated field: each element occupies
    /// at least `min_elem_bytes`, so a count the remaining payload cannot
    /// possibly hold is rejected before any allocation.
    fn count(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize, ProtocolError> {
        let n = self.u32(what)? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes) > remaining {
            return Err(ProtocolError::Malformed(format!(
                "{what} count {n} exceeds remaining payload ({remaining} bytes)"
            )));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::Malformed(format!(
                "{} trailing byte(s) after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------

/// Encodes a request into one full frame (header included).
pub fn encode_request(request: &Request) -> Vec<u8> {
    match request {
        Request::Cluster(call) => {
            let mut w = FrameWriter::new(KIND_CLUSTER);
            w.str(&call.graph);
            w.str(call.engine.name());
            w.str(call.width.name());
            w.u8(match call.objective {
                Objective::MinProb => 0,
                Objective::AvgProb => 1,
            });
            w.u32(call.k);
            match call.depth {
                WireDepth::Unlimited => w.u8(0),
                WireDepth::Uniform(d) => {
                    w.u8(1);
                    w.u32(d);
                }
                WireDepth::Explicit { d_select, d_cover } => {
                    w.u8(2);
                    w.u32(d_select);
                    w.u32(d_cover);
                }
            }
            match call.deadline_micros {
                None => w.u8(0),
                Some(micros) => {
                    w.u8(1);
                    w.u64(micros);
                }
            }
            w.finish()
        }
        Request::Stats { graph } => {
            let mut w = FrameWriter::new(KIND_STATS);
            match graph {
                None => w.u8(0),
                Some(name) => {
                    w.u8(1);
                    w.str(name);
                }
            }
            w.finish()
        }
        Request::Ping { nonce } => {
            let mut w = FrameWriter::new(KIND_PING);
            w.u64(*nonce);
            w.finish()
        }
    }
}

/// Decodes a request payload (frame header already stripped).
///
/// # Errors
/// [`ProtocolError::UnknownKind`] / [`ProtocolError::Malformed`]; never
/// panics on hostile input.
pub fn decode_request(kind: u8, payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut c = FrameCursor::new(payload);
    let request = match kind {
        KIND_CLUSTER => {
            let graph = c.str("graph name")?;
            let engine_name = c.str("engine name")?;
            let engine = EngineKind::from_name(&engine_name).ok_or_else(|| {
                ProtocolError::Malformed(format!("unknown engine {engine_name:?}"))
            })?;
            let width_name = c.str("block width")?;
            let width = BlockWidth::from_name(&width_name).ok_or_else(|| {
                ProtocolError::Malformed(format!("unknown block width {width_name:?}"))
            })?;
            let objective = match c.u8("objective")? {
                0 => Objective::MinProb,
                1 => Objective::AvgProb,
                other => {
                    return Err(ProtocolError::Malformed(format!("unknown objective {other}")))
                }
            };
            let k = c.u32("k")?;
            let depth = match c.u8("depth tag")? {
                0 => WireDepth::Unlimited,
                1 => WireDepth::Uniform(c.u32("depth")?),
                2 => {
                    WireDepth::Explicit { d_select: c.u32("d_select")?, d_cover: c.u32("d_cover")? }
                }
                other => {
                    return Err(ProtocolError::Malformed(format!("unknown depth tag {other}")))
                }
            };
            let deadline_micros = match c.u8("deadline flag")? {
                0 => None,
                1 => Some(c.u64("deadline")?),
                other => {
                    return Err(ProtocolError::Malformed(format!("unknown deadline flag {other}")))
                }
            };
            Request::Cluster(ClusterCall {
                graph,
                engine,
                width,
                objective,
                k,
                depth,
                deadline_micros,
            })
        }
        KIND_STATS => {
            let graph = match c.u8("stats filter flag")? {
                0 => None,
                1 => Some(c.str("graph filter")?),
                other => {
                    return Err(ProtocolError::Malformed(format!("unknown stats flag {other}")))
                }
            };
            Request::Stats { graph }
        }
        KIND_PING => Request::Ping { nonce: c.u64("ping nonce")? },
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    c.finish()?;
    Ok(request)
}

fn encode_interrupt(w: &mut FrameWriter, interrupt: &Option<WireInterrupt>) {
    match interrupt {
        None => w.u8(0),
        Some(i) => {
            w.u8(1);
            w.u8(i.kind);
            w.u8(i.phase);
            w.u64(i.worlds_sampled);
            w.u64(i.guesses_completed);
        }
    }
}

fn decode_interrupt(c: &mut FrameCursor<'_>) -> Result<Option<WireInterrupt>, ProtocolError> {
    match c.u8("interrupt flag")? {
        0 => Ok(None),
        1 => {
            let interrupt = WireInterrupt {
                kind: c.u8("interrupt kind")?,
                phase: c.u8("interrupt phase")?,
                worlds_sampled: c.u64("worlds sampled")?,
                guesses_completed: c.u64("guesses completed")?,
            };
            // Reject unknown discriminants at decode time, not first use.
            interrupt.to_report()?;
            Ok(Some(interrupt))
        }
        other => Err(ProtocolError::Malformed(format!("unknown interrupt flag {other}"))),
    }
}

/// Encodes a response into one full frame (header included).
pub fn encode_response(response: &Response) -> Vec<u8> {
    match response {
        Response::Cluster(solve) => {
            let mut w = FrameWriter::new(KIND_CLUSTER_OK);
            w.u32(solve.num_nodes);
            w.u32(solve.centers.len() as u32);
            for &c in &solve.centers {
                w.u32(c);
            }
            for &a in &solve.assignment {
                w.u32(a);
            }
            w.u32(solve.assign_probs.len() as u32);
            for &p in &solve.assign_probs {
                w.f64(p);
            }
            w.f64(solve.objective_estimate);
            w.f64(solve.final_q);
            w.u64(solve.guesses);
            w.u64(solve.samples_used);
            for &v in &solve.row_cache {
                w.u64(v);
            }
            for &v in &solve.engine {
                w.u64(v);
            }
            w.u64(solve.elapsed_micros);
            encode_interrupt(&mut w, &solve.interrupt);
            w.finish()
        }
        Response::Stats(stats) => {
            let mut w = FrameWriter::new(KIND_STATS_OK);
            for v in [
                stats.connections,
                stats.cluster_requests,
                stats.stats_requests,
                stats.protocol_errors,
                stats.admission_rejections,
                stats.deadline_rejections,
                stats.cancelled_rejections,
                stats.solve_errors,
                stats.peer_stalled,
                stats.sessions_evicted,
                stats.bytes_held,
            ] {
                w.u64(v);
            }
            match stats.bytes_limit {
                None => w.u8(0),
                Some(limit) => {
                    w.u8(1);
                    w.u64(limit);
                }
            }
            w.u32(stats.graphs.len() as u32);
            for g in &stats.graphs {
                w.str(g);
            }
            w.u32(stats.sessions.len() as u32);
            for s in &stats.sessions {
                w.str(&s.graph);
                w.str(&s.engine);
                w.str(&s.width);
                w.u32(s.in_flight);
                w.str(&s.kv);
            }
            w.finish()
        }
        Response::Pong { nonce } => {
            let mut w = FrameWriter::new(KIND_PONG);
            w.u64(*nonce);
            w.finish()
        }
        Response::Error(e) => {
            let mut w = FrameWriter::new(KIND_ERROR);
            w.u16(e.code as u16);
            w.str(&e.message);
            encode_interrupt(&mut w, &e.interrupt);
            w.finish()
        }
    }
}

/// Decodes a response payload (frame header already stripped).
///
/// # Errors
/// [`ProtocolError::UnknownKind`] / [`ProtocolError::Malformed`]; never
/// panics on hostile input.
pub fn decode_response(kind: u8, payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut c = FrameCursor::new(payload);
    let response = match kind {
        KIND_CLUSTER_OK => {
            let num_nodes = c.u32("node count")?;
            let k = c.count(4, "center")?;
            let centers = (0..k).map(|_| c.u32("center")).collect::<Result<Vec<_>, _>>()?;
            if num_nodes as usize * 4 > payload.len() {
                return Err(ProtocolError::Malformed(format!(
                    "assignment for {num_nodes} nodes exceeds payload"
                )));
            }
            let assignment =
                (0..num_nodes).map(|_| c.u32("assignment")).collect::<Result<Vec<_>, _>>()?;
            let np = c.count(8, "assign prob")?;
            let assign_probs =
                (0..np).map(|_| c.f64("assign prob")).collect::<Result<Vec<_>, _>>()?;
            let objective_estimate = c.f64("objective estimate")?;
            let final_q = c.f64("final q")?;
            let guesses = c.u64("guesses")?;
            let samples_used = c.u64("samples used")?;
            let row_cache = [c.u64("cache hits")?, c.u64("cache topups")?, c.u64("cache fulls")?];
            let engine = [
                c.u64("finalized blocks")?,
                c.u64("finalized lanes")?,
                c.u64("label queries")?,
                c.u64("mask queries")?,
            ];
            let elapsed_micros = c.u64("elapsed")?;
            let interrupt = decode_interrupt(&mut c)?;
            Response::Cluster(WireSolve {
                num_nodes,
                centers,
                assignment,
                assign_probs,
                objective_estimate,
                final_q,
                guesses,
                samples_used,
                row_cache,
                engine,
                elapsed_micros,
                interrupt,
            })
        }
        KIND_STATS_OK => {
            let mut counters = [0u64; 11];
            for (i, slot) in counters.iter_mut().enumerate() {
                *slot = c.u64(&format!("counter {i}"))?;
            }
            let bytes_limit = match c.u8("limit flag")? {
                0 => None,
                1 => Some(c.u64("limit")?),
                other => {
                    return Err(ProtocolError::Malformed(format!("unknown limit flag {other}")))
                }
            };
            let ng = c.count(4, "graph name")?;
            let graphs = (0..ng).map(|_| c.str("graph name")).collect::<Result<Vec<_>, _>>()?;
            let n = c.count(17, "session entry")?;
            let mut sessions = Vec::with_capacity(n);
            for _ in 0..n {
                sessions.push(SessionEntry {
                    graph: c.str("session graph")?,
                    engine: c.str("session engine")?,
                    width: c.str("session width")?,
                    in_flight: c.u32("session in-flight")?,
                    kv: c.str("session kv")?,
                });
            }
            Response::Stats(ServerStats {
                connections: counters[0],
                cluster_requests: counters[1],
                stats_requests: counters[2],
                protocol_errors: counters[3],
                admission_rejections: counters[4],
                deadline_rejections: counters[5],
                cancelled_rejections: counters[6],
                solve_errors: counters[7],
                peer_stalled: counters[8],
                sessions_evicted: counters[9],
                bytes_held: counters[10],
                bytes_limit,
                graphs,
                sessions,
            })
        }
        KIND_PONG => Response::Pong { nonce: c.u64("pong nonce")? },
        KIND_ERROR => {
            let raw = c.u16("error code")?;
            let code = ErrorCode::from_u16(raw)
                .ok_or_else(|| ProtocolError::Malformed(format!("unknown error code {raw}")))?;
            let message = c.str("error message")?;
            let interrupt = decode_interrupt(&mut c)?;
            Response::Error(ErrorFrame { code, message, interrupt })
        }
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    c.finish()?;
    Ok(response)
}

// ---------------------------------------------------------------------
// Blocking IO
// ---------------------------------------------------------------------

/// Writes one side's 6-byte hello (`MAGIC` + `version`).
///
/// # Errors
/// [`ProtocolError::Io`] on transport failure.
pub fn write_hello(w: &mut impl Write, version: u16) -> Result<(), ProtocolError> {
    let mut hello = [0u8; 6];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4..].copy_from_slice(&version.to_le_bytes());
    w.write_all(&hello)?;
    w.flush()?;
    Ok(())
}

/// Reads the peer's 6-byte hello, returning the version it announced.
///
/// # Errors
/// [`ProtocolError::BadMagic`] when the magic differs;
/// [`ProtocolError::Io`] on transport failure.
pub fn read_hello(r: &mut impl Read) -> Result<u16, ProtocolError> {
    let mut hello = [0u8; 6];
    r.read_exact(&mut hello)?;
    if hello[..4] != MAGIC {
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&hello[..4]);
        return Err(ProtocolError::BadMagic(magic));
    }
    Ok(u16::from_le_bytes([hello[4], hello[5]]))
}

/// Client side of the handshake: announces [`PROTOCOL_VERSION`], then
/// checks the server echoed it.
///
/// # Errors
/// [`ProtocolError::VersionMismatch`] when the server speaks a different
/// version; [`ProtocolError::BadMagic`] / [`ProtocolError::Io`] otherwise.
pub fn client_handshake(stream: &mut (impl Read + Write)) -> Result<(), ProtocolError> {
    write_hello(stream, PROTOCOL_VERSION)?;
    let theirs = read_hello(stream)?;
    if theirs != PROTOCOL_VERSION {
        return Err(ProtocolError::VersionMismatch { ours: PROTOCOL_VERSION, theirs });
    }
    Ok(())
}

/// Writes one already-encoded frame, honoring two failpoints:
///
/// * [`FaultSite::WireWrite`] — half the frame is written (a torn write)
///   and the injected fault is returned;
/// * [`FaultSite::WireStall`] — half the frame is written, the writer
///   pauses for [`STALL_PAUSE`], then finishes normally. The stall is
///   invisible to the writer (`Ok` is returned) but a peer enforcing an
///   IO deadline shorter than the pause will have hung up in between —
///   exactly the slow-peer scenario the server's stall hardening covers.
///
/// # Errors
/// [`ProtocolError::Fault`] from the torn-write failpoint;
/// [`ProtocolError::Io`] on transport failure.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), ProtocolError> {
    if let Err(fault) = faults::hit(FaultSite::WireWrite) {
        let torn = frame.len() / 2;
        let _ = w.write_all(&frame[..torn]);
        let _ = w.flush();
        return Err(ProtocolError::Fault(fault));
    }
    if faults::hit(FaultSite::WireStall).is_err() {
        let half = frame.len() / 2;
        w.write_all(&frame[..half])?;
        w.flush()?;
        std::thread::sleep(STALL_PAUSE);
        w.write_all(&frame[half..])?;
        w.flush()?;
        return Ok(());
    }
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, returning `(kind, payload)` — or `None` on a clean
/// EOF at a frame boundary (the peer closed the connection). Carries the
/// [`FaultSite::WireRead`] failpoint (symmetric to the torn-write one in
/// [`write_frame`]): a scheduled hit fails the read before any byte is
/// consumed, simulating a receive path dying under the reader.
///
/// # Errors
/// [`ProtocolError::Fault`] from the failpoint;
/// [`ProtocolError::Oversized`] for an announced length outside
/// `1..=`[`MAX_FRAME_LEN`] (nothing is allocated);
/// [`ProtocolError::Io`] for transport failures, including EOF inside a
/// frame.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, ProtocolError> {
    faults::hit(FaultSite::WireRead).map_err(ProtocolError::Fault)?;
    let mut header = [0u8; 4];
    // Distinguish "peer closed between frames" from "died mid-frame".
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(ProtocolError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let kind = body[0];
    body.drain(..1);
    Ok(Some((kind, body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_call() -> ClusterCall {
        ClusterCall {
            graph: "krogan-like".into(),
            engine: EngineKind::Adaptive,
            width: BlockWidth::W256,
            objective: Objective::AvgProb,
            k: 7,
            depth: WireDepth::Explicit { d_select: 2, d_cover: 5 },
            deadline_micros: Some(1_500_000),
        }
    }

    fn roundtrip_request(request: &Request) -> Request {
        let frame = encode_request(request);
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        assert_eq!(len, frame.len() - 4);
        decode_request(frame[4], &frame[5..]).unwrap()
    }

    fn roundtrip_response(response: &Response) -> Response {
        let frame = encode_response(response);
        decode_response(frame[4], &frame[5..]).unwrap()
    }

    #[test]
    fn requests_roundtrip() {
        for request in [
            Request::Cluster(sample_call()),
            Request::Cluster(ClusterCall {
                depth: WireDepth::Unlimited,
                deadline_micros: None,
                objective: Objective::MinProb,
                ..sample_call()
            }),
            Request::Cluster(ClusterCall { depth: WireDepth::Uniform(3), ..sample_call() }),
            Request::Stats { graph: None },
            Request::Stats { graph: Some("collins".into()) },
        ] {
            assert_eq!(roundtrip_request(&request), request);
        }
    }

    #[test]
    fn responses_roundtrip_bit_identically() {
        let solve = WireSolve {
            num_nodes: 5,
            centers: vec![0, 3],
            assignment: vec![0, 0, 0, 1, u32::MAX],
            assign_probs: vec![1.0, 0.25, f64::MIN_POSITIVE, 0.75, 0.0],
            objective_estimate: 0.123_456_789_012_345_67,
            final_q: 0.5,
            guesses: 9,
            samples_used: 512,
            row_cache: [1, 2, 3],
            engine: [4, 5, 6, 7],
            elapsed_micros: 123_456,
            interrupt: Some(WireInterrupt {
                kind: 0,
                phase: 1,
                worlds_sampled: 64,
                guesses_completed: 2,
            }),
        };
        let Response::Cluster(back) = roundtrip_response(&Response::Cluster(solve.clone())) else {
            panic!("kind changed in roundtrip")
        };
        assert_eq!(back, solve);
        assert_eq!(back.objective_estimate.to_bits(), solve.objective_estimate.to_bits());
        let c = back.clustering().unwrap();
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_of(NodeId(4)), None);

        let stats = ServerStats {
            connections: 3,
            cluster_requests: 2,
            bytes_limit: Some(1 << 20),
            graphs: vec!["collins".into(), "krogan".into()],
            sessions: vec![SessionEntry {
                graph: "collins".into(),
                engine: "scalar".into(),
                width: "64".into(),
                in_flight: 1,
                kv: "requests=2 evaluations=0".into(),
            }],
            ..ServerStats::default()
        };
        assert_eq!(roundtrip_response(&Response::Stats(stats.clone())), Response::Stats(stats));

        let error = ErrorFrame {
            code: ErrorCode::DeadlineExceeded,
            message: "solve deadline exceeded during sweep".into(),
            interrupt: Some(WireInterrupt {
                kind: 0,
                phase: 1,
                worlds_sampled: 100,
                guesses_completed: 1,
            }),
        };
        assert_eq!(roundtrip_response(&Response::Error(error.clone())), Response::Error(error));
    }

    #[test]
    fn cluster_call_maps_onto_request_constructors() {
        let call = ClusterCall {
            depth: WireDepth::Uniform(4),
            deadline_micros: None,
            objective: Objective::MinProb,
            ..sample_call()
        };
        assert_eq!(call.to_request(), ClusterRequest::mcp_depth(7, 4));
        let call = ClusterCall { deadline_micros: Some(2_000_000), ..call };
        assert_eq!(
            call.to_request(),
            ClusterRequest::mcp_depth(7, 4).with_deadline(Duration::from_secs(2))
        );
        assert_eq!(
            sample_call().to_request(),
            ClusterRequest::acp(7)
                .with_depths(2, 5)
                .with_deadline(Duration::from_micros(1_500_000))
        );
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Truncation at every prefix length of a valid frame.
        let frame = encode_request(&Request::Cluster(sample_call()));
        for cut in 0..frame.len() - 5 {
            let r = decode_request(frame[4], &frame[5..5 + cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
        // Trailing garbage.
        let mut long = frame[5..].to_vec();
        long.push(0xAB);
        assert!(matches!(decode_request(frame[4], &long), Err(ProtocolError::Malformed(_))));
        // Unknown kind.
        assert!(matches!(decode_request(0x77, &[]), Err(ProtocolError::UnknownKind(0x77))));
        // Absurd string length does not allocate or panic.
        let mut evil = Vec::new();
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        evil.extend_from_slice(b"hi");
        assert!(decode_request(KIND_CLUSTER, &evil).is_err());
    }

    #[test]
    fn forged_clusterings_are_rejected_not_panicked() {
        let mut solve = WireSolve {
            num_nodes: 3,
            centers: vec![0, 0], // duplicate center
            assignment: vec![0, 1, 1],
            assign_probs: vec![1.0; 3],
            objective_estimate: 0.5,
            final_q: 0.5,
            guesses: 1,
            samples_used: 8,
            row_cache: [0; 3],
            engine: [0; 4],
            elapsed_micros: 1,
            interrupt: None,
        };
        assert!(solve.clustering().is_err());
        solve.centers = vec![0, 9]; // out-of-bounds center
        assert!(solve.clustering().is_err());
        solve.centers = vec![0, 1];
        solve.assignment = vec![0, 1, 7]; // nonexistent cluster
        assert!(solve.clustering().is_err());
    }

    #[test]
    fn frame_io_roundtrips_and_rejects_oversize() {
        let frame = encode_request(&Request::Stats { graph: None });
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut r = &wire[..];
        let (kind, payload) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(kind, KIND_STATS);
        assert_eq!(decode_request(kind, &payload).unwrap(), Request::Stats { graph: None });
        // Clean EOF at a boundary.
        assert!(read_frame(&mut r).unwrap().is_none());
        // Oversized header is rejected without allocating.
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes();
        assert!(matches!(read_frame(&mut &huge[..]), Err(ProtocolError::Oversized(_))));
        // Zero-length frame is invalid.
        let zero = 0u32.to_le_bytes();
        assert!(matches!(read_frame(&mut &zero[..]), Err(ProtocolError::Oversized(0))));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn wire_write_failpoint_tears_the_frame() {
        use ugraph_sampling::FaultPlan;
        let frame = encode_request(&Request::Stats { graph: None });
        let _guard = faults::install(FaultPlan::new().fail_at(FaultSite::WireWrite, 1));
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, &frame).unwrap_err();
        assert!(matches!(err, ProtocolError::Fault(_)));
        assert_eq!(wire.len(), frame.len() / 2, "torn write leaves half a frame");
        // The next write succeeds and a reader sees the torn bytes as a
        // broken stream, not a panic.
        let mut wire2 = Vec::new();
        write_frame(&mut wire2, &frame).unwrap();
        assert_eq!(wire2, frame);
        assert!(read_frame(&mut &wire[..]).is_err() || wire.len() < 4);
    }
}
