//! The blocking [`Client`] of serve mode — used by the `ugraph client`
//! subcommand and the loopback test suites.
//!
//! Results are layered the way the wire is: the outer
//! [`Result`]`<_, `[`ProtocolError`]`>` is the transport/codec layer (the
//! connection is broken or desynchronized — reconnect); the inner
//! [`Result`]`<_, `[`ErrorFrame`]`>` is the server's typed answer (the
//! connection is fine — inspect the [`ErrorCode`](crate::ErrorCode)).

use std::net::{TcpStream, ToSocketAddrs};

use ugraph_sampling::{faults, FaultSite};

use crate::protocol::{
    self, ClusterCall, ErrorFrame, ProtocolError, Request, Response, ServerStats, WireSolve,
    PROTOCOL_VERSION,
};

/// A connected serve-mode client. One request is in flight at a time
/// (the protocol is strictly request/response).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and performs the version handshake at
    /// [`PROTOCOL_VERSION`].
    ///
    /// # Errors
    /// [`ProtocolError::VersionMismatch`] when the server speaks another
    /// version; [`ProtocolError::Io`] / [`ProtocolError::BadMagic`] on
    /// transport or handshake failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ProtocolError> {
        Client::connect_with_version(addr, PROTOCOL_VERSION)
    }

    /// Connects announcing an explicit protocol `version` — the
    /// robustness suite uses this to probe the server's version
    /// negotiation with versions it does not speak.
    ///
    /// # Errors
    /// See [`Client::connect`].
    pub fn connect_with_version(
        addr: impl ToSocketAddrs,
        version: u16,
    ) -> Result<Client, ProtocolError> {
        faults::hit(FaultSite::Connect).map_err(ProtocolError::Fault)?;
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        protocol::write_hello(&mut stream, version)?;
        let theirs = protocol::read_hello(&mut stream)?;
        if theirs != version {
            return Err(ProtocolError::VersionMismatch { ours: version, theirs });
        }
        Ok(Client { stream })
    }

    /// Issues one cluster call and waits for the answer.
    ///
    /// # Errors
    /// Outer: the transport/codec failed and the connection should be
    /// abandoned. Inner: the server's typed refusal.
    pub fn cluster(
        &mut self,
        call: &ClusterCall,
    ) -> Result<Result<WireSolve, ErrorFrame>, ProtocolError> {
        match self.roundtrip(&Request::Cluster(call.clone()))? {
            Response::Cluster(solve) => Ok(Ok(solve)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(ProtocolError::Malformed(format!(
                "unpaired response to a cluster request: {other:?}"
            ))),
        }
    }

    /// Fetches server statistics, optionally restricting the per-session
    /// listing to one graph.
    ///
    /// # Errors
    /// See [`Client::cluster`].
    pub fn stats(
        &mut self,
        graph: Option<&str>,
    ) -> Result<Result<ServerStats, ErrorFrame>, ProtocolError> {
        let graph = graph.map(str::to_string);
        match self.roundtrip(&Request::Stats { graph })? {
            Response::Stats(stats) => Ok(Ok(stats)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(ProtocolError::Malformed(format!(
                "unpaired response to a stats request: {other:?}"
            ))),
        }
    }

    /// Sends a `Ping` health frame and waits for the matching `Pong`
    /// (protocol version 2) — the health check the connection pool runs
    /// before reusing a parked connection.
    ///
    /// # Errors
    /// Any transport failure, or [`ProtocolError::Malformed`] when the
    /// peer answers with anything but a `Pong` echoing the nonce.
    pub fn ping(&mut self, nonce: u64) -> Result<(), ProtocolError> {
        match self.roundtrip(&Request::Ping { nonce })? {
            Response::Pong { nonce: echoed } if echoed == nonce => Ok(()),
            Response::Pong { nonce: echoed } => Err(ProtocolError::Malformed(format!(
                "pong echoed nonce {echoed:#x}, expected {nonce:#x}"
            ))),
            other => {
                Err(ProtocolError::Malformed(format!("unpaired response to a ping: {other:?}")))
            }
        }
    }

    /// Sends a pre-encoded frame verbatim — the robustness suite forges
    /// malformed and truncated frames with this.
    ///
    /// # Errors
    /// [`ProtocolError::Io`] on transport failure; [`ProtocolError::Fault`]
    /// when the wire-write failpoint fires.
    pub fn send_raw(&mut self, frame: &[u8]) -> Result<(), ProtocolError> {
        protocol::write_frame(&mut self.stream, frame)
    }

    /// Reads the next response frame (paired with [`Client::send_raw`]).
    ///
    /// # Errors
    /// [`ProtocolError::Io`] with `UnexpectedEof` when the server closed
    /// the connection instead of answering; any codec error otherwise.
    pub fn read_response(&mut self) -> Result<Response, ProtocolError> {
        match protocol::read_frame(&mut self.stream)? {
            Some((kind, payload)) => protocol::decode_response(kind, &payload),
            None => Err(ProtocolError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        self.send_raw(&protocol::encode_request(request))?;
        self.read_response()
    }
}
