//! A fixed-size bitset used to represent possible worlds.
//!
//! A possible world of an uncertain graph is exactly "a subset of the edge
//! set", so the sampling layer materializes worlds as bitsets indexed by
//! [`EdgeId`](crate::EdgeId). The type is deliberately minimal: fixed
//! length, block-wise storage, no growth.

/// A fixed-length bitset backed by `u64` blocks.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitset {
    blocks: Vec<u64>,
    len: usize,
}

const BITS: usize = 64;

impl Bitset {
    /// Creates a bitset of `len` zero bits.
    pub fn with_len(len: usize) -> Self {
        Bitset { blocks: vec![0; len.div_ceil(BITS)], len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitset has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        (self.blocks[i / BITS] >> (i % BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        let mask = 1u64 << (i % BITS);
        if value {
            self.blocks[i / BITS] |= mask;
        } else {
            self.blocks[i / BITS] &= !mask;
        }
    }

    /// Sets bit `i` to one (faster path used by the world sampler).
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.blocks[i / BITS] |= 1u64 << (i % BITS);
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Clears all bits, keeping the length.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Sets all bits to one.
    pub fn fill(&mut self) {
        self.blocks.fill(!0);
        self.trim_tail();
    }

    /// Iterates over the indices of one bits in increasing order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| BlockOnes { block, base: bi * BITS })
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersect_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// Raw block storage (read-only), exposed so the sampler can fill whole
    /// blocks of Bernoulli draws at a time.
    #[inline]
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Mutable raw block storage. Callers must keep bits `>= len` zero;
    /// [`Bitset::trim_tail`] restores that invariant.
    #[inline]
    pub fn blocks_mut(&mut self) -> &mut [u64] {
        &mut self.blocks
    }

    /// Zeroes any bits at positions `>= len` in the last block.
    pub fn trim_tail(&mut self) {
        let tail = self.len % BITS;
        if tail != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl std::fmt::Debug for Bitset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitset({}/{} set)", self.count_ones(), self.len)
    }
}

struct BlockOnes {
    block: u64,
    base: usize,
}

impl Iterator for BlockOnes {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.block == 0 {
            return None;
        }
        let tz = self.block.trailing_zeros() as usize;
        self.block &= self.block - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bitset() {
        let b = Bitset::with_len(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.ones().count(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitset::with_len(130);
        assert!(!b.get(0));
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn ones_iterates_in_order() {
        let mut b = Bitset::with_len(200);
        for i in [3usize, 64, 65, 127, 128, 199] {
            b.insert(i);
        }
        let got: Vec<usize> = b.ones().collect();
        assert_eq!(got, vec![3, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn clear_and_fill() {
        let mut b = Bitset::with_len(70);
        b.fill();
        assert_eq!(b.count_ones(), 70);
        assert!(b.get(69));
        b.clear();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn fill_respects_tail() {
        let mut b = Bitset::with_len(65);
        b.fill();
        assert_eq!(b.count_ones(), 65);
        // The last block must not have stray bits beyond position 64.
        assert_eq!(b.blocks()[1], 1);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = Bitset::with_len(100);
        let mut b = Bitset::with_len(100);
        a.insert(1);
        a.insert(70);
        b.insert(70);
        b.insert(99);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.ones().collect::<Vec<_>>(), vec![1, 70, 99]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.ones().collect::<Vec<_>>(), vec![70]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let b = Bitset::with_len(10);
        b.get(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_length_mismatch_panics() {
        let mut a = Bitset::with_len(10);
        let b = Bitset::with_len(11);
        a.union_with(&b);
    }

    #[test]
    fn trim_tail_zeroes_spurious_bits() {
        let mut b = Bitset::with_len(3);
        b.blocks_mut()[0] = !0;
        b.trim_tail();
        assert_eq!(b.count_ones(), 3);
    }
}
