//! Bit-parallel traversal over blocks of possible worlds.
//!
//! Monte-Carlo reliability estimation runs the *same* traversal over many
//! independently sampled worlds of the *same* topology. Packing 64 worlds
//! into one machine word per edge (bit `l` of `edge_masks[e]` = "edge `e`
//! exists in world `l` of the block") turns 64 per-world traversals into a
//! single mask-propagating traversal: every node carries a `u64` *reach
//! mask* (the worlds in which it has been reached), and traversing an edge
//! ANDs the frontier mask with the edge's presence mask.
//!
//! Two propagation modes are provided, matching the two query families of
//! the sampling layer:
//!
//! * [`MultiWorldBfs::run`] — level-synchronous BFS with a depth limit;
//!   `visit(node, depth, mask)` reports, per node and hop distance, the
//!   worlds in which the node is first reached at exactly that distance
//!   (the d-connection semantics of the paper, §3.4);
//! * [`MultiWorldBfs::run_unlimited`] — chaotic worklist iteration to the
//!   connectivity fixpoint, ignoring distances; `visit(node, mask)` reports
//!   each reached node once with the full set of worlds in which it is
//!   connected to the source. This is the cheaper mode when only
//!   connectivity matters, because a node is not re-visited per hop level
//!   when different worlds reach it at different distances.
//!
//! Both modes also come in **multi-source** variants
//! ([`MultiWorldBfs::run_multi`], [`MultiWorldBfs::run_unlimited_multi`])
//! that propagate up to [`MAX_SOURCES`] independent frontier masks in a
//! single traversal. The per-source semantics are exactly those of the
//! single-source runs, but every edge mask is loaded — and every adjacency
//! list walked — once for *all* sources that are active at a node instead
//! of once per source. This is the amortization that makes batched
//! multi-center reliability rows cheap: the dominant cost of a mask BFS is
//! the memory traffic of edge masks and CSR neighbor lists, and a batch of
//! `k` centers shares that traffic `k` ways.
//!
//! The workspace is reusable across calls (and across blocks): only nodes
//! touched by the previous run are cleared, so a run over a small reachable
//! set costs proportionally to that set, not to `n`.

use crate::ids::NodeId;
use crate::traversal::Adjacency;

/// Number of possible worlds packed per mask word.
pub const LANES: usize = 64;

/// Maximum number of sources a multi-source traversal can carry at once
/// (per-node source activity is tracked in one `u64` bitmask).
pub const MAX_SOURCES: usize = 64;

/// Mask with the low `lanes` bits set — the valid lanes of a partially
/// filled block (`lanes == 64` gives the all-ones mask).
///
/// # Panics
/// Panics if `lanes > 64`.
#[inline]
pub fn lane_mask(lanes: usize) -> u64 {
    assert!(lanes <= LANES, "a block holds at most {LANES} worlds, got {lanes}");
    if lanes == LANES {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// Reusable workspace for bit-parallel multi-world traversals.
///
/// One `MultiWorldBfs` is typically reused across all blocks of a sample
/// pool; rayon workers build their own (see the sampling crate's pools).
#[derive(Clone, Debug)]
pub struct MultiWorldBfs {
    /// Worlds in which each node has been reached so far.
    reach: Vec<u64>,
    /// Worlds that first reached each node at the current BFS level.
    gain: Vec<u64>,
    /// Next-level accumulation (nonzero only for nodes queued in `next`).
    pend: Vec<u64>,
    /// Current-level frontier nodes.
    cur: Vec<u32>,
    /// Next-level frontier nodes.
    next: Vec<u32>,
    /// Every node reached in the current run, for O(touched) cleanup.
    touched: Vec<u32>,
    /// Multi-source reach masks, node-major with stride `k`
    /// (`mreach[u * k + j]` = worlds in which source `j` reached `u`).
    /// Lazily grown; multi-source runs clean these up on exit.
    mreach: Vec<u64>,
    /// Multi-source gain masks (same layout as `mreach`).
    mgain: Vec<u64>,
    /// Multi-source next-level accumulation (same layout).
    mpend: Vec<u64>,
    /// Per node: bitmask of sources that have reached it.
    rmask: Vec<u64>,
    /// Per node: bitmask of sources with unpropagated gain (queued flag).
    gmask: Vec<u64>,
    /// Per node: bitmask of sources with pending next-level masks.
    pmask: Vec<u64>,
    /// Nodes reached by the current multi-source run.
    mtouched: Vec<u32>,
}

impl MultiWorldBfs {
    /// Creates a workspace for graphs of at most `n` nodes.
    pub fn new(n: usize) -> Self {
        MultiWorldBfs {
            reach: vec![0; n],
            gain: vec![0; n],
            pend: vec![0; n],
            cur: Vec::new(),
            next: Vec::new(),
            touched: Vec::new(),
            mreach: Vec::new(),
            mgain: Vec::new(),
            mpend: Vec::new(),
            rmask: vec![0; n],
            gmask: vec![0; n],
            pmask: vec![0; n],
            mtouched: Vec::new(),
        }
    }

    /// Clears state left by the previous run (only touched nodes).
    fn reset(&mut self) {
        for &t in &self.touched {
            self.reach[t as usize] = 0;
            self.gain[t as usize] = 0;
        }
        self.touched.clear();
        self.cur.clear();
        self.next.clear();
    }

    /// Level-synchronous BFS from `source` over the worlds selected by
    /// `lane_mask`, limited to `depth_limit` hops.
    ///
    /// `edge_masks[e]` holds the presence mask of edge `e` (bit `l` set ⇔
    /// the edge exists in world `l`). `visit(node, depth, mask)` is called
    /// once per `(node, depth)` pair with the worlds in which `node` is
    /// first reached at exactly `depth` hops — including the source at
    /// depth 0 with the full `lane_mask`. Summing `mask.count_ones()` over
    /// all calls for a node therefore counts the worlds in which the node
    /// is within `depth_limit` hops of the source.
    ///
    /// # Panics
    /// Panics if the workspace is sized for fewer nodes than `g`, or if an
    /// edge id of `g` indexes past `edge_masks`.
    pub fn run(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[u64],
        source: NodeId,
        lane_mask: u64,
        depth_limit: u32,
        mut visit: impl FnMut(NodeId, u32, u64),
    ) {
        assert!(
            g.num_nodes() <= self.reach.len(),
            "MultiWorldBfs workspace sized for {} nodes, graph has {}",
            self.reach.len(),
            g.num_nodes()
        );
        self.reset();
        if lane_mask == 0 {
            return;
        }
        self.reach[source.index()] = lane_mask;
        self.gain[source.index()] = lane_mask;
        self.touched.push(source.0);
        self.cur.push(source.0);
        visit(source, 0, lane_mask);

        let mut depth = 0u32;
        while !self.cur.is_empty() && depth < depth_limit {
            depth += 1;
            let reach = &mut self.reach;
            let gain = &mut self.gain;
            let pend = &mut self.pend;
            let next = &mut self.next;
            for &u in &self.cur {
                let gu = gain[u as usize];
                g.for_each_neighbor(NodeId(u), |v, e| {
                    let add = gu & edge_masks[e.index()] & !reach[v.index()];
                    if add != 0 {
                        if pend[v.index()] == 0 {
                            next.push(v.0);
                        }
                        pend[v.index()] |= add;
                    }
                });
            }
            for &v in next.iter() {
                let mask = pend[v as usize];
                pend[v as usize] = 0;
                if reach[v as usize] == 0 {
                    self.touched.push(v);
                }
                reach[v as usize] |= mask;
                gain[v as usize] = mask;
                visit(NodeId(v), depth, mask);
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            self.next.clear();
        }
    }

    /// Connectivity fixpoint from `source` over the worlds selected by
    /// `lane_mask`, ignoring distances.
    ///
    /// Chaotic worklist iteration: a node is re-queued whenever its reach
    /// mask grows, until no mask changes. `visit(node, mask)` is called
    /// once per reached node (source included) with the final mask of
    /// worlds in which the node is connected to the source.
    ///
    /// # Panics
    /// Same conditions as [`MultiWorldBfs::run`].
    pub fn run_unlimited(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[u64],
        source: NodeId,
        lane_mask: u64,
        mut visit: impl FnMut(NodeId, u64),
    ) {
        assert!(
            g.num_nodes() <= self.reach.len(),
            "MultiWorldBfs workspace sized for {} nodes, graph has {}",
            self.reach.len(),
            g.num_nodes()
        );
        self.reset();
        if lane_mask == 0 {
            return;
        }
        // `gain` doubles as the "queued" flag: nonzero ⇔ node is in `cur`
        // awaiting propagation of those newly arrived worlds.
        self.reach[source.index()] = lane_mask;
        self.gain[source.index()] = lane_mask;
        self.touched.push(source.0);
        self.cur.push(source.0);
        let mut head = 0usize;
        while head < self.cur.len() {
            let u = self.cur[head];
            head += 1;
            let gu = std::mem::take(&mut self.gain[u as usize]);
            if gu == 0 {
                continue; // re-queued entry already drained
            }
            let reach = &mut self.reach;
            let gain = &mut self.gain;
            let cur = &mut self.cur;
            let touched = &mut self.touched;
            g.for_each_neighbor(NodeId(u), |v, e| {
                let add = gu & edge_masks[e.index()] & !reach[v.index()];
                if add != 0 {
                    if reach[v.index()] == 0 {
                        touched.push(v.0);
                    }
                    reach[v.index()] |= add;
                    if gain[v.index()] == 0 {
                        cur.push(v.0);
                    }
                    gain[v.index()] |= add;
                }
            });
        }
        for &v in &self.touched {
            visit(NodeId(v), self.reach[v as usize]);
        }
    }

    /// The reach mask of `node` after the last run (0 if unreached).
    #[inline]
    pub fn reach(&self, node: NodeId) -> u64 {
        self.reach[node.index()]
    }

    /// Labels the connected components of **every** world selected by
    /// `lane_mask` in one component-sharing sweep: one connectivity-fixpoint
    /// traversal per *component*, not per node — the traversal from a node
    /// `u` that is still unlabeled in lanes `M` discovers, for every lane
    /// `l ∈ M` simultaneously, the full member set of `u`'s component in
    /// world `l` (the reach masks say which lanes each reached node shares
    /// with `u`).
    ///
    /// `assign(node, mask, next)` is called once per `(reached node,
    /// traversal)` with the lanes `mask` the node was reached in and the
    /// per-lane label counters `next`: the node's label in lane `l` of
    /// `mask` is `next[l]`. Labels are dense per lane (`0..counts[l]`) in
    /// first-seen node order. Returns the per-lane component counts (0 for
    /// lanes outside `lane_mask`).
    ///
    /// Unlabeled lanes of a node are always a superset of the unlabeled
    /// lanes of its whole component (components are labeled atomically), so
    /// restricting each traversal to the source's unlabeled lanes never
    /// splits a component.
    ///
    /// # Panics
    /// Panics if the workspace is sized for fewer nodes than `g`, or if an
    /// edge id of `g` indexes past `edge_masks`.
    pub fn label_components(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[u64],
        lane_mask: u64,
        mut assign: impl FnMut(NodeId, u64, &[u32; LANES]),
    ) -> [u32; LANES] {
        let n = g.num_nodes();
        assert!(
            n <= self.reach.len(),
            "MultiWorldBfs workspace sized for {} nodes, graph has {}",
            self.reach.len(),
            n
        );
        let mut next = [0u32; LANES];
        if lane_mask == 0 {
            return next;
        }
        // Lanes in which each node has not been assigned a label yet.
        let mut unlabeled = vec![lane_mask; n];
        for u in 0..n as u32 {
            let m = unlabeled[u as usize];
            if m == 0 {
                continue;
            }
            let cur = next;
            self.run_unlimited(g, edge_masks, NodeId(u), m, |v, mask| {
                unlabeled[v.index()] &= !mask;
                assign(v, mask, &cur);
            });
            let mut bits = m;
            while bits != 0 {
                let l = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                next[l] += 1;
            }
        }
        next
    }

    /// Prepares the stride-`k` multi-source buffers and seeds the sources.
    /// Returns `false` when `lane_mask` selects no worlds (nothing to do).
    fn init_multi(&mut self, n_graph: usize, sources: &[NodeId], lane_mask: u64) -> bool {
        let k = sources.len();
        assert!(
            (1..=MAX_SOURCES).contains(&k),
            "multi-source traversal carries 1..={MAX_SOURCES} sources, got {k}"
        );
        assert!(
            n_graph <= self.rmask.len(),
            "MultiWorldBfs workspace sized for {} nodes, graph has {}",
            self.rmask.len(),
            n_graph
        );
        let want = self.rmask.len() * k;
        if self.mreach.len() < want {
            self.mreach.resize(want, 0);
            self.mgain.resize(want, 0);
            self.mpend.resize(want, 0);
        }
        self.cur.clear();
        self.next.clear();
        self.mtouched.clear();
        if lane_mask == 0 {
            return false;
        }
        for (j, s) in sources.iter().enumerate() {
            let u = s.index();
            if self.rmask[u] == 0 {
                self.mtouched.push(s.0);
            }
            self.rmask[u] |= 1 << j;
            if self.gmask[u] == 0 {
                self.cur.push(s.0);
            }
            self.gmask[u] |= 1 << j;
            self.mreach[u * k + j] = lane_mask;
            self.mgain[u * k + j] = lane_mask;
        }
        true
    }

    /// Restores the multi-source buffers to their all-zero state, touching
    /// only what the run dirtied.
    fn cleanup_multi(&mut self, k: usize) {
        for &t in &self.mtouched {
            let u = t as usize;
            let mut m = self.rmask[u];
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                m &= m - 1;
                self.mreach[u * k + j] = 0;
                self.mgain[u * k + j] = 0;
            }
            self.rmask[u] = 0;
            self.gmask[u] = 0;
        }
        self.mtouched.clear();
        self.cur.clear();
        self.next.clear();
    }

    /// Multi-source connectivity fixpoint: the semantics of
    /// [`MultiWorldBfs::run_unlimited`] for every source independently, in
    /// **one** traversal. `visit(node, source_idx, mask)` is called once
    /// per `(reached node, source)` pair with the final mask of worlds in
    /// which the node is connected to `sources[source_idx]`.
    ///
    /// Edge masks are loaded (and adjacency lists walked) once for all
    /// sources active at a node, which is the whole point: a batch of `k`
    /// sources shares the traversal's memory traffic instead of paying it
    /// `k` times. Duplicate sources are allowed and reported separately.
    ///
    /// # Panics
    /// Panics if `sources` is empty or longer than [`MAX_SOURCES`], if the
    /// workspace is sized for fewer nodes than `g`, or if an edge id of `g`
    /// indexes past `edge_masks`.
    pub fn run_unlimited_multi(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[u64],
        sources: &[NodeId],
        lane_mask: u64,
        mut visit: impl FnMut(NodeId, usize, u64),
    ) {
        let k = sources.len();
        if !self.init_multi(g.num_nodes(), sources, lane_mask) {
            return;
        }
        let mut head = 0usize;
        while head < self.cur.len() {
            let u = self.cur[head] as usize;
            head += 1;
            let gm = std::mem::take(&mut self.gmask[u]);
            if gm == 0 {
                continue; // re-queued entry already drained
            }
            // Union of the active gains: a cheap pre-filter that skips the
            // per-source loop for edges absent from every gained world.
            let mut gor = 0u64;
            let mut m = gm;
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                m &= m - 1;
                gor |= self.mgain[u * k + j];
            }
            let mreach = &mut self.mreach;
            let mgain = &mut self.mgain;
            let rmask = &mut self.rmask;
            let gmask = &mut self.gmask;
            let cur = &mut self.cur;
            let mtouched = &mut self.mtouched;
            g.for_each_neighbor(NodeId(u as u32), |v, e| {
                let em = edge_masks[e.index()];
                if gor & em == 0 {
                    return;
                }
                let vi = v.index();
                let mut m = gm;
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let add = mgain[u * k + j] & em & !mreach[vi * k + j];
                    if add != 0 {
                        if rmask[vi] == 0 {
                            mtouched.push(v.0);
                        }
                        rmask[vi] |= 1 << j;
                        mreach[vi * k + j] |= add;
                        if gmask[vi] == 0 {
                            cur.push(v.0);
                        }
                        gmask[vi] |= 1 << j;
                        mgain[vi * k + j] |= add;
                    }
                }
            });
            // Gains propagated; drop them so a later re-queue of `u` only
            // pushes genuinely new worlds.
            let mut m = gm;
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                m &= m - 1;
                self.mgain[u * k + j] = 0;
            }
        }
        for i in 0..self.mtouched.len() {
            let u = self.mtouched[i] as usize;
            let mut m = self.rmask[u];
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                m &= m - 1;
                visit(NodeId(u as u32), j, self.mreach[u * k + j]);
            }
        }
        self.cleanup_multi(k);
    }

    /// Multi-source level-synchronous BFS: the semantics of
    /// [`MultiWorldBfs::run`] for every source independently, in one
    /// traversal. `visit(node, depth, source_idx, mask)` reports the worlds
    /// in which `node` is first reached at exactly `depth` hops from
    /// `sources[source_idx]` (each source is reported at depth 0 with the
    /// full `lane_mask`).
    ///
    /// # Panics
    /// Same conditions as [`MultiWorldBfs::run_unlimited_multi`].
    pub fn run_multi(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[u64],
        sources: &[NodeId],
        lane_mask: u64,
        depth_limit: u32,
        mut visit: impl FnMut(NodeId, u32, usize, u64),
    ) {
        let k = sources.len();
        if !self.init_multi(g.num_nodes(), sources, lane_mask) {
            return;
        }
        for (j, s) in sources.iter().enumerate() {
            visit(*s, 0, j, lane_mask);
        }
        let mut depth = 0u32;
        while !self.cur.is_empty() && depth < depth_limit {
            depth += 1;
            for head in 0..self.cur.len() {
                let u = self.cur[head] as usize;
                let gm = self.gmask[u];
                let mut gor = 0u64;
                let mut m = gm;
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    m &= m - 1;
                    gor |= self.mgain[u * k + j];
                }
                let mreach = &self.mreach;
                let mgain = &self.mgain;
                let mpend = &mut self.mpend;
                let pmask = &mut self.pmask;
                let next = &mut self.next;
                g.for_each_neighbor(NodeId(u as u32), |v, e| {
                    let em = edge_masks[e.index()];
                    if gor & em == 0 {
                        return;
                    }
                    let vi = v.index();
                    let mut m = gm;
                    while m != 0 {
                        let j = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let add = mgain[u * k + j] & em & !mreach[vi * k + j];
                        if add != 0 {
                            if pmask[vi] == 0 {
                                next.push(v.0);
                            }
                            pmask[vi] |= 1 << j;
                            mpend[vi * k + j] |= add;
                        }
                    }
                });
            }
            // Close the level: consume this level's gains, then promote the
            // pending masks to the next frontier.
            for head in 0..self.cur.len() {
                let u = self.cur[head] as usize;
                let mut m = std::mem::take(&mut self.gmask[u]);
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.mgain[u * k + j] = 0;
                }
            }
            for head in 0..self.next.len() {
                let v = self.next[head] as usize;
                let pm = std::mem::take(&mut self.pmask[v]);
                let mut m = pm;
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let mask = std::mem::take(&mut self.mpend[v * k + j]);
                    if self.rmask[v] == 0 {
                        self.mtouched.push(v as u32);
                    }
                    self.rmask[v] |= 1 << j;
                    self.mreach[v * k + j] |= mask;
                    self.mgain[v * k + j] = mask;
                    visit(NodeId(v as u32), depth, j, mask);
                }
                self.gmask[v] = pm;
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            self.next.clear();
        }
        // Leftover gains of the final frontier are cleared by the generic
        // cleanup (gmask bits are ⊆ rmask bits for reached nodes).
        self.cleanup_multi(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::uncertain::UncertainGraph;

    /// 0-1-2-3 path plus isolated node 4.
    fn path_graph() -> UncertainGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lane_mask_bounds() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(3), 0b111);
        assert_eq!(lane_mask(64), !0);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn lane_mask_rejects_overflow() {
        lane_mask(65);
    }

    #[test]
    fn all_worlds_full_edges_reach_everything() {
        let g = path_graph();
        // All three edges present in all 64 worlds.
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        let mut seen: Vec<(u32, u32, u64)> = Vec::new();
        bfs.run(&g, &masks, NodeId(0), !0, 10, |n, d, m| seen.push((n.0, d, m)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0, !0), (1, 1, !0), (2, 2, !0), (3, 3, !0)]);
    }

    #[test]
    fn per_world_edges_split_reach_masks() {
        let g = path_graph();
        // Edge (0,1) exists only in world 0; edge (1,2) in worlds 0 and 1;
        // edge (2,3) nowhere.
        let masks = vec![0b01, 0b11, 0b00];
        let mut bfs = MultiWorldBfs::new(5);
        let mut seen: Vec<(u32, u32, u64)> = Vec::new();
        bfs.run(&g, &masks, NodeId(0), 0b11, 10, |n, d, m| seen.push((n.0, d, m)));
        seen.sort_unstable();
        // World 1 never leaves the source: edge (0,1) is missing there.
        assert_eq!(seen, vec![(0, 0, 0b11), (1, 1, 0b01), (2, 2, 0b01)]);
    }

    #[test]
    fn depth_limit_respected() {
        let g = path_graph();
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        let mut reached: Vec<u32> = Vec::new();
        bfs.run(&g, &masks, NodeId(0), !0, 2, |n, _, _| reached.push(n.0));
        reached.sort_unstable();
        assert_eq!(reached, vec![0, 1, 2]);
    }

    #[test]
    fn zero_depth_visits_source_only() {
        let g = path_graph();
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        let mut count = 0;
        bfs.run(&g, &masks, NodeId(1), !0, 0, |_, _, _| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn lane_mask_restricts_worlds() {
        let g = path_graph();
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        let mut seen: Vec<(u32, u64)> = Vec::new();
        bfs.run(&g, &masks, NodeId(0), 0b101, 10, |n, _, m| seen.push((n.0, m)));
        assert!(seen.iter().all(|&(_, m)| m == 0b101));
    }

    #[test]
    fn unlimited_matches_depth_run_totals() {
        // Cycle where worlds take different routes, so distances differ but
        // connectivity agrees.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.add_edge(3, 0, 0.5).unwrap();
        let g = b.build().unwrap();
        let masks = vec![0b110, 0b011, 0b101, 0b111];
        let mut bfs = MultiWorldBfs::new(4);
        let mut by_depth = vec![0u64; 4];
        bfs.run(&g, &masks, NodeId(0), 0b111, 10, |n, _, m| by_depth[n.index()] |= m);
        let mut by_fix = vec![0u64; 4];
        bfs.run_unlimited(&g, &masks, NodeId(0), 0b111, |n, m| by_fix[n.index()] = m);
        assert_eq!(by_depth, by_fix);
    }

    #[test]
    fn unlimited_visits_each_node_once() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.add_edge(3, 0, 0.5).unwrap();
        let g = b.build().unwrap();
        let masks = vec![0b01, 0b10, 0b10, 0b01];
        let mut bfs = MultiWorldBfs::new(4);
        let mut visits = vec![0u32; 4];
        bfs.run_unlimited(&g, &masks, NodeId(0), 0b11, |n, _| visits[n.index()] += 1);
        assert!(visits.iter().all(|&v| v <= 1), "visits {visits:?}");
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = path_graph();
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        bfs.run(&g, &masks, NodeId(0), !0, 10, |_, _, _| {});
        assert_eq!(bfs.reach(NodeId(3)), !0);
        // Second run from the isolated node must not see stale reach masks.
        let mut reached: Vec<u32> = Vec::new();
        bfs.run(&g, &masks, NodeId(4), !0, 10, |n, _, _| reached.push(n.0));
        assert_eq!(reached, vec![4]);
        assert_eq!(bfs.reach(NodeId(3)), 0);
        // And a mode switch must also start clean.
        let mut reached_fix: Vec<u32> = Vec::new();
        bfs.run_unlimited(&g, &masks, NodeId(2), !0, |n, _| reached_fix.push(n.0));
        reached_fix.sort_unstable();
        assert_eq!(reached_fix, vec![0, 1, 2, 3]);
    }

    #[test]
    fn multi_source_unlimited_matches_per_source_runs() {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (2, 3)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let masks = vec![0b1101, 0b0111, 0b1010, 0b1111, 0b0001, 0b0110];
        let sources = [NodeId(0), NodeId(4), NodeId(0), NodeId(5)]; // incl. duplicate
        let mut bfs = MultiWorldBfs::new(6);
        let mut multi = vec![0u64; 6 * sources.len()];
        bfs.run_unlimited_multi(&g, &masks, &sources, 0b1111, |n, j, m| {
            multi[j * 6 + n.index()] = m;
        });
        for (j, &s) in sources.iter().enumerate() {
            let mut single = [0u64; 6];
            bfs.run_unlimited(&g, &masks, s, 0b1111, |n, m| single[n.index()] = m);
            assert_eq!(&multi[j * 6..(j + 1) * 6], &single[..], "source {j} ({s}) differs");
        }
    }

    #[test]
    fn multi_source_depth_matches_per_source_runs() {
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 3), (2, 5)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let m = g.num_edges();
        let mut masks = vec![0u64; m];
        for (e, mask) in masks.iter_mut().enumerate() {
            for l in 0..8 {
                if (e * 13 + l * 29 + 3) % 3 != 0 {
                    *mask |= 1 << l;
                }
            }
        }
        let sources = [NodeId(0), NodeId(6), NodeId(3)];
        let mut bfs = MultiWorldBfs::new(7);
        for depth in [0u32, 1, 2, 5, 10] {
            // Accumulate per (source, node, depth) masks.
            let mut multi = vec![0u64; sources.len() * 7 * 11];
            bfs.run_multi(&g, &masks, &sources, lane_mask(8), depth, |n, d, j, mk| {
                multi[(j * 7 + n.index()) * 11 + d as usize] |= mk;
            });
            for (j, &s) in sources.iter().enumerate() {
                let mut single = vec![0u64; 7 * 11];
                bfs.run(&g, &masks, s, lane_mask(8), depth, |n, d, mk| {
                    single[n.index() * 11 + d as usize] |= mk;
                });
                assert_eq!(
                    &multi[j * 7 * 11..(j + 1) * 7 * 11],
                    &single[..],
                    "source {j} depth limit {depth} differs"
                );
            }
        }
    }

    #[test]
    fn multi_source_runs_leave_workspace_clean() {
        let g = path_graph();
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        // Multi run dirties stride-k state...
        bfs.run_unlimited_multi(&g, &masks, &[NodeId(0), NodeId(1)], !0, |_, _, _| {});
        // ...a following multi run with a different k starts clean...
        let mut seen = [0u64; 5 * 3];
        bfs.run_unlimited_multi(&g, &masks, &[NodeId(4), NodeId(4), NodeId(2)], !0, |n, j, m| {
            seen[j * 5 + n.index()] = m;
        });
        assert_eq!(seen[5], 0, "isolated source must not reach node 0");
        assert_eq!(seen[4], !0, "source 0 is node 4");
        assert_eq!(seen[2 * 5], !0, "source 2 reaches node 0");
        // ...and so does a single-source run afterwards.
        let mut reached: Vec<u32> = Vec::new();
        bfs.run(&g, &masks, NodeId(4), !0, 10, |n, _, _| reached.push(n.0));
        assert_eq!(reached, vec![4]);
    }

    #[test]
    #[should_panic(expected = "1..=64 sources")]
    fn multi_source_rejects_empty_sources() {
        let g = path_graph();
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        bfs.run_unlimited_multi(&g, &masks, &[], !0, |_, _, _| {});
    }

    #[test]
    fn label_components_partitions_every_lane() {
        // Deterministic pseudo-random 8-lane block over a denser graph;
        // check per-lane labels against a per-world scalar labeling.
        use crate::bitset::Bitset;
        use crate::view::WorldView;
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 3), (2, 5)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let m = g.num_edges();
        let lanes = 8;
        let mut masks = vec![0u64; m];
        for (e, mask) in masks.iter_mut().enumerate() {
            for l in 0..lanes {
                if (e * 23 + l * 41 + 5) % 3 != 0 {
                    *mask |= 1 << l;
                }
            }
        }
        let mut bfs = MultiWorldBfs::new(7);
        let mut labels = vec![u32::MAX; 7 * LANES];
        let counts = bfs.label_components(&g, &masks, lane_mask(lanes), |v, mk, next| {
            let mut bits = mk;
            while bits != 0 {
                let l = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                assert_eq!(labels[v.index() * LANES + l], u32::MAX, "node relabeled");
                labels[v.index() * LANES + l] = next[l];
            }
        });
        for l in 0..lanes {
            let mut world = Bitset::with_len(m);
            for (e, mask) in masks.iter().enumerate() {
                if mask >> l & 1 == 1 {
                    world.insert(e);
                }
            }
            let view = WorldView::new(&g, &world);
            let (want, want_count) = crate::connected_components(&view);
            assert_eq!(counts[l] as usize, want_count, "lane {l} component count");
            // Same partition: labels agree on every node pair.
            for u in 0..7 {
                assert!(labels[u * LANES + l] < counts[l], "lane {l} node {u} unlabeled");
                for v in 0..7 {
                    assert_eq!(
                        labels[u * LANES + l] == labels[v * LANES + l],
                        want[u] == want[v],
                        "lane {l} pair ({u}, {v}) partition disagrees"
                    );
                }
            }
        }
        // Lanes outside the mask are untouched.
        assert!(counts[lanes..].iter().all(|&c| c == 0));
    }

    #[test]
    fn label_components_zero_mask_is_noop() {
        let g = path_graph();
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        let counts = bfs.label_components(&g, &masks, 0, |_, _, _| panic!("no assignments"));
        assert_eq!(counts, [0u32; LANES]);
    }

    #[test]
    fn mask_bfs_agrees_with_per_world_bfs() {
        // A denser random-ish fixed graph; compare against per-world
        // DepthBfs through WorldViews for all depths.
        use crate::bitset::Bitset;
        use crate::traversal::DepthBfs;
        use crate::view::WorldView;
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 3), (2, 5), (1, 6)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let m = g.num_edges();
        // 8 worlds with deterministic pseudo-random edge membership.
        let lanes = 8;
        let mut masks = vec![0u64; m];
        for (e, mask) in masks.iter_mut().enumerate() {
            for l in 0..lanes {
                if (e * 31 + l * 17 + 7) % 3 != 0 {
                    *mask |= 1 << l;
                }
            }
        }
        let mut mw = MultiWorldBfs::new(7);
        let mut scalar = DepthBfs::new(7);
        for depth in [0u32, 1, 2, 3, 10] {
            for source in 0..7u32 {
                let mut counts = vec![0u32; 7];
                mw.run(&g, &masks, NodeId(source), lane_mask(lanes), depth, |n, _, mk| {
                    counts[n.index()] += mk.count_ones();
                });
                let mut want = vec![0u32; 7];
                for l in 0..lanes {
                    let mut world = Bitset::with_len(m);
                    for (e, mask) in masks.iter().enumerate() {
                        if mask >> l & 1 == 1 {
                            world.insert(e);
                        }
                    }
                    let view = WorldView::new(&g, &world);
                    scalar.run(&view, NodeId(source), depth, |n, _| want[n.index()] += 1);
                }
                assert_eq!(counts, want, "source {source} depth {depth}");
            }
        }
    }
}
