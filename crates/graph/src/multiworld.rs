//! Bit-parallel traversal over blocks of possible worlds.
//!
//! Monte-Carlo reliability estimation runs the *same* traversal over many
//! independently sampled worlds of the *same* topology. Packing 64 worlds
//! into one machine word per edge (bit `l` of `edge_masks[e]` = "edge `e`
//! exists in world `l` of the block") turns 64 per-world traversals into a
//! single mask-propagating traversal: every node carries a `u64` *reach
//! mask* (the worlds in which it has been reached), and traversing an edge
//! ANDs the frontier mask with the edge's presence mask.
//!
//! Two propagation modes are provided, matching the two query families of
//! the sampling layer:
//!
//! * [`MultiWorldBfs::run`] — level-synchronous BFS with a depth limit;
//!   `visit(node, depth, mask)` reports, per node and hop distance, the
//!   worlds in which the node is first reached at exactly that distance
//!   (the d-connection semantics of the paper, §3.4);
//! * [`MultiWorldBfs::run_unlimited`] — chaotic worklist iteration to the
//!   connectivity fixpoint, ignoring distances; `visit(node, mask)` reports
//!   each reached node once with the full set of worlds in which it is
//!   connected to the source. This is the cheaper mode when only
//!   connectivity matters, because a node is not re-visited per hop level
//!   when different worlds reach it at different distances.
//!
//! The workspace is reusable across calls (and across blocks): only nodes
//! touched by the previous run are cleared, so a run over a small reachable
//! set costs proportionally to that set, not to `n`.

use crate::ids::NodeId;
use crate::traversal::Adjacency;

/// Number of possible worlds packed per mask word.
pub const LANES: usize = 64;

/// Mask with the low `lanes` bits set — the valid lanes of a partially
/// filled block (`lanes == 64` gives the all-ones mask).
///
/// # Panics
/// Panics if `lanes > 64`.
#[inline]
pub fn lane_mask(lanes: usize) -> u64 {
    assert!(lanes <= LANES, "a block holds at most {LANES} worlds, got {lanes}");
    if lanes == LANES {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// Reusable workspace for bit-parallel multi-world traversals.
///
/// One `MultiWorldBfs` is typically reused across all blocks of a sample
/// pool; rayon workers build their own (see the sampling crate's pools).
#[derive(Clone, Debug)]
pub struct MultiWorldBfs {
    /// Worlds in which each node has been reached so far.
    reach: Vec<u64>,
    /// Worlds that first reached each node at the current BFS level.
    gain: Vec<u64>,
    /// Next-level accumulation (nonzero only for nodes queued in `next`).
    pend: Vec<u64>,
    /// Current-level frontier nodes.
    cur: Vec<u32>,
    /// Next-level frontier nodes.
    next: Vec<u32>,
    /// Every node reached in the current run, for O(touched) cleanup.
    touched: Vec<u32>,
}

impl MultiWorldBfs {
    /// Creates a workspace for graphs of at most `n` nodes.
    pub fn new(n: usize) -> Self {
        MultiWorldBfs {
            reach: vec![0; n],
            gain: vec![0; n],
            pend: vec![0; n],
            cur: Vec::new(),
            next: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// Clears state left by the previous run (only touched nodes).
    fn reset(&mut self) {
        for &t in &self.touched {
            self.reach[t as usize] = 0;
            self.gain[t as usize] = 0;
        }
        self.touched.clear();
        self.cur.clear();
        self.next.clear();
    }

    /// Level-synchronous BFS from `source` over the worlds selected by
    /// `lane_mask`, limited to `depth_limit` hops.
    ///
    /// `edge_masks[e]` holds the presence mask of edge `e` (bit `l` set ⇔
    /// the edge exists in world `l`). `visit(node, depth, mask)` is called
    /// once per `(node, depth)` pair with the worlds in which `node` is
    /// first reached at exactly `depth` hops — including the source at
    /// depth 0 with the full `lane_mask`. Summing `mask.count_ones()` over
    /// all calls for a node therefore counts the worlds in which the node
    /// is within `depth_limit` hops of the source.
    ///
    /// # Panics
    /// Panics if the workspace is sized for fewer nodes than `g`, or if an
    /// edge id of `g` indexes past `edge_masks`.
    pub fn run(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[u64],
        source: NodeId,
        lane_mask: u64,
        depth_limit: u32,
        mut visit: impl FnMut(NodeId, u32, u64),
    ) {
        assert!(
            g.num_nodes() <= self.reach.len(),
            "MultiWorldBfs workspace sized for {} nodes, graph has {}",
            self.reach.len(),
            g.num_nodes()
        );
        self.reset();
        if lane_mask == 0 {
            return;
        }
        self.reach[source.index()] = lane_mask;
        self.gain[source.index()] = lane_mask;
        self.touched.push(source.0);
        self.cur.push(source.0);
        visit(source, 0, lane_mask);

        let mut depth = 0u32;
        while !self.cur.is_empty() && depth < depth_limit {
            depth += 1;
            let reach = &mut self.reach;
            let gain = &mut self.gain;
            let pend = &mut self.pend;
            let next = &mut self.next;
            for &u in &self.cur {
                let gu = gain[u as usize];
                g.for_each_neighbor(NodeId(u), |v, e| {
                    let add = gu & edge_masks[e.index()] & !reach[v.index()];
                    if add != 0 {
                        if pend[v.index()] == 0 {
                            next.push(v.0);
                        }
                        pend[v.index()] |= add;
                    }
                });
            }
            for &v in next.iter() {
                let mask = pend[v as usize];
                pend[v as usize] = 0;
                if reach[v as usize] == 0 {
                    self.touched.push(v);
                }
                reach[v as usize] |= mask;
                gain[v as usize] = mask;
                visit(NodeId(v), depth, mask);
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            self.next.clear();
        }
    }

    /// Connectivity fixpoint from `source` over the worlds selected by
    /// `lane_mask`, ignoring distances.
    ///
    /// Chaotic worklist iteration: a node is re-queued whenever its reach
    /// mask grows, until no mask changes. `visit(node, mask)` is called
    /// once per reached node (source included) with the final mask of
    /// worlds in which the node is connected to the source.
    ///
    /// # Panics
    /// Same conditions as [`MultiWorldBfs::run`].
    pub fn run_unlimited(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[u64],
        source: NodeId,
        lane_mask: u64,
        mut visit: impl FnMut(NodeId, u64),
    ) {
        assert!(
            g.num_nodes() <= self.reach.len(),
            "MultiWorldBfs workspace sized for {} nodes, graph has {}",
            self.reach.len(),
            g.num_nodes()
        );
        self.reset();
        if lane_mask == 0 {
            return;
        }
        // `gain` doubles as the "queued" flag: nonzero ⇔ node is in `cur`
        // awaiting propagation of those newly arrived worlds.
        self.reach[source.index()] = lane_mask;
        self.gain[source.index()] = lane_mask;
        self.touched.push(source.0);
        self.cur.push(source.0);
        let mut head = 0usize;
        while head < self.cur.len() {
            let u = self.cur[head];
            head += 1;
            let gu = std::mem::take(&mut self.gain[u as usize]);
            if gu == 0 {
                continue; // re-queued entry already drained
            }
            let reach = &mut self.reach;
            let gain = &mut self.gain;
            let cur = &mut self.cur;
            let touched = &mut self.touched;
            g.for_each_neighbor(NodeId(u), |v, e| {
                let add = gu & edge_masks[e.index()] & !reach[v.index()];
                if add != 0 {
                    if reach[v.index()] == 0 {
                        touched.push(v.0);
                    }
                    reach[v.index()] |= add;
                    if gain[v.index()] == 0 {
                        cur.push(v.0);
                    }
                    gain[v.index()] |= add;
                }
            });
        }
        for &v in &self.touched {
            visit(NodeId(v), self.reach[v as usize]);
        }
    }

    /// The reach mask of `node` after the last run (0 if unreached).
    #[inline]
    pub fn reach(&self, node: NodeId) -> u64 {
        self.reach[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::uncertain::UncertainGraph;

    /// 0-1-2-3 path plus isolated node 4.
    fn path_graph() -> UncertainGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lane_mask_bounds() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(3), 0b111);
        assert_eq!(lane_mask(64), !0);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn lane_mask_rejects_overflow() {
        lane_mask(65);
    }

    #[test]
    fn all_worlds_full_edges_reach_everything() {
        let g = path_graph();
        // All three edges present in all 64 worlds.
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        let mut seen: Vec<(u32, u32, u64)> = Vec::new();
        bfs.run(&g, &masks, NodeId(0), !0, 10, |n, d, m| seen.push((n.0, d, m)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0, !0), (1, 1, !0), (2, 2, !0), (3, 3, !0)]);
    }

    #[test]
    fn per_world_edges_split_reach_masks() {
        let g = path_graph();
        // Edge (0,1) exists only in world 0; edge (1,2) in worlds 0 and 1;
        // edge (2,3) nowhere.
        let masks = vec![0b01, 0b11, 0b00];
        let mut bfs = MultiWorldBfs::new(5);
        let mut seen: Vec<(u32, u32, u64)> = Vec::new();
        bfs.run(&g, &masks, NodeId(0), 0b11, 10, |n, d, m| seen.push((n.0, d, m)));
        seen.sort_unstable();
        // World 1 never leaves the source: edge (0,1) is missing there.
        assert_eq!(seen, vec![(0, 0, 0b11), (1, 1, 0b01), (2, 2, 0b01)]);
    }

    #[test]
    fn depth_limit_respected() {
        let g = path_graph();
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        let mut reached: Vec<u32> = Vec::new();
        bfs.run(&g, &masks, NodeId(0), !0, 2, |n, _, _| reached.push(n.0));
        reached.sort_unstable();
        assert_eq!(reached, vec![0, 1, 2]);
    }

    #[test]
    fn zero_depth_visits_source_only() {
        let g = path_graph();
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        let mut count = 0;
        bfs.run(&g, &masks, NodeId(1), !0, 0, |_, _, _| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn lane_mask_restricts_worlds() {
        let g = path_graph();
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        let mut seen: Vec<(u32, u64)> = Vec::new();
        bfs.run(&g, &masks, NodeId(0), 0b101, 10, |n, _, m| seen.push((n.0, m)));
        assert!(seen.iter().all(|&(_, m)| m == 0b101));
    }

    #[test]
    fn unlimited_matches_depth_run_totals() {
        // Cycle where worlds take different routes, so distances differ but
        // connectivity agrees.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.add_edge(3, 0, 0.5).unwrap();
        let g = b.build().unwrap();
        let masks = vec![0b110, 0b011, 0b101, 0b111];
        let mut bfs = MultiWorldBfs::new(4);
        let mut by_depth = vec![0u64; 4];
        bfs.run(&g, &masks, NodeId(0), 0b111, 10, |n, _, m| by_depth[n.index()] |= m);
        let mut by_fix = vec![0u64; 4];
        bfs.run_unlimited(&g, &masks, NodeId(0), 0b111, |n, m| by_fix[n.index()] = m);
        assert_eq!(by_depth, by_fix);
    }

    #[test]
    fn unlimited_visits_each_node_once() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.add_edge(3, 0, 0.5).unwrap();
        let g = b.build().unwrap();
        let masks = vec![0b01, 0b10, 0b10, 0b01];
        let mut bfs = MultiWorldBfs::new(4);
        let mut visits = vec![0u32; 4];
        bfs.run_unlimited(&g, &masks, NodeId(0), 0b11, |n, _| visits[n.index()] += 1);
        assert!(visits.iter().all(|&v| v <= 1), "visits {visits:?}");
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = path_graph();
        let masks = vec![!0u64; 3];
        let mut bfs = MultiWorldBfs::new(5);
        bfs.run(&g, &masks, NodeId(0), !0, 10, |_, _, _| {});
        assert_eq!(bfs.reach(NodeId(3)), !0);
        // Second run from the isolated node must not see stale reach masks.
        let mut reached: Vec<u32> = Vec::new();
        bfs.run(&g, &masks, NodeId(4), !0, 10, |n, _, _| reached.push(n.0));
        assert_eq!(reached, vec![4]);
        assert_eq!(bfs.reach(NodeId(3)), 0);
        // And a mode switch must also start clean.
        let mut reached_fix: Vec<u32> = Vec::new();
        bfs.run_unlimited(&g, &masks, NodeId(2), !0, |n, _| reached_fix.push(n.0));
        reached_fix.sort_unstable();
        assert_eq!(reached_fix, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mask_bfs_agrees_with_per_world_bfs() {
        // A denser random-ish fixed graph; compare against per-world
        // DepthBfs through WorldViews for all depths.
        use crate::bitset::Bitset;
        use crate::traversal::DepthBfs;
        use crate::view::WorldView;
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 3), (2, 5), (1, 6)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let m = g.num_edges();
        // 8 worlds with deterministic pseudo-random edge membership.
        let lanes = 8;
        let mut masks = vec![0u64; m];
        for (e, mask) in masks.iter_mut().enumerate() {
            for l in 0..lanes {
                if (e * 31 + l * 17 + 7) % 3 != 0 {
                    *mask |= 1 << l;
                }
            }
        }
        let mut mw = MultiWorldBfs::new(7);
        let mut scalar = DepthBfs::new(7);
        for depth in [0u32, 1, 2, 3, 10] {
            for source in 0..7u32 {
                let mut counts = vec![0u32; 7];
                mw.run(&g, &masks, NodeId(source), lane_mask(lanes), depth, |n, _, mk| {
                    counts[n.index()] += mk.count_ones();
                });
                let mut want = vec![0u32; 7];
                for l in 0..lanes {
                    let mut world = Bitset::with_len(m);
                    for (e, mask) in masks.iter().enumerate() {
                        if mask >> l & 1 == 1 {
                            world.insert(e);
                        }
                    }
                    let view = WorldView::new(&g, &world);
                    scalar.run(&view, NodeId(source), depth, |n, _| want[n.index()] += 1);
                }
                assert_eq!(counts, want, "source {source} depth {depth}");
            }
        }
    }
}
