//! Bit-parallel traversal over blocks of possible worlds.
//!
//! Monte-Carlo reliability estimation runs the *same* traversal over many
//! independently sampled worlds of the *same* topology. Packing worlds
//! into machine words per edge (bit `l` of `edge_masks[e]` = "edge `e`
//! exists in world `l` of the block") turns per-world traversals into a
//! single mask-propagating traversal: every node carries a *reach mask*
//! (the worlds in which it has been reached), and traversing an edge
//! ANDs the frontier mask with the edge's presence mask.
//!
//! Masks are [`Mask<W>`] — a fixed `[u64; W]` word array, so one block
//! carries `W * 64` worlds (64/256/512 for `W` ∈ {1, 4, 8}). All mask
//! ops are fixed-size-array loops that LLVM autovectorizes on stable;
//! there is no `portable_simd` dependency. `W = 1` is the default and
//! behaves exactly like the historical plain-`u64` kernels.
//!
//! Two propagation modes are provided, matching the two query families of
//! the sampling layer:
//!
//! * [`MultiWorldBfs::run`] — level-synchronous BFS with a depth limit;
//!   `visit(node, depth, mask)` reports, per node and hop distance, the
//!   worlds in which the node is first reached at exactly that distance
//!   (the d-connection semantics of the paper, §3.4);
//! * [`MultiWorldBfs::run_unlimited`] — chaotic worklist iteration to the
//!   connectivity fixpoint, ignoring distances; `visit(node, mask)` reports
//!   each reached node once with the full set of worlds in which it is
//!   connected to the source. This is the cheaper mode when only
//!   connectivity matters, because a node is not re-visited per hop level
//!   when different worlds reach it at different distances.
//!
//! Both modes also come in **multi-source** variants
//! ([`MultiWorldBfs::run_multi`], [`MultiWorldBfs::run_unlimited_multi`])
//! that propagate up to [`MAX_SOURCES`] independent frontier masks in a
//! single traversal. The per-source semantics are exactly those of the
//! single-source runs, but every edge mask is loaded — and every adjacency
//! list walked — once for *all* sources that are active at a node instead
//! of once per source. This is the amortization that makes batched
//! multi-center reliability rows cheap: the dominant cost of a mask BFS is
//! the memory traffic of edge masks and CSR neighbor lists, and a batch of
//! `k` centers shares that traffic `k` ways.
//!
//! The workspace is reusable across calls (and across blocks): only nodes
//! touched by the previous run are cleared, so a run over a small reachable
//! set costs proportionally to that set, not to `n`.

use crate::ids::NodeId;
use crate::traversal::Adjacency;

/// Number of possible worlds packed per mask *word* (a block of width `W`
/// carries `W * LANES` worlds).
pub const LANES: usize = 64;

/// Maximum number of sources a multi-source traversal can carry at once
/// (per-node source activity is tracked in one `u64` bitmask, independent
/// of the block width).
pub const MAX_SOURCES: usize = 64;

/// Mask with the low `lanes` bits set — the valid lanes of a partially
/// filled single-word block (`lanes == 64` gives the all-ones mask).
/// The width-generic equivalent is [`Mask::prefix`].
///
/// # Panics
/// Panics if `lanes > 64`.
#[inline]
pub fn lane_mask(lanes: usize) -> u64 {
    assert!(lanes <= LANES, "a block holds at most {LANES} worlds, got {lanes}");
    if lanes == LANES {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// A block-width lane set: `W` words of 64 lanes each, lane `l` living in
/// bit `l % 64` of word `l / 64`.
///
/// This is the `BlockWidth` seam: every mask kernel is generic over `W`,
/// and all combining ops below compile to fixed-size-array loops that
/// LLVM unrolls and autovectorizes (AVX2 for `W = 4`, AVX-512 where
/// available for `W = 8`) on stable Rust.
#[repr(transparent)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mask<const W: usize>(pub [u64; W]);

impl<const W: usize> Mask<W> {
    /// Total lanes (worlds) carried by one mask of this width.
    pub const LANES: usize = W * LANES;

    /// The empty lane set.
    pub const ZERO: Self = Mask([0; W]);

    /// The full lane set.
    #[inline]
    pub fn ones() -> Self {
        Mask([!0; W])
    }

    /// Mask with the low `lanes` bits set — the valid lanes of a partially
    /// filled block (`lanes == Self::LANES` gives the all-ones mask).
    ///
    /// # Panics
    /// Panics if `lanes > Self::LANES`.
    #[inline]
    pub fn prefix(lanes: usize) -> Self {
        assert!(lanes <= Self::LANES, "a block holds at most {} worlds, got {lanes}", Self::LANES);
        let mut out = [0u64; W];
        let full = lanes / LANES;
        for w in out.iter_mut().take(full) {
            *w = !0;
        }
        let rem = lanes % LANES;
        if rem != 0 {
            out[full] = (1u64 << rem) - 1;
        }
        Mask(out)
    }

    /// Mask with only `lane` set.
    ///
    /// # Panics
    /// Panics if `lane >= Self::LANES`.
    #[inline]
    pub fn bit(lane: usize) -> Self {
        assert!(lane < Self::LANES, "lane {lane} out of range for width {}", Self::LANES);
        let mut out = [0u64; W];
        out[lane / LANES] = 1u64 << (lane % LANES);
        Mask(out)
    }

    /// Whether `lane` is set.
    #[inline]
    pub fn get(self, lane: usize) -> bool {
        self.0[lane / LANES] >> (lane % LANES) & 1 == 1
    }

    /// Whether any lane is set.
    #[inline]
    pub fn any(self) -> bool {
        let mut or = 0u64;
        for w in self.0 {
            or |= w;
        }
        or != 0
    }

    /// Whether no lane is set.
    #[inline]
    pub fn is_zero(self) -> bool {
        !self.any()
    }

    /// Number of set lanes.
    #[inline]
    pub fn count_ones(self) -> u32 {
        let mut c = 0u32;
        for w in self.0 {
            c += w.count_ones();
        }
        c
    }

    /// `self & !rhs` without materializing the intermediate complement.
    #[inline]
    pub fn and_not(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o &= !r;
        }
        Mask(out)
    }

    /// Calls `f(lane)` for every set lane, in increasing lane order.
    #[inline]
    pub fn for_each_lane(self, mut f: impl FnMut(usize)) {
        for (wi, mut w) in self.0.into_iter().enumerate() {
            while w != 0 {
                let l = w.trailing_zeros() as usize;
                w &= w - 1;
                f(wi * LANES + l);
            }
        }
    }
}

impl<const W: usize> Default for Mask<W> {
    #[inline]
    fn default() -> Self {
        Self::ZERO
    }
}

impl From<u64> for Mask<1> {
    #[inline]
    fn from(word: u64) -> Self {
        Mask([word])
    }
}

impl<const W: usize> std::ops::BitAnd for Mask<W> {
    type Output = Self;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o &= r;
        }
        Mask(out)
    }
}

impl<const W: usize> std::ops::BitOr for Mask<W> {
    type Output = Self;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o |= r;
        }
        Mask(out)
    }
}

impl<const W: usize> std::ops::Not for Mask<W> {
    type Output = Self;
    #[inline]
    fn not(self) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = !*o;
        }
        Mask(out)
    }
}

impl<const W: usize> std::ops::BitAndAssign for Mask<W> {
    #[inline]
    fn bitand_assign(&mut self, rhs: Self) {
        for (o, r) in self.0.iter_mut().zip(rhs.0) {
            *o &= r;
        }
    }
}

impl<const W: usize> std::ops::BitOrAssign for Mask<W> {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        for (o, r) in self.0.iter_mut().zip(rhs.0) {
            *o |= r;
        }
    }
}

/// Reusable workspace for bit-parallel multi-world traversals over blocks
/// of `W * 64` worlds.
///
/// One `MultiWorldBfs` is typically reused across all blocks of a sample
/// pool; rayon workers build their own (see the sampling crate's pools).
#[derive(Clone, Debug)]
pub struct MultiWorldBfs<const W: usize = 1> {
    /// Worlds in which each node has been reached so far.
    reach: Vec<Mask<W>>,
    /// Worlds that first reached each node at the current BFS level.
    gain: Vec<Mask<W>>,
    /// Next-level accumulation (nonzero only for nodes queued in `next`).
    pend: Vec<Mask<W>>,
    /// Current-level frontier nodes.
    cur: Vec<u32>,
    /// Next-level frontier nodes.
    next: Vec<u32>,
    /// Every node reached in the current run, for O(touched) cleanup.
    touched: Vec<u32>,
    /// Multi-source reach masks, node-major with stride `k`
    /// (`mreach[u * k + j]` = worlds in which source `j` reached `u`).
    /// Lazily grown; multi-source runs clean these up on exit.
    mreach: Vec<Mask<W>>,
    /// Multi-source gain masks (same layout as `mreach`).
    mgain: Vec<Mask<W>>,
    /// Multi-source next-level accumulation (same layout).
    mpend: Vec<Mask<W>>,
    /// Per node: bitmask of sources that have reached it.
    rmask: Vec<u64>,
    /// Per node: bitmask of sources with unpropagated gain (queued flag).
    gmask: Vec<u64>,
    /// Per node: bitmask of sources with pending next-level masks.
    pmask: Vec<u64>,
    /// Nodes reached by the current multi-source run.
    mtouched: Vec<u32>,
    /// Per-center pending lanes for the component-sharing batch sweep
    /// ([`MultiWorldBfs::shared_component_counts`]).
    sweep_todo: Vec<Mask<W>>,
    /// Reached `(node, mask)` pairs of the sweep's current traversal.
    sweep_reach: Vec<(u32, Mask<W>)>,
}

impl<const W: usize> MultiWorldBfs<W> {
    /// Creates a workspace for graphs of at most `n` nodes.
    pub fn new(n: usize) -> Self {
        MultiWorldBfs {
            reach: vec![Mask::ZERO; n],
            gain: vec![Mask::ZERO; n],
            pend: vec![Mask::ZERO; n],
            cur: Vec::new(),
            next: Vec::new(),
            touched: Vec::new(),
            mreach: Vec::new(),
            mgain: Vec::new(),
            mpend: Vec::new(),
            rmask: vec![0; n],
            gmask: vec![0; n],
            pmask: vec![0; n],
            mtouched: Vec::new(),
            sweep_todo: Vec::new(),
            sweep_reach: Vec::new(),
        }
    }

    /// Clears state left by the previous run (only touched nodes).
    fn reset(&mut self) {
        for &t in &self.touched {
            self.reach[t as usize] = Mask::ZERO;
            self.gain[t as usize] = Mask::ZERO;
        }
        self.touched.clear();
        self.cur.clear();
        self.next.clear();
    }

    /// Level-synchronous BFS from `source` over the worlds selected by
    /// `lanes`, limited to `depth_limit` hops.
    ///
    /// `edge_masks[e]` holds the presence mask of edge `e` (lane `l` set ⇔
    /// the edge exists in world `l`). `visit(node, depth, mask)` is called
    /// once per `(node, depth)` pair with the worlds in which `node` is
    /// first reached at exactly `depth` hops — including the source at
    /// depth 0 with the full `lanes` mask. Summing `mask.count_ones()` over
    /// all calls for a node therefore counts the worlds in which the node
    /// is within `depth_limit` hops of the source.
    ///
    /// # Panics
    /// Panics if the workspace is sized for fewer nodes than `g`, or if an
    /// edge id of `g` indexes past `edge_masks`.
    pub fn run(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[Mask<W>],
        source: NodeId,
        lanes: Mask<W>,
        depth_limit: u32,
        mut visit: impl FnMut(NodeId, u32, Mask<W>),
    ) {
        assert!(
            g.num_nodes() <= self.reach.len(),
            "MultiWorldBfs workspace sized for {} nodes, graph has {}",
            self.reach.len(),
            g.num_nodes()
        );
        self.reset();
        if lanes.is_zero() {
            return;
        }
        self.reach[source.index()] = lanes;
        self.gain[source.index()] = lanes;
        self.touched.push(source.0);
        self.cur.push(source.0);
        visit(source, 0, lanes);

        let mut depth = 0u32;
        while !self.cur.is_empty() && depth < depth_limit {
            depth += 1;
            let reach = &mut self.reach;
            let gain = &mut self.gain;
            let pend = &mut self.pend;
            let next = &mut self.next;
            for &u in &self.cur {
                let gu = gain[u as usize];
                g.for_each_neighbor(NodeId(u), |v, e| {
                    let add = (gu & edge_masks[e.index()]).and_not(reach[v.index()]);
                    if add.any() {
                        if pend[v.index()].is_zero() {
                            next.push(v.0);
                        }
                        pend[v.index()] |= add;
                    }
                });
            }
            for &v in next.iter() {
                let mask = pend[v as usize];
                pend[v as usize] = Mask::ZERO;
                if reach[v as usize].is_zero() {
                    self.touched.push(v);
                }
                reach[v as usize] |= mask;
                gain[v as usize] = mask;
                visit(NodeId(v), depth, mask);
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            self.next.clear();
        }
    }

    /// Connectivity fixpoint from `source` over the worlds selected by
    /// `lanes`, ignoring distances.
    ///
    /// Chaotic worklist iteration: a node is re-queued whenever its reach
    /// mask grows, until no mask changes. `visit(node, mask)` is called
    /// once per reached node (source included) with the final mask of
    /// worlds in which the node is connected to the source.
    ///
    /// # Panics
    /// Same conditions as [`MultiWorldBfs::run`].
    pub fn run_unlimited(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[Mask<W>],
        source: NodeId,
        lanes: Mask<W>,
        mut visit: impl FnMut(NodeId, Mask<W>),
    ) {
        assert!(
            g.num_nodes() <= self.reach.len(),
            "MultiWorldBfs workspace sized for {} nodes, graph has {}",
            self.reach.len(),
            g.num_nodes()
        );
        self.reset();
        if lanes.is_zero() {
            return;
        }
        // `gain` doubles as the "queued" flag: nonzero ⇔ node is in `cur`
        // awaiting propagation of those newly arrived worlds.
        self.reach[source.index()] = lanes;
        self.gain[source.index()] = lanes;
        self.touched.push(source.0);
        self.cur.push(source.0);
        let mut head = 0usize;
        while head < self.cur.len() {
            let u = self.cur[head];
            head += 1;
            let gu = std::mem::take(&mut self.gain[u as usize]);
            if gu.is_zero() {
                continue; // re-queued entry already drained
            }
            let reach = &mut self.reach;
            let gain = &mut self.gain;
            let cur = &mut self.cur;
            let touched = &mut self.touched;
            g.for_each_neighbor(NodeId(u), |v, e| {
                let add = (gu & edge_masks[e.index()]).and_not(reach[v.index()]);
                if add.any() {
                    if reach[v.index()].is_zero() {
                        touched.push(v.0);
                    }
                    reach[v.index()] |= add;
                    if gain[v.index()].is_zero() {
                        cur.push(v.0);
                    }
                    gain[v.index()] |= add;
                }
            });
        }
        for &v in &self.touched {
            visit(NodeId(v), self.reach[v as usize]);
        }
    }

    /// The reach mask of `node` after the last run (zero if unreached).
    #[inline]
    pub fn reach(&self, node: NodeId) -> Mask<W> {
        self.reach[node.index()]
    }

    /// Connection counts for a batch of `centers` in one component-sharing
    /// sweep, using the workspace's own scratch buffers (no per-call
    /// allocation). `counts` is center-major (`counts[j * n + u]` gains the
    /// number of worlds of `lanes` in which `u` is connected to
    /// `centers[j]`; entries are **added to**, not overwritten).
    ///
    /// The sweep runs one connectivity fixpoint per center, but any later
    /// center that lands in an earlier center's component inherits that
    /// traversal's reach row for the shared worlds instead of re-walking
    /// it — within one block, centers in the same component are the common
    /// case, so a batch of `k` centers usually pays far fewer than `k`
    /// traversals.
    ///
    /// # Panics
    /// Panics if `counts.len() != centers.len() * g.num_nodes()`, or under
    /// the conditions of [`MultiWorldBfs::run_unlimited`].
    pub fn shared_component_counts(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[Mask<W>],
        centers: &[NodeId],
        lanes: Mask<W>,
        counts: &mut [u32],
    ) {
        let k = centers.len();
        let n = g.num_nodes();
        assert_eq!(
            counts.len(),
            k * n,
            "counts sized for {} entries, want {k} centers x {n} nodes",
            counts.len()
        );
        if k == 0 || lanes.is_zero() {
            return;
        }
        // The scratch buffers are detached from `self` for the duration of
        // the sweep so the traversal below can still borrow the workspace.
        let mut todo = std::mem::take(&mut self.sweep_todo);
        let mut reach = std::mem::take(&mut self.sweep_reach);
        todo.clear();
        todo.resize(k, lanes);
        for j in 0..k {
            let m = todo[j];
            if m.is_zero() {
                continue;
            }
            reach.clear();
            self.run_unlimited(g, edge_masks, centers[j], m, |u, mask| reach.push((u.0, mask)));
            for &(u, mask) in reach.iter() {
                counts[j * n + u as usize] += mask.count_ones();
            }
            // Any later center reached by this traversal shares the whole
            // component in those worlds: inherit the reach row and drop the
            // worlds from its own pending set.
            for j2 in j + 1..k {
                let shared = todo[j2] & self.reach(centers[j2]);
                if shared.any() {
                    todo[j2] = todo[j2].and_not(shared);
                    for &(u, mask) in reach.iter() {
                        counts[j2 * n + u as usize] += (mask & shared).count_ones();
                    }
                }
            }
        }
        self.sweep_todo = todo;
        self.sweep_reach = reach;
    }

    /// Labels the connected components of **every** world selected by
    /// `lanes` in one component-sharing sweep: one connectivity-fixpoint
    /// traversal per *component*, not per node — the traversal from a node
    /// `u` that is still unlabeled in lanes `M` discovers, for every lane
    /// `l ∈ M` simultaneously, the full member set of `u`'s component in
    /// world `l` (the reach masks say which lanes each reached node shares
    /// with `u`).
    ///
    /// `assign(node, mask, next)` is called once per `(reached node,
    /// traversal)` with the lanes `mask` the node was reached in and the
    /// per-lane label counters `next` (one per lane, `Mask::<W>::LANES`
    /// entries): the node's label in lane `l` of `mask` is `next[l]`.
    /// Labels are dense per lane (`0..counts[l]`) in first-seen node
    /// order. Returns the per-lane component counts (0 for lanes outside
    /// `lanes`).
    ///
    /// Unlabeled lanes of a node are always a superset of the unlabeled
    /// lanes of its whole component (components are labeled atomically), so
    /// restricting each traversal to the source's unlabeled lanes never
    /// splits a component.
    ///
    /// # Panics
    /// Panics if the workspace is sized for fewer nodes than `g`, or if an
    /// edge id of `g` indexes past `edge_masks`.
    pub fn label_components(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[Mask<W>],
        lanes: Mask<W>,
        mut assign: impl FnMut(NodeId, Mask<W>, &[u32]),
    ) -> Vec<u32> {
        let n = g.num_nodes();
        assert!(
            n <= self.reach.len(),
            "MultiWorldBfs workspace sized for {} nodes, graph has {}",
            self.reach.len(),
            n
        );
        let mut next = vec![0u32; Mask::<W>::LANES];
        if lanes.is_zero() {
            return next;
        }
        // Lanes in which each node has not been assigned a label yet.
        let mut unlabeled = vec![lanes; n];
        for u in 0..n as u32 {
            let m = unlabeled[u as usize];
            if m.is_zero() {
                continue;
            }
            // `next` is only advanced after the traversal, so the counters
            // seen by `assign` are the labels of this component per lane.
            self.run_unlimited(g, edge_masks, NodeId(u), m, |v, mask| {
                unlabeled[v.index()] = unlabeled[v.index()].and_not(mask);
                assign(v, mask, &next);
            });
            m.for_each_lane(|l| next[l] += 1);
        }
        next
    }

    /// Prepares the stride-`k` multi-source buffers and seeds the sources.
    /// Returns `false` when `lanes` selects no worlds (nothing to do).
    fn init_multi(&mut self, n_graph: usize, sources: &[NodeId], lanes: Mask<W>) -> bool {
        let k = sources.len();
        assert!(
            (1..=MAX_SOURCES).contains(&k),
            "multi-source traversal carries 1..={MAX_SOURCES} sources, got {k}"
        );
        assert!(
            n_graph <= self.rmask.len(),
            "MultiWorldBfs workspace sized for {} nodes, graph has {}",
            self.rmask.len(),
            n_graph
        );
        let want = self.rmask.len() * k;
        if self.mreach.len() < want {
            self.mreach.resize(want, Mask::ZERO);
            self.mgain.resize(want, Mask::ZERO);
            self.mpend.resize(want, Mask::ZERO);
        }
        self.cur.clear();
        self.next.clear();
        self.mtouched.clear();
        if lanes.is_zero() {
            return false;
        }
        for (j, s) in sources.iter().enumerate() {
            let u = s.index();
            if self.rmask[u] == 0 {
                self.mtouched.push(s.0);
            }
            self.rmask[u] |= 1 << j;
            if self.gmask[u] == 0 {
                self.cur.push(s.0);
            }
            self.gmask[u] |= 1 << j;
            self.mreach[u * k + j] = lanes;
            self.mgain[u * k + j] = lanes;
        }
        true
    }

    /// Restores the multi-source buffers to their all-zero state, touching
    /// only what the run dirtied.
    fn cleanup_multi(&mut self, k: usize) {
        for &t in &self.mtouched {
            let u = t as usize;
            let mut m = self.rmask[u];
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                m &= m - 1;
                self.mreach[u * k + j] = Mask::ZERO;
                self.mgain[u * k + j] = Mask::ZERO;
            }
            self.rmask[u] = 0;
            self.gmask[u] = 0;
        }
        self.mtouched.clear();
        self.cur.clear();
        self.next.clear();
    }

    /// Multi-source connectivity fixpoint: the semantics of
    /// [`MultiWorldBfs::run_unlimited`] for every source independently, in
    /// **one** traversal. `visit(node, source_idx, mask)` is called once
    /// per `(reached node, source)` pair with the final mask of worlds in
    /// which the node is connected to `sources[source_idx]`.
    ///
    /// Edge masks are loaded (and adjacency lists walked) once for all
    /// sources active at a node, which is the whole point: a batch of `k`
    /// sources shares the traversal's memory traffic instead of paying it
    /// `k` times. Duplicate sources are allowed and reported separately.
    ///
    /// # Panics
    /// Panics if `sources` is empty or longer than [`MAX_SOURCES`], if the
    /// workspace is sized for fewer nodes than `g`, or if an edge id of `g`
    /// indexes past `edge_masks`.
    pub fn run_unlimited_multi(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[Mask<W>],
        sources: &[NodeId],
        lanes: Mask<W>,
        mut visit: impl FnMut(NodeId, usize, Mask<W>),
    ) {
        let k = sources.len();
        if !self.init_multi(g.num_nodes(), sources, lanes) {
            return;
        }
        let mut head = 0usize;
        while head < self.cur.len() {
            let u = self.cur[head] as usize;
            head += 1;
            let gm = std::mem::take(&mut self.gmask[u]);
            if gm == 0 {
                continue; // re-queued entry already drained
            }
            // Union of the active gains: a cheap pre-filter that skips the
            // per-source loop for edges absent from every gained world.
            let mut gor = Mask::ZERO;
            let mut m = gm;
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                m &= m - 1;
                gor |= self.mgain[u * k + j];
            }
            let mreach = &mut self.mreach;
            let mgain = &mut self.mgain;
            let rmask = &mut self.rmask;
            let gmask = &mut self.gmask;
            let cur = &mut self.cur;
            let mtouched = &mut self.mtouched;
            g.for_each_neighbor(NodeId(u as u32), |v, e| {
                let em = edge_masks[e.index()];
                if (gor & em).is_zero() {
                    return;
                }
                let vi = v.index();
                let mut m = gm;
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let add = (mgain[u * k + j] & em).and_not(mreach[vi * k + j]);
                    if add.any() {
                        if rmask[vi] == 0 {
                            mtouched.push(v.0);
                        }
                        rmask[vi] |= 1 << j;
                        mreach[vi * k + j] |= add;
                        if gmask[vi] == 0 {
                            cur.push(v.0);
                        }
                        gmask[vi] |= 1 << j;
                        mgain[vi * k + j] |= add;
                    }
                }
            });
            // Gains propagated; drop them so a later re-queue of `u` only
            // pushes genuinely new worlds.
            let mut m = gm;
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                m &= m - 1;
                self.mgain[u * k + j] = Mask::ZERO;
            }
        }
        for i in 0..self.mtouched.len() {
            let u = self.mtouched[i] as usize;
            let mut m = self.rmask[u];
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                m &= m - 1;
                visit(NodeId(u as u32), j, self.mreach[u * k + j]);
            }
        }
        self.cleanup_multi(k);
    }

    /// Multi-source level-synchronous BFS: the semantics of
    /// [`MultiWorldBfs::run`] for every source independently, in one
    /// traversal. `visit(node, depth, source_idx, mask)` reports the worlds
    /// in which `node` is first reached at exactly `depth` hops from
    /// `sources[source_idx]` (each source is reported at depth 0 with the
    /// full `lanes` mask).
    ///
    /// # Panics
    /// Same conditions as [`MultiWorldBfs::run_unlimited_multi`].
    pub fn run_multi(
        &mut self,
        g: &impl Adjacency,
        edge_masks: &[Mask<W>],
        sources: &[NodeId],
        lanes: Mask<W>,
        depth_limit: u32,
        mut visit: impl FnMut(NodeId, u32, usize, Mask<W>),
    ) {
        let k = sources.len();
        if !self.init_multi(g.num_nodes(), sources, lanes) {
            return;
        }
        for (j, s) in sources.iter().enumerate() {
            visit(*s, 0, j, lanes);
        }
        let mut depth = 0u32;
        while !self.cur.is_empty() && depth < depth_limit {
            depth += 1;
            for head in 0..self.cur.len() {
                let u = self.cur[head] as usize;
                let gm = self.gmask[u];
                let mut gor = Mask::ZERO;
                let mut m = gm;
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    m &= m - 1;
                    gor |= self.mgain[u * k + j];
                }
                let mreach = &self.mreach;
                let mgain = &self.mgain;
                let mpend = &mut self.mpend;
                let pmask = &mut self.pmask;
                let next = &mut self.next;
                g.for_each_neighbor(NodeId(u as u32), |v, e| {
                    let em = edge_masks[e.index()];
                    if (gor & em).is_zero() {
                        return;
                    }
                    let vi = v.index();
                    let mut m = gm;
                    while m != 0 {
                        let j = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let add = (mgain[u * k + j] & em).and_not(mreach[vi * k + j]);
                        if add.any() {
                            if pmask[vi] == 0 {
                                next.push(v.0);
                            }
                            pmask[vi] |= 1 << j;
                            mpend[vi * k + j] |= add;
                        }
                    }
                });
            }
            // Close the level: consume this level's gains, then promote the
            // pending masks to the next frontier.
            for head in 0..self.cur.len() {
                let u = self.cur[head] as usize;
                let mut m = std::mem::take(&mut self.gmask[u]);
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.mgain[u * k + j] = Mask::ZERO;
                }
            }
            for head in 0..self.next.len() {
                let v = self.next[head] as usize;
                let pm = std::mem::take(&mut self.pmask[v]);
                let mut m = pm;
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let mask = std::mem::take(&mut self.mpend[v * k + j]);
                    if self.rmask[v] == 0 {
                        self.mtouched.push(v as u32);
                    }
                    self.rmask[v] |= 1 << j;
                    self.mreach[v * k + j] |= mask;
                    self.mgain[v * k + j] = mask;
                    visit(NodeId(v as u32), depth, j, mask);
                }
                self.gmask[v] = pm;
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            self.next.clear();
        }
        // Leftover gains of the final frontier are cleared by the generic
        // cleanup (gmask bits are ⊆ rmask bits for reached nodes).
        self.cleanup_multi(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::uncertain::UncertainGraph;

    /// Single-word mask literal.
    fn m1(word: u64) -> Mask<1> {
        Mask([word])
    }

    /// 0-1-2-3 path plus isolated node 4.
    fn path_graph() -> UncertainGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lane_mask_bounds() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(3), 0b111);
        assert_eq!(lane_mask(64), !0);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn lane_mask_rejects_overflow() {
        lane_mask(65);
    }

    #[test]
    fn mask_prefix_matches_lane_mask_per_word() {
        assert_eq!(Mask::<1>::prefix(0), m1(0));
        assert_eq!(Mask::<1>::prefix(5), m1(0b11111));
        assert_eq!(Mask::<1>::prefix(64), m1(!0));
        // Tails that straddle word boundaries.
        assert_eq!(Mask::<4>::prefix(64), Mask([!0, 0, 0, 0]));
        assert_eq!(Mask::<4>::prefix(70), Mask([!0, 0b111111, 0, 0]));
        assert_eq!(Mask::<4>::prefix(256), Mask([!0; 4]));
        assert_eq!(Mask::<8>::prefix(511), Mask([!0, !0, !0, !0, !0, !0, !0, !0 >> 1]));
    }

    #[test]
    #[should_panic(expected = "at most 256")]
    fn mask_prefix_rejects_overflow() {
        Mask::<4>::prefix(257);
    }

    #[test]
    fn mask_ops_cover_all_words() {
        let a = Mask([0b1100, 0, !0, 1]);
        let b = Mask([0b1010, 5, 0, 1]);
        assert_eq!(a & b, Mask([0b1000, 0, 0, 1]));
        assert_eq!(a | b, Mask([0b1110, 5, !0, 1]));
        assert_eq!(a.and_not(b), Mask([0b0100, 0, !0, 0]));
        assert_eq!(a.and_not(b), a & !b);
        assert_eq!(a.count_ones(), 2 + 64 + 1);
        assert!(a.any());
        assert!(!Mask::<4>::ZERO.any());
        assert!(Mask::<4>::ZERO.is_zero());
        assert_eq!(Mask::<4>::ones().count_ones(), 256);
        let mut c = a;
        c |= b;
        assert_eq!(c, a | b);
        c = a;
        c &= b;
        assert_eq!(c, a & b);
    }

    #[test]
    fn mask_lane_addressing_spans_words() {
        let bit = Mask::<4>::bit(130);
        assert_eq!(bit, Mask([0, 0, 1 << 2, 0]));
        assert!(bit.get(130));
        assert!(!bit.get(129));
        let mut lanes = Vec::new();
        (Mask::<4>::bit(3) | Mask::<4>::bit(64) | Mask::<4>::bit(255)).for_each_lane(|l| {
            lanes.push(l);
        });
        assert_eq!(lanes, vec![3, 64, 255]);
        assert_eq!(Mask::<4>::LANES, 256);
        assert_eq!(Mask::<8>::LANES, 512);
        assert_eq!(Mask::from(0b101u64), m1(0b101));
    }

    #[test]
    fn all_worlds_full_edges_reach_everything() {
        let g = path_graph();
        // All three edges present in all 64 worlds.
        let masks = vec![m1(!0); 3];
        let mut bfs = MultiWorldBfs::new(5);
        let mut seen: Vec<(u32, u32, u64)> = Vec::new();
        bfs.run(&g, &masks, NodeId(0), m1(!0), 10, |n, d, m| seen.push((n.0, d, m.0[0])));
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0, !0), (1, 1, !0), (2, 2, !0), (3, 3, !0)]);
    }

    #[test]
    fn per_world_edges_split_reach_masks() {
        let g = path_graph();
        // Edge (0,1) exists only in world 0; edge (1,2) in worlds 0 and 1;
        // edge (2,3) nowhere.
        let masks = vec![m1(0b01), m1(0b11), m1(0b00)];
        let mut bfs = MultiWorldBfs::new(5);
        let mut seen: Vec<(u32, u32, u64)> = Vec::new();
        bfs.run(&g, &masks, NodeId(0), m1(0b11), 10, |n, d, m| seen.push((n.0, d, m.0[0])));
        seen.sort_unstable();
        // World 1 never leaves the source: edge (0,1) is missing there.
        assert_eq!(seen, vec![(0, 0, 0b11), (1, 1, 0b01), (2, 2, 0b01)]);
    }

    #[test]
    fn depth_limit_respected() {
        let g = path_graph();
        let masks = vec![m1(!0); 3];
        let mut bfs = MultiWorldBfs::new(5);
        let mut reached: Vec<u32> = Vec::new();
        bfs.run(&g, &masks, NodeId(0), m1(!0), 2, |n, _, _| reached.push(n.0));
        reached.sort_unstable();
        assert_eq!(reached, vec![0, 1, 2]);
    }

    #[test]
    fn zero_depth_visits_source_only() {
        let g = path_graph();
        let masks = vec![m1(!0); 3];
        let mut bfs = MultiWorldBfs::new(5);
        let mut count = 0;
        bfs.run(&g, &masks, NodeId(1), m1(!0), 0, |_, _, _| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn lane_mask_restricts_worlds() {
        let g = path_graph();
        let masks = vec![m1(!0); 3];
        let mut bfs = MultiWorldBfs::new(5);
        let mut seen: Vec<(u32, u64)> = Vec::new();
        bfs.run(&g, &masks, NodeId(0), m1(0b101), 10, |n, _, m| seen.push((n.0, m.0[0])));
        assert!(seen.iter().all(|&(_, m)| m == 0b101));
    }

    #[test]
    fn unlimited_matches_depth_run_totals() {
        // Cycle where worlds take different routes, so distances differ but
        // connectivity agrees.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.add_edge(3, 0, 0.5).unwrap();
        let g = b.build().unwrap();
        let masks = vec![m1(0b110), m1(0b011), m1(0b101), m1(0b111)];
        let mut bfs = MultiWorldBfs::new(4);
        let mut by_depth = vec![0u64; 4];
        bfs.run(&g, &masks, NodeId(0), m1(0b111), 10, |n, _, m| by_depth[n.index()] |= m.0[0]);
        let mut by_fix = vec![0u64; 4];
        bfs.run_unlimited(&g, &masks, NodeId(0), m1(0b111), |n, m| by_fix[n.index()] = m.0[0]);
        assert_eq!(by_depth, by_fix);
    }

    #[test]
    fn unlimited_visits_each_node_once() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.add_edge(3, 0, 0.5).unwrap();
        let g = b.build().unwrap();
        let masks = vec![m1(0b01), m1(0b10), m1(0b10), m1(0b01)];
        let mut bfs = MultiWorldBfs::new(4);
        let mut visits = vec![0u32; 4];
        bfs.run_unlimited(&g, &masks, NodeId(0), m1(0b11), |n, _| visits[n.index()] += 1);
        assert!(visits.iter().all(|&v| v <= 1), "visits {visits:?}");
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = path_graph();
        let masks = vec![m1(!0); 3];
        let mut bfs = MultiWorldBfs::new(5);
        bfs.run(&g, &masks, NodeId(0), m1(!0), 10, |_, _, _| {});
        assert_eq!(bfs.reach(NodeId(3)), m1(!0));
        // Second run from the isolated node must not see stale reach masks.
        let mut reached: Vec<u32> = Vec::new();
        bfs.run(&g, &masks, NodeId(4), m1(!0), 10, |n, _, _| reached.push(n.0));
        assert_eq!(reached, vec![4]);
        assert_eq!(bfs.reach(NodeId(3)), m1(0));
        // And a mode switch must also start clean.
        let mut reached_fix: Vec<u32> = Vec::new();
        bfs.run_unlimited(&g, &masks, NodeId(2), m1(!0), |n, _| reached_fix.push(n.0));
        reached_fix.sort_unstable();
        assert_eq!(reached_fix, vec![0, 1, 2, 3]);
    }

    #[test]
    fn multi_source_unlimited_matches_per_source_runs() {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (2, 3)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let masks = vec![m1(0b1101), m1(0b0111), m1(0b1010), m1(0b1111), m1(0b0001), m1(0b0110)];
        let sources = [NodeId(0), NodeId(4), NodeId(0), NodeId(5)]; // incl. duplicate
        let mut bfs = MultiWorldBfs::new(6);
        let mut multi = vec![0u64; 6 * sources.len()];
        bfs.run_unlimited_multi(&g, &masks, &sources, m1(0b1111), |n, j, m| {
            multi[j * 6 + n.index()] = m.0[0];
        });
        for (j, &s) in sources.iter().enumerate() {
            let mut single = [0u64; 6];
            bfs.run_unlimited(&g, &masks, s, m1(0b1111), |n, m| single[n.index()] = m.0[0]);
            assert_eq!(&multi[j * 6..(j + 1) * 6], &single[..], "source {j} ({s}) differs");
        }
    }

    #[test]
    fn multi_source_depth_matches_per_source_runs() {
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 3), (2, 5)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let m = g.num_edges();
        let mut masks = vec![m1(0); m];
        for (e, mask) in masks.iter_mut().enumerate() {
            for l in 0..8 {
                if (e * 13 + l * 29 + 3) % 3 != 0 {
                    mask.0[0] |= 1 << l;
                }
            }
        }
        let sources = [NodeId(0), NodeId(6), NodeId(3)];
        let mut bfs = MultiWorldBfs::new(7);
        for depth in [0u32, 1, 2, 5, 10] {
            // Accumulate per (source, node, depth) masks.
            let mut multi = vec![0u64; sources.len() * 7 * 11];
            bfs.run_multi(&g, &masks, &sources, Mask::prefix(8), depth, |n, d, j, mk| {
                multi[(j * 7 + n.index()) * 11 + d as usize] |= mk.0[0];
            });
            for (j, &s) in sources.iter().enumerate() {
                let mut single = vec![0u64; 7 * 11];
                bfs.run(&g, &masks, s, Mask::prefix(8), depth, |n, d, mk| {
                    single[n.index() * 11 + d as usize] |= mk.0[0];
                });
                assert_eq!(
                    &multi[j * 7 * 11..(j + 1) * 7 * 11],
                    &single[..],
                    "source {j} depth limit {depth} differs"
                );
            }
        }
    }

    #[test]
    fn multi_source_runs_leave_workspace_clean() {
        let g = path_graph();
        let masks = vec![m1(!0); 3];
        let mut bfs = MultiWorldBfs::new(5);
        // Multi run dirties stride-k state...
        bfs.run_unlimited_multi(&g, &masks, &[NodeId(0), NodeId(1)], m1(!0), |_, _, _| {});
        // ...a following multi run with a different k starts clean...
        let mut seen = [0u64; 5 * 3];
        bfs.run_unlimited_multi(
            &g,
            &masks,
            &[NodeId(4), NodeId(4), NodeId(2)],
            m1(!0),
            |n, j, m| {
                seen[j * 5 + n.index()] = m.0[0];
            },
        );
        assert_eq!(seen[5], 0, "isolated source must not reach node 0");
        assert_eq!(seen[4], !0, "source 0 is node 4");
        assert_eq!(seen[2 * 5], !0, "source 2 reaches node 0");
        // ...and so does a single-source run afterwards.
        let mut reached: Vec<u32> = Vec::new();
        bfs.run(&g, &masks, NodeId(4), m1(!0), 10, |n, _, _| reached.push(n.0));
        assert_eq!(reached, vec![4]);
    }

    #[test]
    #[should_panic(expected = "1..=64 sources")]
    fn multi_source_rejects_empty_sources() {
        let g = path_graph();
        let masks = vec![m1(!0); 3];
        let mut bfs = MultiWorldBfs::new(5);
        bfs.run_unlimited_multi(&g, &masks, &[], m1(!0), |_, _, _| {});
    }

    #[test]
    fn label_components_partitions_every_lane() {
        // Deterministic pseudo-random 8-lane block over a denser graph;
        // check per-lane labels against a per-world scalar labeling.
        use crate::bitset::Bitset;
        use crate::view::WorldView;
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 3), (2, 5)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let m = g.num_edges();
        let lanes = 8;
        let mut masks = vec![m1(0); m];
        for (e, mask) in masks.iter_mut().enumerate() {
            for l in 0..lanes {
                if (e * 23 + l * 41 + 5) % 3 != 0 {
                    mask.0[0] |= 1 << l;
                }
            }
        }
        let mut bfs = MultiWorldBfs::new(7);
        let mut labels = vec![u32::MAX; 7 * LANES];
        let counts = bfs.label_components(&g, &masks, Mask::prefix(lanes), |v, mk, next| {
            mk.for_each_lane(|l| {
                assert_eq!(labels[v.index() * LANES + l], u32::MAX, "node relabeled");
                labels[v.index() * LANES + l] = next[l];
            });
        });
        for l in 0..lanes {
            let mut world = Bitset::with_len(m);
            for (e, mask) in masks.iter().enumerate() {
                if mask.get(l) {
                    world.insert(e);
                }
            }
            let view = WorldView::new(&g, &world);
            let (want, want_count) = crate::connected_components(&view);
            assert_eq!(counts[l] as usize, want_count, "lane {l} component count");
            // Same partition: labels agree on every node pair.
            for u in 0..7 {
                assert!(labels[u * LANES + l] < counts[l], "lane {l} node {u} unlabeled");
                for v in 0..7 {
                    assert_eq!(
                        labels[u * LANES + l] == labels[v * LANES + l],
                        want[u] == want[v],
                        "lane {l} pair ({u}, {v}) partition disagrees"
                    );
                }
            }
        }
        // Lanes outside the mask are untouched.
        assert!(counts[lanes..].iter().all(|&c| c == 0));
    }

    #[test]
    fn label_components_zero_mask_is_noop() {
        let g = path_graph();
        let masks = vec![m1(!0); 3];
        let mut bfs = MultiWorldBfs::new(5);
        let counts = bfs.label_components(&g, &masks, m1(0), |_, _, _| panic!("no assignments"));
        assert_eq!(counts, vec![0u32; LANES]);
    }

    #[test]
    fn mask_bfs_agrees_with_per_world_bfs() {
        // A denser random-ish fixed graph; compare against per-world
        // DepthBfs through WorldViews for all depths.
        use crate::bitset::Bitset;
        use crate::traversal::DepthBfs;
        use crate::view::WorldView;
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 3), (2, 5), (1, 6)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let m = g.num_edges();
        // 8 worlds with deterministic pseudo-random edge membership.
        let lanes = 8;
        let mut masks = vec![m1(0); m];
        for (e, mask) in masks.iter_mut().enumerate() {
            for l in 0..lanes {
                if (e * 31 + l * 17 + 7) % 3 != 0 {
                    mask.0[0] |= 1 << l;
                }
            }
        }
        let mut mw = MultiWorldBfs::new(7);
        let mut scalar = DepthBfs::new(7);
        for depth in [0u32, 1, 2, 3, 10] {
            for source in 0..7u32 {
                let mut counts = vec![0u32; 7];
                mw.run(&g, &masks, NodeId(source), Mask::prefix(lanes), depth, |n, _, mk| {
                    counts[n.index()] += mk.count_ones();
                });
                let mut want = vec![0u32; 7];
                for l in 0..lanes {
                    let mut world = Bitset::with_len(m);
                    for (e, mask) in masks.iter().enumerate() {
                        if mask.get(l) {
                            world.insert(e);
                        }
                    }
                    let view = WorldView::new(&g, &world);
                    scalar.run(&view, NodeId(source), depth, |n, _| want[n.index()] += 1);
                }
                assert_eq!(counts, want, "source {source} depth {depth}");
            }
        }
    }

    /// Deterministic pseudo-random masks for a width-4 block with `lanes`
    /// active lanes, plus the same worlds split into four width-1 blocks
    /// (word `w` of the wide mask = the narrow block `w`).
    fn wide_and_narrow_masks(m: usize, lanes: usize) -> (Vec<Mask<4>>, [Vec<Mask<1>>; 4]) {
        let mut wide = vec![Mask::<4>::ZERO; m];
        let mut narrow = [vec![m1(0); m], vec![m1(0); m], vec![m1(0); m], vec![m1(0); m]];
        for (e, mask) in wide.iter_mut().enumerate() {
            for l in 0..lanes {
                if (e * 37 + l * 11 + 1) % 3 != 0 {
                    mask.0[l / LANES] |= 1 << (l % LANES);
                    narrow[l / LANES][e].0[0] |= 1 << (l % LANES);
                }
            }
        }
        (wide, narrow)
    }

    #[test]
    fn wide_runs_match_per_word_narrow_runs() {
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 3), (2, 5), (1, 6)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let m = g.num_edges();
        // 200 lanes: words 0–2 full, word 3 a partial tail.
        let lanes = 200;
        let (wide_masks, narrow_masks) = wide_and_narrow_masks(m, lanes);
        let wide_lanes = Mask::<4>::prefix(lanes);
        let mut wide = MultiWorldBfs::<4>::new(7);
        let mut narrow = MultiWorldBfs::<1>::new(7);
        for depth in [0u32, 2, 10] {
            for source in 0..7u32 {
                let mut wide_counts = vec![0u32; 7];
                wide.run(&g, &wide_masks, NodeId(source), wide_lanes, depth, |n, _, mk| {
                    wide_counts[n.index()] += mk.count_ones();
                });
                let mut narrow_counts = vec![0u32; 7];
                for (w, masks) in narrow_masks.iter().enumerate() {
                    let word_lanes = m1(wide_lanes.0[w]);
                    narrow.run(&g, masks, NodeId(source), word_lanes, depth, |n, _, mk| {
                        narrow_counts[n.index()] += mk.count_ones();
                    });
                }
                assert_eq!(wide_counts, narrow_counts, "source {source} depth {depth}");
            }
        }
        // Connectivity fixpoint agrees word-for-word, not just in counts.
        let mut wide_reach = vec![Mask::<4>::ZERO; 7];
        wide.run_unlimited(&g, &wide_masks, NodeId(0), wide_lanes, |n, mk| {
            wide_reach[n.index()] = mk;
        });
        for (w, masks) in narrow_masks.iter().enumerate() {
            let mut narrow_reach = [0u64; 7];
            narrow.run_unlimited(&g, masks, NodeId(0), m1(wide_lanes.0[w]), |n, mk| {
                narrow_reach[n.index()] = mk.0[0];
            });
            for u in 0..7 {
                assert_eq!(wide_reach[u].0[w], narrow_reach[u], "word {w} node {u}");
            }
        }
    }

    #[test]
    fn wide_label_components_match_per_word_narrow_labels() {
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 3), (2, 5)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let m = g.num_edges();
        let lanes = 130; // partial tail in word 2
        let (wide_masks, narrow_masks) = wide_and_narrow_masks(m, lanes);
        let mut wide = MultiWorldBfs::<4>::new(7);
        let mut narrow = MultiWorldBfs::<1>::new(7);
        let mut wide_labels = vec![u32::MAX; 7 * Mask::<4>::LANES];
        let wide_counts =
            wide.label_components(&g, &wide_masks, Mask::prefix(lanes), |v, mk, next| {
                mk.for_each_lane(|l| wide_labels[v.index() * Mask::<4>::LANES + l] = next[l]);
            });
        for (w, masks) in narrow_masks.iter().enumerate() {
            let word_lanes = m1(Mask::<4>::prefix(lanes).0[w]);
            let mut narrow_labels = vec![u32::MAX; 7 * LANES];
            let narrow_counts = narrow.label_components(&g, masks, word_lanes, |v, mk, next| {
                mk.for_each_lane(|l| narrow_labels[v.index() * LANES + l] = next[l]);
            });
            for l in 0..LANES {
                assert_eq!(wide_counts[w * LANES + l], narrow_counts[l], "word {w} lane {l}");
                for u in 0..7 {
                    assert_eq!(
                        wide_labels[u * Mask::<4>::LANES + w * LANES + l],
                        narrow_labels[u * LANES + l],
                        "word {w} lane {l} node {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_component_counts_match_independent_runs() {
        let mut b = GraphBuilder::new(8);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (2, 4), (0, 7)] {
            b.add_edge(u, v, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let m = g.num_edges();
        let lanes = 10;
        let mut masks = vec![m1(0); m];
        for (e, mask) in masks.iter_mut().enumerate() {
            for l in 0..lanes {
                if (e * 19 + l * 7 + 2) % 3 != 0 {
                    mask.0[0] |= 1 << l;
                }
            }
        }
        // Duplicates and same-component centers exercise the inherit path.
        let centers = [NodeId(0), NodeId(2), NodeId(0), NodeId(5), NodeId(7)];
        let mut bfs = MultiWorldBfs::new(8);
        let mut counts = vec![0u32; centers.len() * 8];
        bfs.shared_component_counts(&g, &masks, &centers, Mask::prefix(lanes), &mut counts);
        for (j, &c) in centers.iter().enumerate() {
            let mut want = [0u32; 8];
            bfs.run_unlimited(&g, &masks, c, Mask::prefix(lanes), |n, mk| {
                want[n.index()] += mk.count_ones();
            });
            assert_eq!(&counts[j * 8..(j + 1) * 8], &want[..], "center {j} ({c}) differs");
        }
        // The sweep accumulates: a second pass doubles every entry.
        let before = counts.clone();
        bfs.shared_component_counts(&g, &masks, &centers, Mask::prefix(lanes), &mut counts);
        for (a, b) in counts.iter().zip(before.iter()) {
            assert_eq!(*a, b * 2);
        }
    }
}
