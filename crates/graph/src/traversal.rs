//! Graph traversals over deterministic views.
//!
//! All traversals are generic over [`Adjacency`], so the same code runs on
//! the full topology ([`crate::UncertainGraph`]) and on a single possible
//! world ([`crate::WorldView`]). The depth-limited BFS is the workhorse of
//! d-connection-probability estimation (paper §3.4), where it runs once per
//! Monte-Carlo sample — hence the reusable, epoch-stamped buffers.

use std::collections::VecDeque;

use crate::ids::{EdgeId, NodeId};

/// Minimal adjacency abstraction: node count plus neighbor enumeration.
///
/// Uses an internal-iteration (callback) style rather than returning an
/// iterator so implementations that filter edges (world views) stay
/// allocation-free and monomorphize well.
pub trait Adjacency {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Calls `f(neighbor, edge)` for each edge incident to `u`.
    fn for_each_neighbor(&self, u: NodeId, f: impl FnMut(NodeId, EdgeId));
}

/// Unreachable marker in distance vectors.
pub const UNREACHABLE: u32 = u32::MAX;

/// Full BFS from `source`; returns hop distances (`UNREACHABLE` where not
/// reachable).
pub fn bfs_distances(g: &impl Adjacency, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        g.for_each_neighbor(u, |v, _| {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        });
    }
    dist
}

/// Connected components of a deterministic view; returns `(labels, count)`
/// with labels canonical in order of first appearance (node 0's component is
/// labeled 0, and so on).
pub fn connected_components(g: &impl Adjacency) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    const UNSET: u32 = u32::MAX;
    let mut labels = vec![UNSET; n];
    let mut count = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for start in 0..n as u32 {
        if labels[start as usize] != UNSET {
            continue;
        }
        labels[start as usize] = count;
        stack.push(NodeId(start));
        while let Some(u) = stack.pop() {
            g.for_each_neighbor(u, |v, _| {
                if labels[v.index()] == UNSET {
                    labels[v.index()] = count;
                    stack.push(v);
                }
            });
        }
        count += 1;
    }
    (labels, count as usize)
}

/// Reusable depth-limited BFS with O(1) amortized reset.
///
/// The `visited` buffer stores the epoch at which each node was last seen;
/// bumping the epoch invalidates the whole buffer without touching memory.
/// One `DepthBfs` is typically reused across all Monte-Carlo samples of a
/// depth-limited probability estimation.
#[derive(Clone, Debug)]
pub struct DepthBfs {
    visited: Vec<u32>,
    epoch: u32,
    queue: VecDeque<(NodeId, u32)>,
}

impl DepthBfs {
    /// Creates a BFS workspace for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        DepthBfs { visited: vec![0; n], epoch: 0, queue: VecDeque::new() }
    }

    /// Runs a BFS from `source` visiting nodes within `depth_limit` hops,
    /// calling `visit(node, depth)` for every reached node **including the
    /// source** (at depth 0). Each node is visited once, at its hop distance.
    ///
    /// # Panics
    /// Panics if the view has more nodes than the workspace.
    pub fn run(
        &mut self,
        g: &impl Adjacency,
        source: NodeId,
        depth_limit: u32,
        mut visit: impl FnMut(NodeId, u32),
    ) {
        assert!(
            g.num_nodes() <= self.visited.len(),
            "DepthBfs workspace sized for {} nodes, graph has {}",
            self.visited.len(),
            g.num_nodes()
        );
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrap: clear and restart. Happens once per 2^32 runs.
                self.visited.fill(0);
                1
            }
        };
        self.queue.clear();
        self.visited[source.index()] = self.epoch;
        self.queue.push_back((source, 0));
        visit(source, 0);
        while let Some((u, d)) = self.queue.pop_front() {
            if d == depth_limit {
                continue;
            }
            let epoch = self.epoch;
            // Split borrows: the closure below only touches `visited`.
            let visited = &mut self.visited;
            let queue = &mut self.queue;
            g.for_each_neighbor(u, |v, _| {
                if visited[v.index()] != epoch {
                    visited[v.index()] = epoch;
                    queue.push_back((v, d + 1));
                    visit(v, d + 1);
                }
            });
        }
    }

    /// Number of nodes within `depth_limit` hops of `source` (including it).
    pub fn count_within(&mut self, g: &impl Adjacency, source: NodeId, depth_limit: u32) -> usize {
        let mut count = 0usize;
        self.run(g, source, depth_limit, |_, _| count += 1);
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::uncertain::UncertainGraph;

    /// 0-1-2-3 path plus isolated node 4.
    fn path_graph() -> UncertainGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph();
        let dist = bfs_distances(&g, NodeId(0));
        assert_eq!(dist, vec![0, 1, 2, 3, UNREACHABLE]);
    }

    #[test]
    fn bfs_from_middle() {
        let g = path_graph();
        let dist = bfs_distances(&g, NodeId(2));
        assert_eq!(dist, vec![2, 1, 0, 1, UNREACHABLE]);
    }

    #[test]
    fn components_of_path_plus_isolated() {
        let g = path_graph();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels, vec![0, 0, 0, 0, 1]);
    }

    #[test]
    fn components_all_isolated() {
        let g = GraphBuilder::new(3).build().unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn depth_bfs_respects_limit() {
        let g = path_graph();
        let mut bfs = DepthBfs::new(g.num_nodes());
        let mut seen: Vec<(u32, u32)> = Vec::new();
        bfs.run(&g, NodeId(0), 2, |n, d| seen.push((n.0, d)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn depth_bfs_zero_depth_visits_source_only() {
        let g = path_graph();
        let mut bfs = DepthBfs::new(g.num_nodes());
        assert_eq!(bfs.count_within(&g, NodeId(1), 0), 1);
    }

    #[test]
    fn depth_bfs_reuse_is_clean() {
        let g = path_graph();
        let mut bfs = DepthBfs::new(g.num_nodes());
        assert_eq!(bfs.count_within(&g, NodeId(0), 3), 4);
        // Second run must not see stale visited marks.
        assert_eq!(bfs.count_within(&g, NodeId(3), 1), 2);
        assert_eq!(bfs.count_within(&g, NodeId(4), 5), 1);
    }

    #[test]
    fn depth_bfs_large_limit_equals_component() {
        let g = path_graph();
        let mut bfs = DepthBfs::new(g.num_nodes());
        assert_eq!(bfs.count_within(&g, NodeId(0), u32::MAX - 1), 4);
    }

    #[test]
    fn depth_bfs_visits_each_node_once_on_cycle() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.add_edge(3, 0, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut bfs = DepthBfs::new(4);
        let mut visits = vec![0u32; 4];
        bfs.run(&g, NodeId(0), 10, |n, _| visits[n.index()] += 1);
        assert_eq!(visits, vec![1, 1, 1, 1]);
    }
}
