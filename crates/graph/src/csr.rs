//! Compressed sparse row adjacency for undirected graphs.
//!
//! Each undirected edge appears **once** in the edge table (with its
//! canonical `u < v` endpoints held by [`crate::UncertainGraph`]) and
//! **twice** in the adjacency arrays, once per direction. Adjacency entries
//! carry the [`EdgeId`] so that traversals over a possible world can test
//! edge presence against a bitset in O(1).

use crate::ids::{EdgeId, NodeId};

/// CSR adjacency structure.
#[derive(Clone, Debug)]
pub struct Csr {
    /// `offsets[u]..offsets[u+1]` indexes `u`'s adjacency slice. Length `n + 1`.
    offsets: Vec<u32>,
    /// Neighbor endpoint per adjacency slot. Length `2m`.
    targets: Vec<NodeId>,
    /// Undirected edge id per adjacency slot. Length `2m`.
    edge_ids: Vec<EdgeId>,
}

impl Csr {
    /// Builds a CSR from the canonical edge list `edges[(u, v)]` (one entry
    /// per undirected edge). Endpoints must be `< n`; this is enforced by the
    /// [`GraphBuilder`](crate::GraphBuilder) upstream and only debug-checked
    /// here.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let m = edges.len();
        let mut degree = vec![0u32; n];
        for &(u, v) in edges {
            debug_assert!(u.index() < n && v.index() < n);
            debug_assert_ne!(u, v);
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        debug_assert_eq!(acc as usize, 2 * m);

        let mut targets = vec![NodeId(0); 2 * m];
        let mut edge_ids = vec![EdgeId(0); 2 * m];
        // `cursor` tracks the next free slot per node.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (i, &(u, v)) in edges.iter().enumerate() {
            let e = EdgeId::from_index(i);
            let cu = cursor[u.index()] as usize;
            targets[cu] = v;
            edge_ids[cu] = e;
            cursor[u.index()] += 1;
            let cv = cursor[v.index()] as usize;
            targets[cv] = u;
            edge_ids[cv] = e;
            cursor[v.index()] += 1;
        }
        Csr { offsets, targets, edge_ids }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `u` (number of incident undirected edges).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u.index() + 1] - self.offsets[u.index()]) as usize
    }

    /// The neighbors of `u` with the connecting edge ids.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        self.targets[lo..hi].iter().copied().zip(self.edge_ids[lo..hi].iter().copied())
    }

    /// Neighbor slice of `u` (targets only).
    #[inline]
    pub fn neighbor_slice(&self, u: NodeId) -> &[NodeId] {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Edge-id slice of `u`, parallel to [`Csr::neighbor_slice`].
    #[inline]
    pub fn edge_id_slice(&self, u: NodeId) -> &[EdgeId] {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        &self.edge_ids[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Csr {
        // 0-1, 1-2, 0-2, 2-3
        let edges = vec![
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(2)),
            (NodeId(0), NodeId(2)),
            (NodeId(2), NodeId(3)),
        ];
        Csr::from_edges(4, &edges)
    }

    #[test]
    fn sizes() {
        let csr = triangle_plus_pendant();
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_edges(), 4);
    }

    #[test]
    fn degrees() {
        let csr = triangle_plus_pendant();
        assert_eq!(csr.degree(NodeId(0)), 2);
        assert_eq!(csr.degree(NodeId(1)), 2);
        assert_eq!(csr.degree(NodeId(2)), 3);
        assert_eq!(csr.degree(NodeId(3)), 1);
    }

    #[test]
    fn neighbors_carry_edge_ids() {
        let csr = triangle_plus_pendant();
        let mut nbrs: Vec<(u32, u32)> = csr.neighbors(NodeId(2)).map(|(n, e)| (n.0, e.0)).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![(0, 2), (1, 1), (3, 3)]);
    }

    #[test]
    fn both_directions_present() {
        let csr = triangle_plus_pendant();
        assert!(csr.neighbors(NodeId(3)).any(|(n, _)| n == NodeId(2)));
        assert!(csr.neighbors(NodeId(2)).any(|(n, _)| n == NodeId(3)));
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let csr = Csr::from_edges(5, &[(NodeId(0), NodeId(1))]);
        assert_eq!(csr.degree(NodeId(4)), 0);
        assert_eq!(csr.neighbors(NodeId(4)).count(), 0);
        assert_eq!(csr.num_edges(), 1);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_edges(), 0);
    }

    #[test]
    fn neighbor_and_edge_slices_are_parallel() {
        let csr = triangle_plus_pendant();
        let ns = csr.neighbor_slice(NodeId(0));
        let es = csr.edge_id_slice(NodeId(0));
        assert_eq!(ns.len(), es.len());
        let via_iter: Vec<_> = csr.neighbors(NodeId(0)).collect();
        let via_slices: Vec<_> = ns.iter().copied().zip(es.iter().copied()).collect();
        assert_eq!(via_iter, via_slices);
    }
}
