//! Summary statistics of uncertain graphs (Table 1 of the paper reports the
//! node/edge counts of each dataset's largest connected component; the
//! probability histogram backs the dataset-generator calibration).

use crate::uncertain::UncertainGraph;

/// Structural and probabilistic summary of an uncertain graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree (`2m/n`), 0 for empty graphs.
    pub avg_degree: f64,
    /// Minimum edge probability (1.0 for edgeless graphs).
    pub min_prob: f64,
    /// Maximum edge probability (0.0 for edgeless graphs).
    pub max_prob: f64,
    /// Mean edge probability (0.0 for edgeless graphs).
    pub mean_prob: f64,
    /// Fraction of edges with `p > 0.9`.
    pub frac_high_prob: f64,
    /// Fraction of edges with `p < 0.4`.
    pub frac_low_prob: f64,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &UncertainGraph) -> Self {
        let n = g.num_nodes();
        let m = g.num_edges();
        let (mut min_deg, mut max_deg) = (usize::MAX, 0usize);
        for u in g.nodes() {
            let d = g.degree(u);
            min_deg = min_deg.min(d);
            max_deg = max_deg.max(d);
        }
        if n == 0 {
            min_deg = 0;
        }
        let mut min_p = 1.0f64;
        let mut max_p = 0.0f64;
        let mut sum_p = 0.0f64;
        let mut high = 0usize;
        let mut low = 0usize;
        for &p in g.probs() {
            min_p = min_p.min(p);
            max_p = max_p.max(p);
            sum_p += p;
            if p > 0.9 {
                high += 1;
            }
            if p < 0.4 {
                low += 1;
            }
        }
        GraphStats {
            num_nodes: n,
            num_edges: m,
            min_degree: min_deg,
            max_degree: max_deg,
            avg_degree: if n == 0 { 0.0 } else { 2.0 * m as f64 / n as f64 },
            min_prob: min_p,
            max_prob: max_p,
            mean_prob: if m == 0 { 0.0 } else { sum_p / m as f64 },
            frac_high_prob: if m == 0 { 0.0 } else { high as f64 / m as f64 },
            frac_low_prob: if m == 0 { 0.0 } else { low as f64 / m as f64 },
        }
    }

    /// Histogram of edge probabilities with `bins` equal-width buckets over
    /// `(0, 1]`. An edge with `p = 1` lands in the last bucket.
    pub fn prob_histogram(g: &UncertainGraph, bins: usize) -> Vec<usize> {
        assert!(bins > 0, "need at least one bin");
        let mut hist = vec![0usize; bins];
        for &p in g.probs() {
            let idx = ((p * bins as f64).ceil() as usize).clamp(1, bins) - 1;
            hist[idx] += 1;
        }
        hist
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} deg[{},{}] avg_deg={:.2} p[{:.3},{:.3}] mean_p={:.3}",
            self.num_nodes,
            self.num_edges,
            self.min_degree,
            self.max_degree,
            self.avg_degree,
            self.min_prob,
            self.max_prob,
            self.mean_prob
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> UncertainGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.95).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_stats() {
        let s = GraphStats::compute(&sample());
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 1.5).abs() < 1e-12);
        assert_eq!(s.min_prob, 0.2);
        assert_eq!(s.max_prob, 0.95);
        assert!((s.mean_prob - (0.95 + 0.5 + 0.2) / 3.0).abs() < 1e-12);
        assert!((s.frac_high_prob - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.frac_low_prob - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new(0).build().unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let hist = GraphStats::prob_histogram(&sample(), 10);
        assert_eq!(hist.iter().sum::<usize>(), 3);
        assert_eq!(hist[1], 1); // 0.2 -> bucket (0.1, 0.2]
        assert_eq!(hist[4], 1); // 0.5 -> bucket (0.4, 0.5]
        assert_eq!(hist[9], 1); // 0.95 -> bucket (0.9, 1.0]
    }

    #[test]
    fn histogram_p_one_in_last_bucket() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let hist = GraphStats::prob_histogram(&g, 4);
        assert_eq!(hist, vec![0, 0, 0, 1]);
    }

    #[test]
    fn display_is_compact() {
        let s = GraphStats::compute(&sample());
        let line = s.to_string();
        assert!(line.contains("n=4") && line.contains("m=3"));
    }
}
