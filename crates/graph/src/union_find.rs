//! Disjoint-set (union-find) with union by rank and path halving.
//!
//! This is the inner loop of Monte-Carlo reliability estimation: every
//! sampled possible world is reduced to connected-component labels with one
//! union-find pass over its edges (`O(m α(n))`), so the structure is
//! designed for reuse — [`UnionFind::reset`] restores the singleton state
//! without reallocating.

/// Disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind supports at most u32::MAX elements");
        UnionFind { parent: (0..n as u32).collect(), rank: vec![0; n], num_sets: n }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the structure has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Finds the representative of `x`, halving the path on the way.
    #[inline]
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// distinct.
    #[inline]
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (ra, rb) =
            if self.rank[ra as usize] < self.rank[rb as usize] { (rb, ra) } else { (ra, rb) };
        self.parent[rb as usize] = ra;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[ra as usize] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    #[inline]
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Restores the all-singletons state without reallocating.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        self.rank.fill(0);
        self.num_sets = self.parent.len();
    }

    /// Writes canonical component labels into `labels` and returns the
    /// number of components.
    ///
    /// Labels are dense in `0..count` and assigned in order of first
    /// appearance, so two `UnionFind`s describing the same partition produce
    /// identical label vectors.
    ///
    /// # Panics
    /// Panics if `labels.len() != self.len()`.
    pub fn component_labels_into(&mut self, labels: &mut [u32]) -> usize {
        assert_eq!(labels.len(), self.len(), "labels buffer has wrong length");
        // Reuse `labels` to remember root -> canonical id, using a sentinel.
        const UNSET: u32 = u32::MAX;
        labels.fill(UNSET);
        let mut next = 0u32;
        // First pass cannot fuse with the mapping because roots are discovered
        // lazily; do it in one pass with the sentinel trick instead: a root's
        // slot holds its canonical id once visited.
        let n = self.len();
        let mut canon = vec![UNSET; n];
        for x in 0..n as u32 {
            let r = self.find(x) as usize;
            if canon[r] == UNSET {
                canon[r] = next;
                next += 1;
            }
            labels[x as usize] = canon[r];
        }
        next as usize
    }

    /// Convenience wrapper allocating the label vector.
    pub fn component_labels(&mut self) -> (Vec<u32>, usize) {
        let mut labels = vec![0; self.len()];
        let count = self.component_labels_into(&mut labels);
        (labels, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.find(3), 3);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "repeated union reports false");
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 1));
        assert!(uf.connected(3, 2));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn reset_restores_singletons() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.num_sets(), 1);
        uf.reset();
        assert_eq!(uf.num_sets(), 3);
        assert!(!uf.connected(0, 2));
    }

    #[test]
    fn canonical_labels_in_first_appearance_order() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 5);
        uf.union(1, 2);
        let (labels, count) = uf.component_labels();
        // Components by first appearance: {0}, {1,2}, {3}, {4,5}.
        assert_eq!(count, 4);
        assert_eq!(labels, vec![0, 1, 1, 2, 3, 3]);
    }

    #[test]
    fn labels_into_reuses_buffer() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 3);
        let mut buf = vec![9; 4];
        let count = uf.component_labels_into(&mut buf);
        assert_eq!(count, 3);
        assert_eq!(buf, vec![0, 1, 2, 0]);
    }

    #[test]
    fn long_chain_path_halving() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..(n as u32 - 1) {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.connected(0, n as u32 - 1));
    }

    #[test]
    fn empty_union_find() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
        let (labels, count) = uf.component_labels();
        assert!(labels.is_empty());
        assert_eq!(count, 0);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn labels_into_wrong_length_panics() {
        let mut uf = UnionFind::new(3);
        let mut buf = vec![0; 2];
        uf.component_labels_into(&mut buf);
    }
}
