//! Deterministic views of possible worlds.

use crate::bitset::Bitset;
use crate::ids::{EdgeId, NodeId};
use crate::traversal::Adjacency;
use crate::uncertain::UncertainGraph;

/// A zero-copy deterministic view of one possible world of an uncertain
/// graph: the subgraph containing exactly the edges whose bit is set in
/// `present`.
///
/// Implements [`Adjacency`], so every traversal in this crate runs on a
/// world view unchanged.
#[derive(Clone, Copy)]
pub struct WorldView<'a> {
    graph: &'a UncertainGraph,
    present: &'a Bitset,
}

impl<'a> WorldView<'a> {
    /// Creates a view of `graph` restricted to the edges in `present`.
    ///
    /// # Panics
    /// Panics if the bitset length differs from the edge count.
    pub fn new(graph: &'a UncertainGraph, present: &'a Bitset) -> Self {
        assert_eq!(
            present.len(),
            graph.num_edges(),
            "world bitset has {} bits for a graph with {} edges",
            present.len(),
            graph.num_edges()
        );
        WorldView { graph, present }
    }

    /// The underlying uncertain graph.
    #[inline]
    pub fn graph(&self) -> &'a UncertainGraph {
        self.graph
    }

    /// Whether edge `e` exists in this world.
    #[inline]
    pub fn has_edge(&self, e: EdgeId) -> bool {
        self.present.get(e.index())
    }

    /// Number of edges present in this world.
    pub fn num_present_edges(&self) -> usize {
        self.present.count_ones()
    }
}

impl Adjacency for WorldView<'_> {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut f: impl FnMut(NodeId, EdgeId)) {
        let ns = self.graph.csr().neighbor_slice(u);
        let es = self.graph.csr().edge_id_slice(u);
        for (&v, &e) in ns.iter().zip(es) {
            if self.present.get(e.index()) {
                f(v, e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::traversal::{bfs_distances, connected_components, UNREACHABLE};

    fn triangle() -> UncertainGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_world_sees_all_edges() {
        let g = triangle();
        let mut present = Bitset::with_len(3);
        present.fill();
        let w = WorldView::new(&g, &present);
        assert_eq!(w.num_present_edges(), 3);
        let (_, count) = connected_components(&w);
        assert_eq!(count, 1);
    }

    #[test]
    fn empty_world_is_all_isolated() {
        let g = triangle();
        let present = Bitset::with_len(3);
        let w = WorldView::new(&g, &present);
        assert_eq!(w.num_present_edges(), 0);
        let (_, count) = connected_components(&w);
        assert_eq!(count, 3);
        let dist = bfs_distances(&w, NodeId(0));
        assert_eq!(dist, vec![0, UNREACHABLE, UNREACHABLE]);
    }

    #[test]
    fn partial_world_filters_adjacency() {
        let g = triangle();
        // Keep only edge (0,1): edges are sorted canonically so (0,1) is e0.
        let mut present = Bitset::with_len(3);
        present.insert(0);
        let w = WorldView::new(&g, &present);
        assert!(w.has_edge(EdgeId(0)));
        assert!(!w.has_edge(EdgeId(1)));
        let mut nbrs = Vec::new();
        w.for_each_neighbor(NodeId(0), |v, _| nbrs.push(v.0));
        assert_eq!(nbrs, vec![1]);
        let dist = bfs_distances(&w, NodeId(2));
        assert_eq!(dist, vec![UNREACHABLE, UNREACHABLE, 0]);
    }

    #[test]
    #[should_panic(expected = "bits for a graph")]
    fn mismatched_bitset_panics() {
        let g = triangle();
        let present = Bitset::with_len(2);
        let _ = WorldView::new(&g, &present);
    }
}
