//! # ugraph-graph — uncertain-graph substrate
//!
//! Deterministic and uncertain graph data structures underpinning the
//! clustering algorithms of *Clustering Uncertain Graphs* (Ceccarello,
//! Fantozzi, Pietracaprina, Pucci, Vandin — VLDB 2017).
//!
//! An **uncertain graph** `G = (V, E, p : E → (0, 1])` is an undirected
//! graph where each edge `e` exists independently with probability `p(e)`.
//! `G` induces a probability space whose outcomes — *possible worlds* — are
//! the subgraphs of `G` obtained by keeping each edge independently with its
//! probability.
//!
//! This crate provides:
//!
//! * [`UncertainGraph`] — a compact CSR representation with per-edge
//!   probabilities, built through [`GraphBuilder`];
//! * [`WorldView`] — a zero-copy deterministic view of one possible world,
//!   defined by an edge [`Bitset`];
//! * classic machinery used by the algorithms upstream: [`UnionFind`],
//!   BFS/DFS [`traversal`], Dijkstra [`shortest_path`] on `ln(1/p)` weights,
//!   induced-[`subgraph`] extraction, and a plain-text edge-list [`io`]
//!   format.
//!
//! Everything is implemented from scratch on `std` only; the crate has no
//! runtime dependencies.
//!
//! ## Quick example
//!
//! ```
//! use ugraph_graph::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 0.9).unwrap();
//! b.add_edge(1, 2, 0.5).unwrap();
//! b.add_edge(2, 3, 0.1).unwrap();
//! let g = b.build().unwrap();
//!
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.degree(NodeId(1)), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not panics; tests,
// benches, and doctests (separate crates / cfg(test) builds) may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bitset;
pub mod builder;
pub mod csr;
pub mod error;
pub mod ids;
pub mod io;
pub mod multiworld;
pub mod shortest_path;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod uncertain;
pub mod union_find;
pub mod view;

pub use bitset::Bitset;
pub use builder::{DedupPolicy, GraphBuilder};
pub use csr::Csr;
pub use error::GraphError;
pub use ids::{EdgeId, NodeId};
pub use multiworld::{lane_mask, Mask, MultiWorldBfs, LANES, MAX_SOURCES};
pub use shortest_path::{dijkstra, MultiSourceDijkstra};
pub use stats::GraphStats;
pub use subgraph::{induced_subgraph, largest_connected_component, Subgraph};
pub use traversal::{bfs_distances, connected_components, Adjacency, DepthBfs};
pub use uncertain::UncertainGraph;
pub use union_find::UnionFind;
pub use view::WorldView;
