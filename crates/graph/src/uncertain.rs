//! The uncertain graph type.

use crate::csr::Csr;
use crate::ids::{EdgeId, NodeId};
use crate::traversal::Adjacency;

/// An undirected uncertain graph `G = (V, E, p : E → (0, 1])`.
///
/// Construction goes through [`GraphBuilder`](crate::GraphBuilder), which
/// validates probabilities, rejects self-loops, and resolves parallel
/// edges; once built, the graph is immutable. Edge `e` exists in a random
/// possible world with probability `prob(e)`, independently of all other
/// edges (the independence assumption of the paper, §1).
#[derive(Clone, Debug)]
pub struct UncertainGraph {
    csr: Csr,
    /// Canonical endpoints (`u < v`), one entry per undirected edge.
    endpoints: Vec<(NodeId, NodeId)>,
    /// Existence probability per edge, in `(0, 1]`.
    probs: Vec<f64>,
}

impl UncertainGraph {
    /// Assembles a graph from parts. Crate-internal: the public path is
    /// [`GraphBuilder::build`](crate::GraphBuilder::build), which upholds the
    /// invariants (canonical endpoints, valid probabilities, no duplicates).
    pub(crate) fn from_parts(n: usize, endpoints: Vec<(NodeId, NodeId)>, probs: Vec<f64>) -> Self {
        debug_assert_eq!(endpoints.len(), probs.len());
        let csr = Csr::from_edges(n, &endpoints);
        UncertainGraph { csr, endpoints, probs }
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.csr.num_nodes()
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Existence probability of edge `e`.
    #[inline]
    pub fn prob(&self, e: EdgeId) -> f64 {
        self.probs[e.index()]
    }

    /// All edge probabilities, indexed by [`EdgeId`].
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Canonical endpoints `(u, v)` with `u < v` of edge `e`.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// Iterator over `(edge id, u, v, p)` for every undirected edge.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, f64)> + '_ {
        self.endpoints
            .iter()
            .zip(&self.probs)
            .enumerate()
            .map(|(i, (&(u, v), &p))| (EdgeId::from_index(i), u, v, p))
    }

    /// Degree of `u` in the underlying topology (counting all uncertain
    /// edges, regardless of probability).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.csr.degree(u)
    }

    /// Maximum degree Δ of the underlying topology, 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Neighbors of `u` with connecting edge ids.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.csr.neighbors(u)
    }

    /// The CSR adjacency (used by traversal helpers and world views).
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Probability of the *most likely* possible world: `Π_e max(p(e), 1-p(e))`.
    ///
    /// The paper (§4) notes that `p_opt-min(k)` is at least the probability
    /// of the most **unlikely** world, a safe lower bound `p_L`; see
    /// [`UncertainGraph::min_world_prob`].
    pub fn max_world_prob(&self) -> f64 {
        self.probs.iter().map(|&p| p.max(1.0 - p)).product()
    }

    /// Probability of the most unlikely possible world: `Π_e min(p(e), 1-p(e))`.
    ///
    /// Usable as the theoretical lower bound `p_L` in the sampling schedules
    /// of §4, though it underflows to 0 for all but tiny graphs — which is
    /// why a user-set `p_L` (default `1e-4`, as in the paper's experiments)
    /// is preferred in practice.
    pub fn min_world_prob(&self) -> f64 {
        self.probs.iter().map(|&p| p.min(1.0 - p)).product()
    }

    /// Number of *uncertain* edges, i.e. edges with `p(e) < 1`.
    ///
    /// Deterministic edges (`p = 1`) do not contribute to the exponential
    /// blow-up of exact reliability computation; the exact oracle enumerates
    /// `2^uncertain_edge_count` worlds.
    pub fn uncertain_edge_count(&self) -> usize {
        self.probs.iter().filter(|&&p| p < 1.0).count()
    }

    /// Sum of edge probabilities = expected number of edges in a random
    /// possible world.
    pub fn expected_edge_count(&self) -> f64 {
        self.probs.iter().sum()
    }
}

impl Adjacency for UncertainGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.num_nodes()
    }

    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut f: impl FnMut(NodeId, EdgeId)) {
        let ns = self.csr.neighbor_slice(u);
        let es = self.csr.edge_id_slice(u);
        for (&v, &e) in ns.iter().zip(es) {
            f(v, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path3() -> UncertainGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.25).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = path3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.nodes().count(), 3);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn edge_probabilities() {
        let g = path3();
        let probs: Vec<f64> = g.edges().map(|(_, _, _, p)| p).collect();
        assert_eq!(probs, vec![0.5, 0.25]);
        assert!((g.expected_edge_count() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn endpoints_are_canonical() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0, 0.5).unwrap(); // reversed input order
        let g = b.build().unwrap();
        let (u, v) = g.edge_endpoints(EdgeId(0));
        assert!(u < v);
        assert_eq!((u, v), (NodeId(0), NodeId(2)));
    }

    #[test]
    fn world_probabilities() {
        let g = path3();
        // max world: edge probs max(p,1-p) = 0.5 * 0.75
        assert!((g.max_world_prob() - 0.375).abs() < 1e-12);
        // min world: 0.5 * 0.25
        assert!((g.min_world_prob() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn uncertain_edge_count_ignores_certain_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 0.3).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.uncertain_edge_count(), 1);
    }

    #[test]
    fn adjacency_trait_matches_neighbors() {
        let g = path3();
        let mut via_trait = Vec::new();
        Adjacency::for_each_neighbor(&g, NodeId(1), |n, e| via_trait.push((n, e)));
        let via_iter: Vec<_> = g.neighbors(NodeId(1)).collect();
        assert_eq!(via_trait, via_iter);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.max_world_prob(), 1.0);
    }
}
