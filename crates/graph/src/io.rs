//! Plain-text edge-list serialization.
//!
//! The format matches the convention of the paper's published code
//! (`github.com/Cecca/ugraph`): one edge per line as
//!
//! ```text
//! # optional comments
//! u v p
//! ```
//!
//! with whitespace-separated fields, `u`/`v` non-negative node ids and `p`
//! the existence probability. Node count is inferred as `max id + 1` unless
//! a `# nodes: N` header is present (written by [`write_edge_list`] so that
//! trailing isolated nodes survive a round-trip).

use std::io::{BufRead, BufWriter, Write};

use crate::builder::{DedupPolicy, GraphBuilder};
use crate::error::GraphError;
use crate::uncertain::UncertainGraph;

/// Reads an uncertain graph from edge-list text.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<UncertainGraph, GraphError> {
    read_edge_list_with(reader, DedupPolicy::KeepMax)
}

/// Reads an uncertain graph, resolving duplicate edges per `dedup`.
pub fn read_edge_list_with<R: BufRead>(
    reader: R,
    dedup: DedupPolicy,
) -> Result<UncertainGraph, GraphError> {
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    let mut declared_nodes: Option<usize> = None;
    let mut max_node: Option<u32> = None;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            if let Some(rest) = comment.trim().strip_prefix("nodes:") {
                let n: usize = rest.trim().parse().map_err(|_| GraphError::Parse {
                    line: lineno,
                    message: format!("invalid node count '{}'", rest.trim()),
                })?;
                declared_nodes = Some(n);
            }
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (u, v, p) = match (it.next(), it.next(), it.next(), it.next()) {
            (Some(u), Some(v), Some(p), None) => (u, v, p),
            _ => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("expected 'u v p', got '{trimmed}'"),
                })
            }
        };
        let u: u32 = u.parse().map_err(|_| GraphError::Parse {
            line: lineno,
            message: format!("invalid node id '{u}'"),
        })?;
        let v: u32 = v.parse().map_err(|_| GraphError::Parse {
            line: lineno,
            message: format!("invalid node id '{v}'"),
        })?;
        let p: f64 = p.parse().map_err(|_| GraphError::Parse {
            line: lineno,
            message: format!("invalid probability '{p}'"),
        })?;
        max_node = Some(max_node.map_or(u.max(v), |m| m.max(u).max(v)));
        edges.push((u, v, p));
    }

    let inferred = max_node.map_or(0, |m| m as usize + 1);
    let n = declared_nodes.map_or(inferred, |d| d.max(inferred));
    let mut b = GraphBuilder::with_capacity(n, edges.len()).with_dedup(dedup);
    for (u, v, p) in edges {
        b.add_edge(u, v, p)?;
    }
    b.build()
}

/// Writes `g` in edge-list format, including a `# nodes: N` header.
pub fn write_edge_list<W: Write>(g: &UncertainGraph, writer: W) -> Result<(), GraphError> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# nodes: {}", g.num_nodes())?;
    for (_, u, v, p) in g.edges() {
        writeln!(out, "{u} {v} {p}")?;
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn parses_simple_file() {
        let text = "# a comment\n0 1 0.5\n1 2 0.25\n\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.probs(), &[0.5, 0.25]);
    }

    #[test]
    fn nodes_header_preserves_isolated_tail() {
        let text = "# nodes: 5\n0 1 0.5\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.degree(NodeId(4)), 0);
    }

    #[test]
    fn nodes_header_never_truncates() {
        let text = "# nodes: 2\n0 4 0.5\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 5);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["0 1", "0 1 0.5 9", "x 1 0.5", "0 y 0.5", "0 1 zebra"] {
            let err = read_edge_list(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, GraphError::Parse { line: 1, .. }), "input '{bad}' -> {err}");
        }
    }

    #[test]
    fn rejects_invalid_probability_via_builder() {
        let err = read_edge_list("0 1 1.5".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::InvalidProbability { .. }));
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let text = "# nodes: 6\n0 1 0.5\n1 2 0.25\n4 5 0.125\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn duplicate_edges_follow_policy() {
        let text = "0 1 0.3\n0 1 0.6\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.probs()[0], 0.6);

        let err = read_edge_list_with(text.as_bytes(), DedupPolicy::Error).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }));
    }
}
