//! Dijkstra shortest paths over `w(e) = ln(1/p(e))` weights.
//!
//! The GMM baseline of the paper (§5.1) adapts Gonzalez's k-center algorithm
//! to uncertain graphs by the naive transformation of edge probabilities into
//! additive weights `w(e) = ln(1/p(e))`: the shortest-path distance then
//! corresponds to the probability of the single most reliable path — which
//! disregards possible-world semantics, precisely the weakness the paper
//! demonstrates experimentally. We implement it faithfully to serve as that
//! baseline.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::ids::NodeId;
use crate::uncertain::UncertainGraph;

/// A non-NaN `f64` cost, totally ordered for use in the binary heap.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Cost(f64);

impl Eq for Cost {}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> Ordering {
        // Costs are ln(1/p) with p in (0,1], hence in [0, +inf); NaN cannot
        // occur. total_cmp keeps this robust anyway.
        self.0.total_cmp(&other.0)
    }
}

/// Heap entry: (cost, node), min-heap via reversed ordering.
#[derive(PartialEq, Eq)]
struct Entry {
    cost: Cost,
    node: NodeId,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.cost.cmp(&self.cost).then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Edge weight for probability `p`: `ln(1/p)`, i.e. 0 for certain edges.
#[inline]
pub fn prob_weight(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p <= 1.0);
    -p.ln()
}

/// Single-source Dijkstra on `ln(1/p)` weights. Returns per-node distances
/// (`f64::INFINITY` where unreachable).
pub fn dijkstra(g: &UncertainGraph, source: NodeId) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; g.num_nodes()];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Entry { cost: Cost(0.0), node: source });
    run_dijkstra(g, &mut dist, &mut heap);
    dist
}

fn run_dijkstra(g: &UncertainGraph, dist: &mut [f64], heap: &mut BinaryHeap<Entry>) {
    while let Some(Entry { cost, node: u }) = heap.pop() {
        if cost.0 > dist[u.index()] {
            continue; // stale entry
        }
        for (v, e) in g.neighbors(u) {
            let nd = cost.0 + prob_weight(g.prob(e));
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(Entry { cost: Cost(nd), node: v });
            }
        }
    }
}

/// Incremental multi-source Dijkstra maintaining, for every node, the
/// distance to the nearest of the sources added so far.
///
/// This is exactly the access pattern of farthest-first traversal: after
/// each new center is chosen, distances only ever *decrease*, so each added
/// source runs a Dijkstra seeded at the new center against the running
/// distance array.
#[derive(Clone, Debug)]
pub struct MultiSourceDijkstra {
    dist: Vec<f64>,
    /// Index of the nearest source per node (set for reached nodes).
    nearest: Vec<u32>,
}

/// Marker for "no source reaches this node yet".
pub const NO_SOURCE: u32 = u32::MAX;

impl MultiSourceDijkstra {
    /// Creates the structure with no sources: all distances infinite.
    pub fn new(n: usize) -> Self {
        MultiSourceDijkstra { dist: vec![f64::INFINITY; n], nearest: vec![NO_SOURCE; n] }
    }

    /// Current distance-to-nearest-source per node.
    #[inline]
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Index (as passed to [`MultiSourceDijkstra::add_source`]) of the
    /// nearest source per node; `NO_SOURCE` where unreached.
    #[inline]
    pub fn nearest_source(&self) -> &[u32] {
        &self.nearest
    }

    /// Adds a source with caller-chosen index and relaxes distances.
    pub fn add_source(&mut self, g: &UncertainGraph, source: NodeId, source_index: u32) {
        assert_eq!(self.dist.len(), g.num_nodes(), "workspace sized for a different graph");
        if self.dist[source.index()] <= 0.0 {
            return; // already a source (or at distance 0 of one)
        }
        let mut heap = BinaryHeap::new();
        self.dist[source.index()] = 0.0;
        self.nearest[source.index()] = source_index;
        heap.push(Entry { cost: Cost(0.0), node: source });
        while let Some(Entry { cost, node: u }) = heap.pop() {
            if cost.0 > self.dist[u.index()] {
                continue;
            }
            for (v, e) in g.neighbors(u) {
                let nd = cost.0 + prob_weight(g.prob(e));
                if nd < self.dist[v.index()] {
                    self.dist[v.index()] = nd;
                    self.nearest[v.index()] = source_index;
                    heap.push(Entry { cost: Cost(nd), node: v });
                }
            }
        }
    }

    /// The node maximizing distance-to-nearest-source, with its distance.
    /// Unreachable nodes (infinite distance) win over any finite distance.
    /// Returns `None` for an empty graph.
    pub fn farthest(&self) -> Option<(NodeId, f64)> {
        self.dist
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, &d)| (NodeId::from_index(i), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// 0 --0.5-- 1 --0.5-- 2,  0 --0.2-- 2
    fn triangle() -> UncertainGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(0, 2, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn weight_of_certain_edge_is_zero() {
        assert_eq!(prob_weight(1.0), 0.0);
        assert!(prob_weight(0.5) > 0.0);
    }

    #[test]
    fn dijkstra_prefers_reliable_two_hop_path() {
        // Path 0-1-2 has probability 0.25 > direct edge 0.2, so its weight
        // ln(1/0.25) < ln(1/0.2): the two-hop path must win.
        let g = triangle();
        let dist = dijkstra(&g, NodeId(0));
        assert!((dist[2] - (0.25f64.ln().abs())).abs() < 1e-12);
        assert!((dist[1] - 0.5f64.ln().abs()).abs() < 1e-12);
        assert_eq!(dist[0], 0.0);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        let g = b.build().unwrap();
        let dist = dijkstra(&g, NodeId(0));
        assert!(dist[2].is_infinite());
    }

    #[test]
    fn multi_source_tracks_nearest() {
        // Path 0-1-2-3, all p = 0.5 (uniform weights).
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, i + 1, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let mut ms = MultiSourceDijkstra::new(4);
        ms.add_source(&g, NodeId(0), 0);
        let (far, d) = ms.farthest().unwrap();
        assert_eq!(far, NodeId(3));
        assert!((d - 3.0 * 0.5f64.ln().abs()).abs() < 1e-12);

        ms.add_source(&g, NodeId(3), 1);
        // Now nodes 0,1 are nearest to source 0; nodes 2,3 to source 1.
        assert_eq!(&ms.nearest_source()[..2], &[0, 0]);
        assert_eq!(&ms.nearest_source()[2..], &[1, 1]);
        let (_, dmax) = ms.farthest().unwrap();
        assert!((dmax - 0.5f64.ln().abs()).abs() < 1e-12);
    }

    #[test]
    fn multi_source_unreached_has_no_source() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        let mut ms = MultiSourceDijkstra::new(3);
        ms.add_source(&g, NodeId(0), 7);
        assert_eq!(ms.nearest_source()[2], NO_SOURCE);
        let (far, d) = ms.farthest().unwrap();
        assert_eq!(far, NodeId(2));
        assert!(d.is_infinite());
    }

    #[test]
    fn adding_same_source_twice_is_noop() {
        let g = triangle();
        let mut ms = MultiSourceDijkstra::new(3);
        ms.add_source(&g, NodeId(0), 0);
        let before = ms.distances().to_vec();
        ms.add_source(&g, NodeId(0), 1);
        assert_eq!(ms.distances(), &before[..]);
    }

    #[test]
    fn farthest_on_empty_graph_is_none() {
        let ms = MultiSourceDijkstra::new(0);
        assert!(ms.farthest().is_none());
    }
}
