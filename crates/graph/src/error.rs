//! Error types for graph construction and I/O.

use std::fmt;
use std::io;

/// Errors raised while building, transforming, or (de)serializing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge `(u, u)` was added; uncertain graphs here are simple.
    SelfLoop {
        /// The offending node.
        node: u32,
    },
    /// An edge probability outside `(0, 1]` was supplied.
    ///
    /// The paper defines `p : E → (0, 1]`: a zero-probability edge is not an
    /// edge, and probabilities above one are meaningless.
    InvalidProbability {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
        /// The rejected probability value.
        p: f64,
    },
    /// An endpoint referenced a node `>= n`.
    NodeOutOfBounds {
        /// The offending node index.
        node: u32,
        /// Number of nodes declared on the builder.
        num_nodes: usize,
    },
    /// A duplicate of an existing edge was added under
    /// [`DedupPolicy::Error`](crate::DedupPolicy).
    DuplicateEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// Graph exceeds the `u32` index space (more than `u32::MAX` nodes or
    /// edges).
    TooLarge {
        /// Human-readable description of which dimension overflowed.
        what: &'static str,
    },
    /// A malformed line was found while parsing an edge-list file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what was wrong.
        message: String,
    },
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed")
            }
            GraphError::InvalidProbability { u, v, p } => {
                write!(f, "edge ({u}, {v}) has probability {p}, expected a value in (0, 1]")
            }
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(f, "node {node} is out of bounds for a graph with {num_nodes} nodes")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge ({u}, {v})")
            }
            GraphError::TooLarge { what } => {
                write!(f, "graph too large: {what} exceeds the u32 index space")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offenders() {
        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains('3'));

        let e = GraphError::InvalidProbability { u: 1, v: 2, p: 1.5 };
        let s = e.to_string();
        assert!(s.contains("1.5") && s.contains("(0, 1]"));

        let e = GraphError::NodeOutOfBounds { node: 9, num_nodes: 4 };
        assert!(e.to_string().contains('9'));

        let e = GraphError::DuplicateEdge { u: 0, v: 1 };
        assert!(e.to_string().contains("duplicate"));

        let e = GraphError::Parse { line: 12, message: "bad float".into() };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(inner);
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("gone"));
    }
}
