//! Validated construction of [`UncertainGraph`]s.

use std::collections::HashMap;

use crate::error::GraphError;
use crate::ids::NodeId;
use crate::uncertain::UncertainGraph;

/// How [`GraphBuilder::build`] resolves parallel (duplicate) edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DedupPolicy {
    /// Keep the maximum probability among the duplicates (default).
    ///
    /// This matches the common convention for PPI datasets, where repeated
    /// observations of the same interaction are reported with independent
    /// confidences and the most confident one is kept.
    #[default]
    KeepMax,
    /// Combine duplicates as independent evidence:
    /// `p = 1 − Π_i (1 − p_i)` — the probability that at least one of the
    /// parallel edges exists. This is the natural semantics when parallel
    /// edges model independent interaction channels (e.g. the DBLP
    /// construction aggregates multiple co-authored papers this way before
    /// probabilities are assigned).
    NoisyOr,
    /// Treat duplicates as a construction error.
    Error,
}

/// Incremental builder for [`UncertainGraph`].
///
/// ```
/// use ugraph_graph::{GraphBuilder, DedupPolicy};
///
/// let mut b = GraphBuilder::new(3).with_dedup(DedupPolicy::NoisyOr);
/// b.add_edge(0, 1, 0.5).unwrap();
/// b.add_edge(1, 0, 0.5).unwrap(); // parallel edge, combined as 0.75
/// let g = b.build().unwrap();
/// assert_eq!(g.num_edges(), 1);
/// assert!((g.probs()[0] - 0.75).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(u32, u32, f64)>,
    dedup: DedupPolicy,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder { num_nodes: n, edges: Vec::new(), dedup: DedupPolicy::default() }
    }

    /// Creates a builder with preallocated edge capacity.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder { num_nodes: n, edges: Vec::with_capacity(m), dedup: DedupPolicy::default() }
    }

    /// Sets the duplicate-edge policy (builder style).
    pub fn with_dedup(mut self, policy: DedupPolicy) -> Self {
        self.dedup = policy;
        self
    }

    /// Number of nodes declared so far.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of raw (pre-dedup) edges added so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Appends a new node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.num_nodes);
        self.num_nodes += 1;
        id
    }

    /// Ensures the node set covers `0..=max_id`.
    pub fn grow_to(&mut self, num_nodes: usize) {
        self.num_nodes = self.num_nodes.max(num_nodes);
    }

    /// Adds the undirected uncertain edge `(u, v)` with probability `p`.
    ///
    /// Validation is eager: out-of-bounds endpoints, self-loops and
    /// probabilities outside `(0, 1]` are rejected immediately. Duplicate
    /// detection is deferred to [`GraphBuilder::build`] (policy-dependent).
    pub fn add_edge(&mut self, u: u32, v: u32, p: f64) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        for node in [u, v] {
            if node as usize >= self.num_nodes {
                return Err(GraphError::NodeOutOfBounds { node, num_nodes: self.num_nodes });
            }
        }
        if !(p > 0.0 && p <= 1.0) {
            // NaN fails both comparisons and lands here too.
            return Err(GraphError::InvalidProbability { u, v, p });
        }
        self.edges.push((u.min(v), u.max(v), p));
        Ok(())
    }

    /// Finalizes the graph: canonicalizes endpoints, resolves duplicates per
    /// the configured [`DedupPolicy`], and freezes everything into CSR form.
    pub fn build(self) -> Result<UncertainGraph, GraphError> {
        if self.num_nodes > u32::MAX as usize {
            return Err(GraphError::TooLarge { what: "node count" });
        }

        // Resolve duplicates. HashMap keyed by the canonical endpoint pair;
        // insertion order is restored afterwards by sorting on (u, v) so
        // builds are deterministic regardless of hash iteration order.
        let mut resolved: HashMap<(u32, u32), f64> = HashMap::with_capacity(self.edges.len());
        for (u, v, p) in self.edges {
            match resolved.entry((u, v)) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(p);
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => match self.dedup {
                    DedupPolicy::KeepMax => {
                        let cur = slot.get_mut();
                        if p > *cur {
                            *cur = p;
                        }
                    }
                    DedupPolicy::NoisyOr => {
                        let cur = slot.get_mut();
                        *cur = 1.0 - (1.0 - *cur) * (1.0 - p);
                    }
                    DedupPolicy::Error => {
                        return Err(GraphError::DuplicateEdge { u, v });
                    }
                },
            }
        }

        let mut edges: Vec<((u32, u32), f64)> = resolved.into_iter().collect();
        edges.sort_unstable_by_key(|&(key, _)| key);
        if edges.len() > u32::MAX as usize {
            return Err(GraphError::TooLarge { what: "edge count" });
        }

        let mut endpoints = Vec::with_capacity(edges.len());
        let mut probs = Vec::with_capacity(edges.len());
        for ((u, v), p) in edges {
            endpoints.push((NodeId(u), NodeId(v)));
            probs.push(p);
        }
        Ok(UncertainGraph::from_parts(self.num_nodes, endpoints, probs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(b.add_edge(1, 1, 0.5), Err(GraphError::SelfLoop { node: 1 })));
    }

    #[test]
    fn rejects_bad_probability() {
        let mut b = GraphBuilder::new(2);
        for p in [0.0, -0.1, 1.0001, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(b.add_edge(0, 1, p), Err(GraphError::InvalidProbability { .. })),
                "probability {p} should be rejected"
            );
        }
        assert!(b.add_edge(0, 1, 1.0).is_ok(), "p = 1 is allowed");
        assert!(b.add_edge(0, 1, f64::MIN_POSITIVE).is_ok(), "tiny positive p is allowed");
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 2, 0.5),
            Err(GraphError::NodeOutOfBounds { node: 2, num_nodes: 2 })
        ));
    }

    #[test]
    fn add_node_grows() {
        let mut b = GraphBuilder::new(0);
        let a = b.add_node();
        let c = b.add_node();
        assert_eq!((a, c), (NodeId(0), NodeId(1)));
        b.add_edge(0, 1, 0.9).unwrap();
        assert_eq!(b.build().unwrap().num_nodes(), 2);
    }

    #[test]
    fn grow_to_never_shrinks() {
        let mut b = GraphBuilder::new(5);
        b.grow_to(3);
        assert_eq!(b.num_nodes(), 5);
        b.grow_to(8);
        assert_eq!(b.num_nodes(), 8);
    }

    #[test]
    fn dedup_keep_max() {
        let mut b = GraphBuilder::new(2); // default policy
        b.add_edge(0, 1, 0.3).unwrap();
        b.add_edge(1, 0, 0.8).unwrap();
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.probs()[0], 0.8);
    }

    #[test]
    fn dedup_noisy_or() {
        let mut b = GraphBuilder::new(2).with_dedup(DedupPolicy::NoisyOr);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        assert!((g.probs()[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dedup_error_policy() {
        let mut b = GraphBuilder::new(2).with_dedup(DedupPolicy::Error);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 0, 0.5).unwrap();
        assert!(matches!(b.build(), Err(GraphError::DuplicateEdge { u: 0, v: 1 })));
    }

    #[test]
    fn build_is_deterministic() {
        let build = || {
            let mut b = GraphBuilder::new(100);
            // Insert in a scrambled order.
            for i in (0..99u32).rev() {
                b.add_edge(i, i + 1, 0.5 + f64::from(i) * 0.001).unwrap();
            }
            b.build().unwrap()
        };
        let g1 = build();
        let g2 = build();
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1.len(), e2.len());
        for (a, b) in e1.iter().zip(&e2) {
            assert_eq!(a, b);
        }
        // And edges come out sorted by canonical endpoints.
        let mut sorted = e1.clone();
        sorted.sort_by_key(|&(_, u, v, _)| (u, v));
        assert_eq!(e1, sorted);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(3, 10);
        b.add_edge(0, 2, 0.4).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 1);
    }
}
