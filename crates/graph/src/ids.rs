//! Strongly-typed node and edge identifiers.
//!
//! Both identifiers wrap a `u32`: the datasets reproduced from the paper top
//! out at ~637 k nodes / ~2.4 M edges, and 32-bit indices halve the memory
//! footprint of the Monte-Carlo sample pool relative to `usize` on 64-bit
//! targets (see the *Type Sizes* guidance of the Rust Performance Book).

use std::fmt;

/// Identifier of a node, an index in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of an undirected edge, an index in `0..m`.
///
/// Each undirected edge of an [`crate::UncertainGraph`] has exactly one
/// `EdgeId` regardless of traversal direction, which is what lets a possible
/// world be represented as a bitset over edge ids.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index {i} overflows u32");
        NodeId(i as u32)
    }
}

impl EdgeId {
    /// The edge id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an edge id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "edge index {i} overflows u32");
        EdgeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
        assert_eq!(format!("{n:?}"), "n42");
        assert_eq!(format!("{n}"), "42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from_index(7);
        assert_eq!(e.index(), 7);
        assert_eq!(e, EdgeId(7));
        assert_eq!(format!("{e:?}"), "e7");
        assert_eq!(format!("{e}"), "7");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(9));
    }

    #[test]
    fn ids_are_compact() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
        assert_eq!(std::mem::size_of::<Option<NodeId>>(), 8);
    }

    #[test]
    fn from_u32_conversions() {
        assert_eq!(NodeId::from(3u32), NodeId(3));
        assert_eq!(EdgeId::from(5u32), EdgeId(5));
    }
}
