//! Induced subgraphs and largest-connected-component extraction.
//!
//! The paper's experiments cluster only the **largest connected component**
//! of each dataset (§5: "we target clusterings only for the largest
//! connected component of each graph"), so LCC extraction is a first-class
//! operation here.

use crate::builder::GraphBuilder;
use crate::ids::NodeId;
use crate::traversal::connected_components;
use crate::uncertain::UncertainGraph;

/// An induced subgraph together with the mapping back to the parent graph.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The extracted graph, with nodes renumbered `0..kept.len()`.
    pub graph: UncertainGraph,
    /// `original[i]` is the parent-graph id of subgraph node `i`.
    pub original: Vec<NodeId>,
}

impl Subgraph {
    /// Maps a subgraph node back to its id in the parent graph.
    #[inline]
    pub fn to_original(&self, local: NodeId) -> NodeId {
        self.original[local.index()]
    }

    /// Builds the inverse map: parent-graph id → local id (`None` if the
    /// node was not kept). Allocates a vector of parent-graph size.
    pub fn original_to_local(&self, parent_num_nodes: usize) -> Vec<Option<NodeId>> {
        let mut map = vec![None; parent_num_nodes];
        for (local, &orig) in self.original.iter().enumerate() {
            map[orig.index()] = Some(NodeId::from_index(local));
        }
        map
    }
}

/// Extracts the subgraph induced by `nodes` (need not be sorted; duplicates
/// are ignored). Edge probabilities are preserved.
pub fn induced_subgraph(g: &UncertainGraph, nodes: &[NodeId]) -> Subgraph {
    let mut keep = vec![false; g.num_nodes()];
    for &u in nodes {
        keep[u.index()] = true;
    }
    // Local ids in increasing original order for determinism.
    let mut local_of = vec![u32::MAX; g.num_nodes()];
    let mut original = Vec::new();
    for u in 0..g.num_nodes() {
        if keep[u] {
            local_of[u] = original.len() as u32;
            original.push(NodeId::from_index(u));
        }
    }
    let mut b = GraphBuilder::with_capacity(original.len(), g.num_edges());
    for (_, u, v, p) in g.edges() {
        if keep[u.index()] && keep[v.index()] {
            b.add_edge(local_of[u.index()], local_of[v.index()], p)
                .unwrap_or_else(|e| unreachable!("validated parent edges stay valid: {e}"));
        }
    }
    let graph = b
        .build()
        .unwrap_or_else(|e| unreachable!("induced subgraph construction cannot fail: {e}"));
    Subgraph { graph, original }
}

/// Extracts the largest connected component of the **topology** (edge
/// probabilities are ignored for connectivity, matching the paper's setup).
/// Ties are broken toward the component containing the smallest node id.
pub fn largest_connected_component(g: &UncertainGraph) -> Subgraph {
    if g.num_nodes() == 0 {
        let empty = GraphBuilder::new(0)
            .build()
            .unwrap_or_else(|e| unreachable!("an empty graph always builds: {e}"));
        return Subgraph { graph: empty, original: Vec::new() };
    }
    let (labels, count) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    // Labels are assigned in order of first appearance, so the first maximal
    // label is the one containing the smallest node id among ties.
    let best = sizes
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
        .map(|(i, _)| i as u32)
        .unwrap_or_else(|| unreachable!("a non-empty graph has at least one component"));
    let nodes: Vec<NodeId> = labels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l == best)
        .map(|(i, _)| NodeId::from_index(i))
        .collect();
    induced_subgraph(g, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EdgeId;

    /// Two components: triangle {0,1,2} (p=0.5) and edge {3,4} (p=0.9).
    fn two_components() -> UncertainGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        b.add_edge(3, 4, 0.9).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = two_components();
        let sub = induced_subgraph(&g, &[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(sub.graph.num_nodes(), 3);
        // Only (0,1) survives: (3,*) has no kept partner.
        assert_eq!(sub.graph.num_edges(), 1);
        assert_eq!(sub.graph.probs()[0], 0.5);
    }

    #[test]
    fn induced_mapping_roundtrip() {
        let g = two_components();
        let sub = induced_subgraph(&g, &[NodeId(4), NodeId(2)]); // unsorted on purpose
        assert_eq!(sub.original, vec![NodeId(2), NodeId(4)]);
        assert_eq!(sub.to_original(NodeId(0)), NodeId(2));
        let inv = sub.original_to_local(g.num_nodes());
        assert_eq!(inv[2], Some(NodeId(0)));
        assert_eq!(inv[4], Some(NodeId(1)));
        assert_eq!(inv[0], None);
    }

    #[test]
    fn induced_ignores_duplicates() {
        let g = two_components();
        let sub = induced_subgraph(&g, &[NodeId(3), NodeId(3), NodeId(4)]);
        assert_eq!(sub.graph.num_nodes(), 2);
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn lcc_picks_triangle() {
        let g = two_components();
        let lcc = largest_connected_component(&g);
        assert_eq!(lcc.graph.num_nodes(), 3);
        assert_eq!(lcc.graph.num_edges(), 3);
        assert_eq!(lcc.original, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn lcc_preserves_probabilities() {
        let g = two_components();
        let lcc = largest_connected_component(&g);
        for e in 0..lcc.graph.num_edges() {
            assert_eq!(lcc.graph.prob(EdgeId::from_index(e)), 0.5);
        }
    }

    #[test]
    fn lcc_tie_breaks_to_smallest_node() {
        // Two components of equal size: {0,1} and {2,3}.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        let g = b.build().unwrap();
        let lcc = largest_connected_component(&g);
        assert_eq!(lcc.original, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn lcc_of_empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        let lcc = largest_connected_component(&g);
        assert_eq!(lcc.graph.num_nodes(), 0);
        assert!(lcc.original.is_empty());
    }

    #[test]
    fn lcc_of_connected_graph_is_identity() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build().unwrap();
        let lcc = largest_connected_component(&g);
        assert_eq!(lcc.graph.num_nodes(), 3);
        assert_eq!(lcc.original, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }
}
