//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use ugraph_graph::{
    bfs_distances, connected_components, io, largest_connected_component, Bitset, DedupPolicy,
    GraphBuilder, NodeId, UncertainGraph, UnionFind,
};

/// Strategy: a random edge list on up to `max_n` nodes.
fn edge_list(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32, f64)>)> {
    (2..=max_n).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 0.01f64..=1.0);
        (Just(n), proptest::collection::vec(edge, 0..max_m))
    })
}

fn build_graph(n: u32, edges: &[(u32, u32, f64)], dedup: DedupPolicy) -> UncertainGraph {
    let mut b = GraphBuilder::new(n as usize).with_dedup(dedup);
    for &(u, v, p) in edges {
        if u != v {
            b.add_edge(u, v, p).unwrap();
        }
    }
    b.build().unwrap()
}

proptest! {
    /// CSR degrees sum to 2m and adjacency is symmetric.
    #[test]
    fn csr_degree_sum_and_symmetry((n, edges) in edge_list(40, 120)) {
        let g = build_graph(n, &edges, DedupPolicy::KeepMax);
        let degree_sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        for u in g.nodes() {
            for (v, e) in g.neighbors(u) {
                prop_assert!(g.neighbors(v).any(|(w, e2)| w == u && e2 == e));
            }
        }
    }

    /// Every edge's endpoints are canonical and probabilities valid.
    #[test]
    fn edges_are_canonical((n, edges) in edge_list(40, 120)) {
        let g = build_graph(n, &edges, DedupPolicy::KeepMax);
        for (_, u, v, p) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(p > 0.0 && p <= 1.0);
        }
    }

    /// NoisyOr dedup never yields a probability below the max duplicate,
    /// and never above 1.
    #[test]
    fn noisy_or_dominates_keep_max((n, edges) in edge_list(20, 60)) {
        let g_max = build_graph(n, &edges, DedupPolicy::KeepMax);
        let g_or = build_graph(n, &edges, DedupPolicy::NoisyOr);
        prop_assert_eq!(g_max.num_edges(), g_or.num_edges());
        for (e1, e2) in g_max.edges().zip(g_or.edges()) {
            prop_assert_eq!((e1.1, e1.2), (e2.1, e2.2));
            prop_assert!(e2.3 >= e1.3 - 1e-15);
            prop_assert!(e2.3 <= 1.0);
        }
    }

    /// Union-find agrees with BFS-computed components on the full topology.
    #[test]
    fn union_find_matches_bfs_components((n, edges) in edge_list(40, 120)) {
        let g = build_graph(n, &edges, DedupPolicy::KeepMax);
        let (labels, count) = connected_components(&g);
        let mut uf = UnionFind::new(g.num_nodes());
        for (_, u, v, _) in g.edges() {
            uf.union(u.0, v.0);
        }
        let (uf_labels, uf_count) = uf.component_labels();
        prop_assert_eq!(count, uf_count);
        // Canonical first-appearance labeling must agree exactly.
        prop_assert_eq!(labels, uf_labels);
    }

    /// BFS distance 1 exactly for neighbors, 0 exactly for the source.
    #[test]
    fn bfs_distance_sanity((n, edges) in edge_list(30, 90)) {
        let g = build_graph(n, &edges, DedupPolicy::KeepMax);
        if g.num_nodes() == 0 { return Ok(()); }
        let src = NodeId(0);
        let dist = bfs_distances(&g, src);
        prop_assert_eq!(dist[0], 0);
        for (v, _) in g.neighbors(src) {
            prop_assert!(dist[v.index()] == 1);
        }
        // Triangle inequality on hops along every edge.
        for (_, u, v, _) in g.edges() {
            let (du, dv) = (dist[u.index()], dist[v.index()]);
            if du != u32::MAX && dv != u32::MAX {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                prop_assert_eq!(du, dv); // both unreachable
            }
        }
    }

    /// The LCC is connected and at least as large as any other component.
    #[test]
    fn lcc_is_connected_and_maximal((n, edges) in edge_list(40, 80)) {
        let g = build_graph(n, &edges, DedupPolicy::KeepMax);
        let lcc = largest_connected_component(&g);
        if lcc.graph.num_nodes() > 0 {
            let (_, count) = connected_components(&lcc.graph);
            prop_assert_eq!(count, 1);
        }
        let (labels, count) = connected_components(&g);
        let mut sizes = vec![0usize; count];
        for &l in &labels { sizes[l as usize] += 1; }
        let max_size = sizes.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(lcc.graph.num_nodes(), max_size);
    }

    /// Edge-list round trip preserves the graph exactly.
    #[test]
    fn io_roundtrip((n, edges) in edge_list(40, 120)) {
        let g = build_graph(n, &edges, DedupPolicy::KeepMax);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(g.num_nodes(), g2.num_nodes());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        prop_assert_eq!(e1, e2);
    }

    /// Bitset ones() agrees with a naive bool-vector model.
    #[test]
    fn bitset_matches_model(ops in proptest::collection::vec((0usize..300, any::<bool>()), 0..200)) {
        let mut bs = Bitset::with_len(300);
        let mut model = vec![false; 300];
        for (i, v) in ops {
            bs.set(i, v);
            model[i] = v;
        }
        let got: Vec<usize> = bs.ones().collect();
        let want: Vec<usize> = model.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(bs.count_ones(), model.iter().filter(|&&b| b).count());
    }

    /// Union-find `connected` is an equivalence relation consistent with the
    /// unions performed.
    #[test]
    fn union_find_transitivity(unions in proptest::collection::vec((0u32..30, 0u32..30), 0..60)) {
        let mut uf = UnionFind::new(30);
        for &(a, b) in &unions {
            uf.union(a, b);
        }
        // Reflexive + symmetric by construction; check transitivity.
        for a in 0..30u32 {
            for b in 0..30u32 {
                for c in 0..30u32 {
                    if uf.connected(a, b) && uf.connected(b, c) {
                        prop_assert!(uf.connected(a, c));
                    }
                }
            }
        }
        // Set count = n - effective unions.
        let (_, count) = uf.component_labels();
        prop_assert_eq!(count, uf.num_sets());
    }
}
