//! Property-based tests for the metric implementations.
#![allow(clippy::needless_range_loop)] // parallel-array indexing in strategies

use proptest::prelude::*;
use ugraph_cluster::Clustering;
use ugraph_graph::{GraphBuilder, NodeId, UncertainGraph};
use ugraph_metrics::{avpr, clustering_quality, confusion};
use ugraph_sampling::ComponentPool;

/// Random graph plus a random full clustering over it.
fn graph_and_clustering() -> impl Strategy<Value = (UncertainGraph, Clustering)> {
    (4..=14u32).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 0.1f64..=1.0), 1..30);
        let ks = 1..=(n as usize - 1).min(4);
        (Just(n), edges, ks, any::<u64>()).prop_map(|(n, edges, k, seed)| {
            let mut b = GraphBuilder::new(n as usize);
            for i in 0..n - 1 {
                b.add_edge(i, i + 1, 0.5).unwrap();
            }
            for (u, v, p) in edges {
                if u != v {
                    b.add_edge(u, v, p).unwrap();
                }
            }
            let g = b.build().unwrap();
            // Random-but-valid clustering: centers = first k nodes scrambled
            // by seed; every other node assigned pseudo-randomly.
            let mut centers: Vec<NodeId> = (0..n).map(NodeId).collect();
            let mut state = seed;
            for i in (1..centers.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                centers.swap(i, j);
            }
            centers.truncate(k);
            let mut assignment = vec![None; n as usize];
            for (i, c) in centers.iter().enumerate() {
                assignment[c.index()] = Some(i as u32);
            }
            for u in 0..n as usize {
                if assignment[u].is_none() {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    assignment[u] = Some(((state >> 33) as usize % k) as u32);
                }
            }
            (g, Clustering::new(centers, assignment))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quality metrics stay in range and p_min ≤ p_avg on full clusterings
    /// (the assigned-center probability of every node is ≥ the minimum).
    #[test]
    fn quality_ranges((g, c) in graph_and_clustering(), seed in any::<u64>()) {
        let mut pool = ComponentPool::new(&g, seed, 1);
        pool.ensure(150);
        let q = clustering_quality(&mut pool, &c);
        prop_assert!((0.0..=1.0).contains(&q.p_min));
        prop_assert!((0.0..=1.0).contains(&q.p_avg));
        prop_assert!(q.p_avg >= q.p_min - 1e-12, "avg {} < min {}", q.p_avg, q.p_min);
    }

    /// AVPR via contingency counting equals brute-force pair averaging.
    #[test]
    fn avpr_matches_bruteforce((g, c) in graph_and_clustering(), seed in any::<u64>()) {
        let mut pool = ComponentPool::new(&g, seed, 1);
        pool.ensure(120);
        let m = avpr(&mut pool, &c);
        let n = g.num_nodes() as u32;
        let (mut is_, mut ic, mut os, mut oc) = (0.0f64, 0usize, 0.0f64, 0usize);
        for u in 0..n {
            for v in (u + 1)..n {
                let p = pool.pair_estimate(NodeId(u), NodeId(v));
                if c.cluster_of(NodeId(u)) == c.cluster_of(NodeId(v)) {
                    is_ += p;
                    ic += 1;
                } else {
                    os += p;
                    oc += 1;
                }
            }
        }
        let want_inner = if ic == 0 { 1.0 } else { is_ / ic as f64 };
        let want_outer = if oc == 0 { 0.0 } else { os / oc as f64 };
        prop_assert!((m.inner - want_inner).abs() < 1e-9, "{} vs {}", m.inner, want_inner);
        prop_assert!((m.outer - want_outer).abs() < 1e-9, "{} vs {}", m.outer, want_outer);
    }

    /// The confusion matrix always partitions the restricted pair set, and
    /// the rates stay in [0, 1].
    #[test]
    fn confusion_is_a_partition(
        (g, c) in graph_and_clustering(),
        complex_seed in any::<u64>(),
    ) {
        // Build 1-3 random complexes over the node set.
        let n = g.num_nodes();
        let mut state = complex_seed;
        let mut next = |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize % m
        };
        let num_complexes = 1 + next(3);
        let mut complexes: Vec<Vec<NodeId>> = Vec::new();
        for _ in 0..num_complexes {
            let size = 2 + next(n.saturating_sub(2).max(1));
            let mut members: Vec<NodeId> =
                (0..size).map(|_| NodeId::from_index(next(n))).collect();
            members.sort_unstable();
            members.dedup();
            if members.len() >= 2 {
                complexes.push(members);
            }
        }
        prop_assume!(!complexes.is_empty());
        let m = confusion(&c, &complexes);
        // Restricted protein set size.
        let mut in_truth = std::collections::HashSet::new();
        for cx in &complexes {
            in_truth.extend(cx.iter().copied());
        }
        let t = in_truth.len() as u64;
        prop_assert_eq!(m.tp + m.fp + m.fn_ + m.tn, t * (t - 1) / 2);
        for rate in [m.tpr(), m.fpr(), m.precision(), m.f1()] {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }

    /// Perfect clustering of the complexes ⇒ TPR 1; all-singletons ⇒ TPR 0
    /// and FPR 0.
    #[test]
    fn confusion_extremes(sizes in proptest::collection::vec(2usize..5, 1..3)) {
        let n: usize = sizes.iter().sum();
        let mut complexes = Vec::new();
        let mut centers = Vec::new();
        let mut assignment = vec![None; n];
        let mut start = 0usize;
        for (i, &s) in sizes.iter().enumerate() {
            let members: Vec<NodeId> =
                (start..start + s).map(NodeId::from_index).collect();
            centers.push(members[0]);
            for &m in &members {
                assignment[m.index()] = Some(i as u32);
            }
            complexes.push(members);
            start += s;
        }
        let perfect = Clustering::new(centers, assignment);
        let m = confusion(&perfect, &complexes);
        prop_assert_eq!(m.tpr(), 1.0);
        prop_assert_eq!(m.fpr(), 0.0);

        let singles = Clustering::new(
            (0..n).map(NodeId::from_index).collect(),
            (0..n as u32).map(Some).collect(),
        );
        let m = confusion(&singles, &complexes);
        prop_assert_eq!(m.tpr(), 0.0);
        prop_assert_eq!(m.fpr(), 0.0);
    }
}
