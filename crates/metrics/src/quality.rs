//! `p_min` / `p_avg` estimation (Figure 1 of the paper).
//!
//! Generic over the [`WorldEngine`] seam, so clusterings are measured
//! identically whichever backend (scalar pools or the bit-parallel block
//! pool) produced — or measures — the estimates.

use ugraph_cluster::Clustering;
use ugraph_graph::NodeId;
use ugraph_sampling::WorldEngine;

/// Connection-probability quality of a clustering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quality {
    /// Minimum estimated connection probability of a covered node to its
    /// center (`p_min`, Eq. 1). 1.0 if nothing is covered.
    pub p_min: f64,
    /// Average estimated connection probability over **all** nodes, with
    /// outliers contributing 0 (`p_avg`, Eq. 2). 0.0 for empty graphs.
    pub p_avg: f64,
}

/// Centers evaluated per batched engine call: bounds the count buffer at
/// `BATCH · n` integers per radius while still amortizing pool sweeps.
const CENTER_BATCH: usize = 64;

/// Estimates `p_min`/`p_avg` of `clustering` from the sample pool.
///
/// Cost: the centers' count rows are fetched through the engine's batched
/// `counts_from_centers` (one pool sweep per [`CENTER_BATCH`] centers
/// instead of one per cluster) — independent of how the clustering was
/// produced, so MCL/GMM/KPT outputs are measured identically.
///
/// # Panics
/// Panics if the pool is empty or sized for a different graph.
pub fn clustering_quality<E: WorldEngine + ?Sized>(
    engine: &mut E,
    clustering: &Clustering,
) -> Quality {
    let n = engine.graph().num_nodes();
    assert_eq!(n, clustering.num_nodes(), "clustering and pool disagree on n");
    assert!(engine.num_samples() > 0, "sample pool is empty");
    let r = engine.num_samples() as f64;
    let mut counts = vec![0u32; CENTER_BATCH.min(clustering.num_clusters().max(1)) * n];
    let mut probs = vec![0.0f64; n];
    for (chunk_idx, chunk) in clustering.centers().chunks(CENTER_BATCH).enumerate() {
        engine.counts_from_centers(chunk, &mut counts[..chunk.len() * n]);
        for u in 0..n {
            if let Some(i) = clustering.cluster_of(NodeId::from_index(u)) {
                if let Some(j) =
                    i.checked_sub(chunk_idx * CENTER_BATCH).filter(|&j| j < chunk.len())
                {
                    probs[u] = counts[j * n + u] as f64 / r;
                }
            }
        }
    }
    finalize(clustering, &probs)
}

/// Depth-limited variant: probabilities are `Pr(u ~d~ center)` (paper
/// §3.4), estimated over a depth-capable engine
/// ([`ugraph_sampling::WorldPool`] or
/// [`ugraph_sampling::BitParallelPool`]) with batched depth rows.
pub fn depth_clustering_quality<E: WorldEngine + ?Sized>(
    engine: &mut E,
    clustering: &Clustering,
    depth: u32,
) -> Quality {
    let n = engine.graph().num_nodes();
    assert_eq!(n, clustering.num_nodes(), "clustering and pool disagree on n");
    assert!(engine.num_samples() > 0, "sample pool is empty");
    let r = engine.num_samples() as f64;
    let rows = CENTER_BATCH.min(clustering.num_clusters().max(1)) * n;
    let mut sel = vec![0u32; rows];
    let mut cov = vec![0u32; rows];
    let mut probs = vec![0.0f64; n];
    for (chunk_idx, chunk) in clustering.centers().chunks(CENTER_BATCH).enumerate() {
        engine.counts_within_depths_batch(
            chunk,
            depth,
            depth,
            &mut sel[..chunk.len() * n],
            &mut cov[..chunk.len() * n],
        );
        for u in 0..n {
            if let Some(i) = clustering.cluster_of(NodeId::from_index(u)) {
                if let Some(j) =
                    i.checked_sub(chunk_idx * CENTER_BATCH).filter(|&j| j < chunk.len())
                {
                    probs[u] = cov[j * n + u] as f64 / r;
                }
            }
        }
    }
    finalize(clustering, &probs)
}

#[allow(clippy::needless_range_loop)] // parallel-array indexing is the clearest form here
fn finalize(clustering: &Clustering, probs: &[f64]) -> Quality {
    let n = probs.len();
    let mut p_min = 1.0f64;
    let mut sum = 0.0f64;
    for u in 0..n {
        if clustering.cluster_of(NodeId::from_index(u)).is_some() {
            p_min = p_min.min(probs[u]);
            sum += probs[u];
        }
    }
    Quality { p_min, p_avg: if n == 0 { 0.0 } else { sum / n as f64 } }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;
    use ugraph_sampling::{ComponentPool, WorldPool};

    #[test]
    fn certain_chain_quality() {
        // 0-1-2 certain; cluster {0,1,2} centered at 1.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut pool = ComponentPool::new(&g, 1, 1);
        pool.ensure(20);
        let c = Clustering::new(vec![NodeId(1)], vec![Some(0), Some(0), Some(0)]);
        let q = clustering_quality(&mut pool, &c);
        assert_eq!(q.p_min, 1.0);
        assert_eq!(q.p_avg, 1.0);
    }

    #[test]
    fn outliers_count_in_avg_not_min() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut pool = ComponentPool::new(&g, 1, 1);
        pool.ensure(10);
        // Cluster {0,1} center 0; node 2 outlier.
        let c = Clustering::new(vec![NodeId(0)], vec![Some(0), Some(0), None]);
        let q = clustering_quality(&mut pool, &c);
        assert_eq!(q.p_min, 1.0);
        assert!((q.p_avg - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn estimates_converge_to_exact() {
        // Chain 0 -0.8- 1 -0.5- 2, single cluster centered at 0:
        // Pr(0~1) = 0.8, Pr(0~2) = 0.4.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build().unwrap();
        let mut pool = ComponentPool::new(&g, 3, 1);
        pool.ensure(20_000);
        let c = Clustering::new(vec![NodeId(0)], vec![Some(0), Some(0), Some(0)]);
        let q = clustering_quality(&mut pool, &c);
        assert!((q.p_min - 0.4).abs() < 0.02, "p_min {}", q.p_min);
        assert!((q.p_avg - (1.0 + 0.8 + 0.4) / 3.0).abs() < 0.02, "p_avg {}", q.p_avg);
    }

    #[test]
    fn depth_quality_cuts_long_paths() {
        // Certain chain 0-1-2; cluster centered at 0; depth 1 sees node 1
        // but not node 2.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut pool = WorldPool::new(&g, 1, 1);
        pool.ensure(5);
        let c = Clustering::new(vec![NodeId(0)], vec![Some(0), Some(0), Some(0)]);
        let q1 = depth_clustering_quality(&mut pool, &c, 1);
        assert_eq!(q1.p_min, 0.0);
        assert!((q1.p_avg - 2.0 / 3.0).abs() < 1e-12);
        let q2 = depth_clustering_quality(&mut pool, &c, 2);
        assert_eq!(q2.p_min, 1.0);
        assert_eq!(q2.p_avg, 1.0);
    }

    #[test]
    #[should_panic(expected = "sample pool is empty")]
    fn empty_pool_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        let mut pool = ComponentPool::new(&g, 1, 1);
        let c = Clustering::new(vec![NodeId(0)], vec![Some(0), Some(0)]);
        let _ = clustering_quality(&mut pool, &c);
    }
}
