//! `p_min` / `p_avg` estimation (Figure 1 of the paper).
//!
//! Generic over the [`WorldEngine`] seam, so clusterings are measured
//! identically whichever backend (scalar pools or the bit-parallel block
//! pool) produced — or measures — the estimates.

use ugraph_cluster::{Clustering, UgraphSession};
use ugraph_graph::NodeId;
use ugraph_sampling::{assignment_probs, quality_from_probs, WorldEngine};

/// Connection-probability quality of a clustering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quality {
    /// Minimum estimated connection probability of a covered node to its
    /// center (`p_min`, Eq. 1). 1.0 if nothing is covered.
    pub p_min: f64,
    /// Average estimated connection probability over **all** nodes, with
    /// outliers contributing 0 (`p_avg`, Eq. 2). 0.0 for empty graphs.
    pub p_avg: f64,
}

/// Estimates `p_min`/`p_avg` of `clustering` from the sample pool.
///
/// Cost: the centers' count rows are fetched through the engine's batched
/// `counts_from_centers` (one pool sweep per center batch instead of one
/// per cluster, via [`ugraph_sampling::assignment_probs`]) — independent
/// of how the clustering was produced, so MCL/GMM/KPT outputs are
/// measured identically.
///
/// # Panics
/// Panics if the pool is empty or sized for a different graph.
pub fn clustering_quality<E: WorldEngine + ?Sized>(
    engine: &mut E,
    clustering: &Clustering,
) -> Quality {
    let n = engine.graph().num_nodes();
    assert_eq!(n, clustering.num_nodes(), "clustering and pool disagree on n");
    let probs = assignment_probs(
        engine,
        clustering.centers(),
        |u| clustering.cluster_of(NodeId::from_index(u)),
        None,
    );
    finalize(clustering, &probs)
}

/// [`clustering_quality`] over a [`UgraphSession`]'s shared evaluation
/// pool — the session-native entry point, so callers measuring many
/// clusterings on one graph (k-sweeps) reuse one grow-only pool instead
/// of building a fresh one per measurement. Delegates to
/// [`UgraphSession::evaluate`] (same measurement kernel), so the call is
/// counted in the session's `SessionStats::evaluations`.
pub fn session_quality(session: &mut UgraphSession<'_>, clustering: &Clustering) -> Quality {
    let e = session.evaluate(clustering);
    Quality { p_min: e.p_min, p_avg: e.p_avg }
}

/// Depth-limited variant: probabilities are `Pr(u ~d~ center)` (paper
/// §3.4), estimated over a depth-capable engine
/// ([`ugraph_sampling::WorldPool`] or
/// [`ugraph_sampling::BitParallelPool`]) with batched depth rows.
pub fn depth_clustering_quality<E: WorldEngine + ?Sized>(
    engine: &mut E,
    clustering: &Clustering,
    depth: u32,
) -> Quality {
    let n = engine.graph().num_nodes();
    assert_eq!(n, clustering.num_nodes(), "clustering and pool disagree on n");
    let probs = assignment_probs(
        engine,
        clustering.centers(),
        |u| clustering.cluster_of(NodeId::from_index(u)),
        Some(depth),
    );
    finalize(clustering, &probs)
}

fn finalize(clustering: &Clustering, probs: &[f64]) -> Quality {
    let (p_min, p_avg) =
        quality_from_probs(probs, |u| clustering.cluster_of(NodeId::from_index(u)).is_some());
    Quality { p_min, p_avg }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;
    use ugraph_sampling::{ComponentPool, WorldPool};

    #[test]
    fn certain_chain_quality() {
        // 0-1-2 certain; cluster {0,1,2} centered at 1.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut pool = ComponentPool::new(&g, 1, 1);
        pool.ensure(20);
        let c = Clustering::new(vec![NodeId(1)], vec![Some(0), Some(0), Some(0)]);
        let q = clustering_quality(&mut pool, &c);
        assert_eq!(q.p_min, 1.0);
        assert_eq!(q.p_avg, 1.0);
    }

    #[test]
    fn outliers_count_in_avg_not_min() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut pool = ComponentPool::new(&g, 1, 1);
        pool.ensure(10);
        // Cluster {0,1} center 0; node 2 outlier.
        let c = Clustering::new(vec![NodeId(0)], vec![Some(0), Some(0), None]);
        let q = clustering_quality(&mut pool, &c);
        assert_eq!(q.p_min, 1.0);
        assert!((q.p_avg - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn estimates_converge_to_exact() {
        // Chain 0 -0.8- 1 -0.5- 2, single cluster centered at 0:
        // Pr(0~1) = 0.8, Pr(0~2) = 0.4.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build().unwrap();
        let mut pool = ComponentPool::new(&g, 3, 1);
        pool.ensure(20_000);
        let c = Clustering::new(vec![NodeId(0)], vec![Some(0), Some(0), Some(0)]);
        let q = clustering_quality(&mut pool, &c);
        assert!((q.p_min - 0.4).abs() < 0.02, "p_min {}", q.p_min);
        assert!((q.p_avg - (1.0 + 0.8 + 0.4) / 3.0).abs() < 0.02, "p_avg {}", q.p_avg);
    }

    #[test]
    fn depth_quality_cuts_long_paths() {
        // Certain chain 0-1-2; cluster centered at 0; depth 1 sees node 1
        // but not node 2.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut pool = WorldPool::new(&g, 1, 1);
        pool.ensure(5);
        let c = Clustering::new(vec![NodeId(0)], vec![Some(0), Some(0), Some(0)]);
        let q1 = depth_clustering_quality(&mut pool, &c, 1);
        assert_eq!(q1.p_min, 0.0);
        assert!((q1.p_avg - 2.0 / 3.0).abs() < 1e-12);
        let q2 = depth_clustering_quality(&mut pool, &c, 2);
        assert_eq!(q2.p_min, 1.0);
        assert_eq!(q2.p_avg, 1.0);
    }

    #[test]
    fn session_quality_agrees_with_session_evaluate() {
        use ugraph_cluster::{ClusterConfig, ClusterRequest, UgraphSession};
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, 0.1).unwrap();
        let g = b.build().unwrap();
        let mut session = UgraphSession::new(&g, ClusterConfig::default().with_seed(2))
            .unwrap()
            .with_eval_samples(96);
        let r = session.solve(ClusterRequest::mcp(2)).unwrap();
        let q = session_quality(&mut session, &r.clustering);
        let e = session.evaluate(&r.clustering);
        assert_eq!(q.p_min, e.p_min, "both paths read the same shared pool");
        assert_eq!(q.p_avg, e.p_avg);
        assert_eq!(e.samples, 96);
    }

    #[test]
    #[should_panic(expected = "sample pool is empty")]
    fn empty_pool_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        let mut pool = ComponentPool::new(&g, 1, 1);
        let c = Clustering::new(vec![NodeId(0)], vec![Some(0), Some(0)]);
        let _ = clustering_quality(&mut pool, &c);
    }
}
