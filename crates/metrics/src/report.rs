//! Small table formatter for the experiment harness: renders rows as
//! aligned plain text or GitHub-flavored markdown (the format EXPERIMENTS.md
//! embeds).

/// A simple table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        out.push_str(&Self::line(&self.header, &widths, ' '));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&Self::line(row, &widths, ' '));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.header.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.header {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }

    fn line(cells: &[String], widths: &[usize], pad: char) -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, &w)| {
                let mut s = c.clone();
                while s.len() < w {
                    s.push(pad);
                }
                s
            })
            .collect::<Vec<_>>()
            .join("  ")
    }
}

/// Formats a probability with three decimals, like the paper's figures
/// (`.177`-style, `<1e-3` for sub-millesimal values).
pub fn fmt_prob(p: f64) -> String {
    if p > 0.0 && p < 1e-3 {
        "<1e-3".to_string()
    } else {
        format!("{p:.3}")
    }
}

/// Formats a duration in milliseconds with three significant digits.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 10.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["long-name", "2"]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        assert!(t.to_markdown().contains("| only-one |  |  |"));
    }

    #[test]
    fn prob_formatting() {
        assert_eq!(fmt_prob(0.177), "0.177");
        assert_eq!(fmt_prob(0.0001), "<1e-3");
        assert_eq!(fmt_prob(0.0), "0.000");
        assert_eq!(fmt_prob(1.0), "1.000");
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(fmt_ms(1234.5), "1234"); // round-half-to-even
        assert_eq!(fmt_ms(56.78), "56.8");
        assert_eq!(fmt_ms(3.456), "3.46");
    }
}
