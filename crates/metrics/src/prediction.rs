//! Protein-complex prediction metrics (Table 2 of the paper).
//!
//! A clustering *predicts* that two proteins interact stably when it puts
//! them in the same cluster. Against a ground truth of complexes (MIPS in
//! the paper; planted complexes here), each co-clustered pair is a true
//! positive if some complex contains both proteins, a false positive
//! otherwise. Following the paper, the evaluation restricts to proteins
//! that appear in the ground truth (the paper restricts to proteins in
//! both Krogan and MIPS).

use std::collections::{HashMap, HashSet};

use ugraph_cluster::Clustering;
use ugraph_graph::NodeId;

/// Pairwise confusion matrix of a clustering against complex ground truth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Co-clustered pairs that share a complex.
    pub tp: u64,
    /// Co-clustered pairs that do not share a complex.
    pub fp: u64,
    /// Same-complex pairs split across clusters.
    pub fn_: u64,
    /// Pairs sharing neither cluster nor complex.
    pub tn: u64,
}

impl ConfusionMatrix {
    /// True positive rate `TP / (TP + FN)` (a.k.a. recall); 0 when there
    /// are no positives.
    pub fn tpr(&self) -> f64 {
        let pos = self.tp + self.fn_;
        if pos == 0 {
            0.0
        } else {
            self.tp as f64 / pos as f64
        }
    }

    /// False positive rate `FP / (FP + TN)`; 0 when there are no negatives.
    pub fn fpr(&self) -> f64 {
        let neg = self.fp + self.tn;
        if neg == 0 {
            0.0
        } else {
            self.fp as f64 / neg as f64
        }
    }

    /// Precision `TP / (TP + FP)`; 0 when nothing is predicted positive.
    pub fn precision(&self) -> f64 {
        let pred = self.tp + self.fp;
        if pred == 0 {
            0.0
        } else {
            self.tp as f64 / pred as f64
        }
    }

    /// F1 score (harmonic mean of precision and TPR); 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.tpr();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Computes the pairwise confusion matrix of `clustering` against the
/// ground-truth `complexes`, restricted to proteins appearing in at least
/// one complex.
pub fn confusion(clustering: &Clustering, complexes: &[Vec<NodeId>]) -> ConfusionMatrix {
    // Ground-truth protein set and positive pair set.
    let mut in_truth: HashSet<NodeId> = HashSet::new();
    for c in complexes {
        in_truth.extend(c.iter().copied());
    }
    let mut positive: HashSet<(u32, u32)> = HashSet::new();
    for c in complexes {
        for (i, &a) in c.iter().enumerate() {
            for &b in &c[i + 1..] {
                let key = (a.0.min(b.0), a.0.max(b.0));
                positive.insert(key);
            }
        }
    }
    let restricted: Vec<NodeId> = {
        let mut v: Vec<NodeId> = in_truth.iter().copied().collect();
        v.sort_unstable();
        v
    };
    let n = restricted.len() as u64;
    let total_pairs = n * n.saturating_sub(1) / 2;
    let positives = positive.len() as u64;

    // Predicted-positive pairs: same-cluster pairs among restricted
    // proteins. Grouped per cluster to avoid the full O(n²) scan.
    let mut members: HashMap<usize, Vec<NodeId>> = HashMap::new();
    for &p in &restricted {
        if let Some(cl) = clustering.cluster_of(p) {
            members.entry(cl).or_default().push(p);
        }
    }
    let mut tp = 0u64;
    let mut fp = 0u64;
    for group in members.values() {
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                let key = (a.0.min(b.0), a.0.max(b.0));
                if positive.contains(&key) {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
    }
    let fn_ = positives - tp;
    let tn = total_pairs - positives - fp;
    ConfusionMatrix { tp, fp, fn_, tn }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_vec(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn perfect_prediction() {
        // Complexes {0,1,2} and {3,4}; clustering matches exactly.
        let complexes = vec![node_vec(&[0, 1, 2]), node_vec(&[3, 4])];
        let clustering = Clustering::new(
            vec![NodeId(0), NodeId(3)],
            vec![Some(0), Some(0), Some(0), Some(1), Some(1)],
        );
        let m = confusion(&clustering, &complexes);
        assert_eq!(m, ConfusionMatrix { tp: 4, fp: 0, fn_: 0, tn: 6 });
        assert_eq!(m.tpr(), 1.0);
        assert_eq!(m.fpr(), 0.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn everything_in_one_cluster() {
        let complexes = vec![node_vec(&[0, 1]), node_vec(&[2, 3])];
        let clustering = Clustering::new(vec![NodeId(0)], vec![Some(0), Some(0), Some(0), Some(0)]);
        let m = confusion(&clustering, &complexes);
        // All 6 restricted pairs predicted positive; 2 are true.
        assert_eq!(m, ConfusionMatrix { tp: 2, fp: 4, fn_: 0, tn: 0 });
        assert_eq!(m.tpr(), 1.0);
        assert_eq!(m.fpr(), 1.0);
    }

    #[test]
    fn all_singletons_predict_nothing() {
        let complexes = vec![node_vec(&[0, 1])];
        let clustering = Clustering::new(vec![NodeId(0), NodeId(1)], vec![Some(0), Some(1)]);
        let m = confusion(&clustering, &complexes);
        assert_eq!(m, ConfusionMatrix { tp: 0, fp: 0, fn_: 1, tn: 0 });
        assert_eq!(m.tpr(), 0.0);
        assert_eq!(m.fpr(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn proteins_outside_truth_are_ignored() {
        // Node 9 is clustered with 0 but belongs to no complex: must not
        // count as FP.
        let complexes = vec![node_vec(&[0, 1])];
        let clustering = Clustering::new(
            vec![NodeId(0)],
            vec![Some(0), Some(0), None, None, None, None, None, None, None, Some(0)],
        );
        let m = confusion(&clustering, &complexes);
        assert_eq!(m, ConfusionMatrix { tp: 1, fp: 0, fn_: 0, tn: 0 });
    }

    #[test]
    fn overlapping_complexes_count_pairs_once() {
        // {0,1,2} and {1,2,3}: pair (1,2) appears in both but is one
        // positive.
        let complexes = vec![node_vec(&[0, 1, 2]), node_vec(&[1, 2, 3])];
        let clustering = Clustering::new(vec![NodeId(0)], vec![Some(0), Some(0), Some(0), Some(0)]);
        let m = confusion(&clustering, &complexes);
        // positives: (0,1),(0,2),(1,2),(1,3),(2,3) = 5; total pairs C(4,2)=6.
        assert_eq!(m.tp, 5);
        assert_eq!(m.fp, 1); // (0,3)
        assert_eq!(m.fn_, 0);
        assert_eq!(m.tn, 0);
    }

    #[test]
    fn outlier_ground_truth_proteins_become_false_negatives() {
        let complexes = vec![node_vec(&[0, 1])];
        // Node 1 unassigned.
        let clustering = Clustering::new(vec![NodeId(0)], vec![Some(0), None]);
        let m = confusion(&clustering, &complexes);
        assert_eq!(m, ConfusionMatrix { tp: 0, fp: 0, fn_: 1, tn: 0 });
    }
}
