//! Inner and outer Average Vertex Pairwise Reliability (Figure 2).
//!
//! * `inner-AVPR` = average of `Pr(u ~ v)` over all **same-cluster** pairs;
//! * `outer-AVPR` = average of `Pr(u ~ v)` over all **cross-cluster**
//!   pairs.
//!
//! A clustering that isolates high-reliability regions has high inner- and
//! low outer-AVPR. The paper's definitions sum over ordered pairs; both
//! numerator and denominator double, so the unordered computation here is
//! identical in value.
//!
//! **Complexity**: per Monte-Carlo sample, pairs connected in that world
//! partition by `(component, cluster)`; counting contingency sizes gives
//! all pair counts in `O(n)` per sample instead of `Θ(n²)` pair
//! enumeration:
//!
//! * connected same-cluster pairs  = `Σ_cells C(size, 2)`,
//! * connected pairs in total      = `Σ_components C(size, 2)`,
//! * connected cross-cluster pairs = difference of the two.

use std::collections::HashMap;

use ugraph_cluster::Clustering;
use ugraph_graph::NodeId;
use ugraph_sampling::ComponentPool;

/// Inner/outer AVPR values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Avpr {
    /// Average reliability over same-cluster pairs (1.0 when no such pairs
    /// exist).
    pub inner: f64,
    /// Average reliability over cross-cluster pairs (0.0 when no such
    /// pairs exist).
    pub outer: f64,
}

#[inline]
fn pairs(c: u64) -> u64 {
    c * (c.saturating_sub(1)) / 2
}

/// Computes inner/outer AVPR of `clustering` over the sample pool.
///
/// Outlier (unassigned) nodes are excluded from both statistics, matching
/// the paper's use on full clusterings. The pool is borrowed mutably
/// because reading per-sample labels may regenerate evicted shards under
/// a memory budget.
///
/// # Panics
/// Panics if the pool is empty or sized for a different graph.
#[allow(clippy::needless_range_loop)] // parallel-array indexing is the clearest form here
pub fn avpr(pool: &mut ComponentPool<'_>, clustering: &Clustering) -> Avpr {
    let n = pool.graph().num_nodes();
    assert_eq!(n, clustering.num_nodes(), "clustering and pool disagree on n");
    let r = pool.num_samples();
    assert!(r > 0, "sample pool is empty");

    // Static pair totals.
    let sizes = clustering.cluster_sizes();
    let covered: u64 = sizes.iter().map(|&s| s as u64).sum();
    let intra_pairs: u64 = sizes.iter().map(|&s| pairs(s as u64)).sum();
    let cross_pairs: u64 = pairs(covered) - intra_pairs;

    // Connected pair counts accumulated over samples.
    let mut connected_intra: u64 = 0;
    let mut connected_total_covered: u64 = 0;
    let mut cell_counts: HashMap<(u32, u32), u64> = HashMap::new();
    let mut comp_counts: HashMap<u32, u64> = HashMap::new();
    let mut labels = vec![0u32; n];
    for s in 0..r {
        pool.labels_into(s, &mut labels);
        cell_counts.clear();
        comp_counts.clear();
        for u in 0..n {
            if let Some(cl) = clustering.cluster_of(NodeId::from_index(u)) {
                let comp = labels[u];
                *cell_counts.entry((comp, cl as u32)).or_insert(0) += 1;
                *comp_counts.entry(comp).or_insert(0) += 1;
            }
        }
        connected_intra += cell_counts.values().map(|&c| pairs(c)).sum::<u64>();
        connected_total_covered += comp_counts.values().map(|&c| pairs(c)).sum::<u64>();
    }
    let connected_cross = connected_total_covered - connected_intra;

    Avpr {
        inner: if intra_pairs == 0 {
            1.0
        } else {
            connected_intra as f64 / (r as u64 * intra_pairs) as f64
        },
        outer: if cross_pairs == 0 {
            0.0
        } else {
            connected_cross as f64 / (r as u64 * cross_pairs) as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;
    use ugraph_graph::UncertainGraph;

    fn two_certain_triangles() -> UncertainGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        b.build().unwrap()
    }

    fn community_clustering() -> Clustering {
        Clustering::new(
            vec![NodeId(0), NodeId(3)],
            vec![Some(0), Some(0), Some(0), Some(1), Some(1), Some(1)],
        )
    }

    #[test]
    fn separated_certain_triangles_are_perfect() {
        let g = two_certain_triangles();
        let mut pool = ComponentPool::new(&g, 1, 1);
        pool.ensure(10);
        let m = avpr(&mut pool, &community_clustering());
        assert_eq!(m.inner, 1.0);
        assert_eq!(m.outer, 0.0);
    }

    #[test]
    fn merged_clustering_degrades_inner() {
        let g = two_certain_triangles();
        let mut pool = ComponentPool::new(&g, 1, 1);
        pool.ensure(10);
        // Everything in one cluster: intra pairs include the 9 disconnected
        // cross-triangle pairs. inner = 6/15, outer undefined -> 0.
        let c = Clustering::new(
            vec![NodeId(0)],
            vec![Some(0), Some(0), Some(0), Some(0), Some(0), Some(0)],
        );
        let m = avpr(&mut pool, &c);
        assert!((m.inner - 6.0 / 15.0).abs() < 1e-12);
        assert_eq!(m.outer, 0.0);
    }

    #[test]
    fn split_cluster_raises_outer() {
        let g = two_certain_triangles();
        let mut pool = ComponentPool::new(&g, 1, 1);
        pool.ensure(10);
        // Split the first triangle across clusters: {0,1},{2},{3,4,5}.
        let c = Clustering::new(
            vec![NodeId(0), NodeId(2), NodeId(3)],
            vec![Some(0), Some(0), Some(1), Some(2), Some(2), Some(2)],
        );
        let m = avpr(&mut pool, &c);
        // intra pairs: C(2,2)=1 + 0 + C(3,2)=3 -> all connected -> inner 1.
        assert_eq!(m.inner, 1.0);
        // cross pairs: total C(6,2)=15 - 4 = 11; connected cross = pairs
        // (0,2),(1,2) = 2. outer = 2/11.
        assert!((m.outer - 2.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn estimates_converge_on_uncertain_graph() {
        // Single edge 0 -0.5- 1, both in one cluster: inner-AVPR -> 0.5.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        let mut pool = ComponentPool::new(&g, 9, 1);
        pool.ensure(20_000);
        let c = Clustering::new(vec![NodeId(0)], vec![Some(0), Some(0)]);
        let m = avpr(&mut pool, &c);
        assert!((m.inner - 0.5).abs() < 0.02, "inner {}", m.inner);
    }

    #[test]
    fn outliers_are_excluded() {
        let g = two_certain_triangles();
        let mut pool = ComponentPool::new(&g, 1, 1);
        pool.ensure(5);
        // Only {0,1} clustered; the rest outliers.
        let c = Clustering::new(vec![NodeId(0)], vec![Some(0), Some(0), None, None, None, None]);
        let m = avpr(&mut pool, &c);
        assert_eq!(m.inner, 1.0);
        assert_eq!(m.outer, 0.0, "no covered cross pairs exist");
    }

    #[test]
    fn matches_brute_force_pairwise_average() {
        // Random-ish graph; compare the contingency computation against
        // direct pair enumeration via pool.pair_estimate.
        let mut b = GraphBuilder::new(6);
        for (u, v, p) in
            [(0, 1, 0.9), (1, 2, 0.4), (2, 3, 0.3), (3, 4, 0.8), (4, 5, 0.6), (0, 5, 0.2)]
        {
            b.add_edge(u, v, p).unwrap();
        }
        let g = b.build().unwrap();
        let mut pool = ComponentPool::new(&g, 4, 1);
        pool.ensure(500);
        let c = Clustering::new(
            vec![NodeId(1), NodeId(4)],
            vec![Some(0), Some(0), Some(0), Some(1), Some(1), Some(1)],
        );
        let m = avpr(&mut pool, &c);
        let mut inner_sum = 0.0;
        let mut inner_cnt = 0usize;
        let mut outer_sum = 0.0;
        let mut outer_cnt = 0usize;
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                let p = pool.pair_estimate(NodeId(u), NodeId(v));
                if c.cluster_of(NodeId(u)) == c.cluster_of(NodeId(v)) {
                    inner_sum += p;
                    inner_cnt += 1;
                } else {
                    outer_sum += p;
                    outer_cnt += 1;
                }
            }
        }
        assert!((m.inner - inner_sum / inner_cnt as f64).abs() < 1e-12);
        assert!((m.outer - outer_sum / outer_cnt as f64).abs() < 1e-12);
    }
}
