//! # ugraph-metrics — evaluation metrics of the paper's experiments
//!
//! Implements every measurement reported in §5 of *Clustering Uncertain
//! Graphs* (VLDB 2017):
//!
//! * [`quality`] — `p_min` and `p_avg`, the minimum/average connection
//!   probability of nodes to their cluster centers (Figure 1), estimated
//!   over a fresh Monte-Carlo sample pool (so an algorithm is never graded
//!   on its own training samples);
//! * [`avpr()`](avpr::avpr) — the **inner** and **outer Average Vertex Pairwise
//!   Reliability** (Figure 2): the average connection probability over
//!   same-cluster and cross-cluster node pairs respectively. Computed per
//!   sample from component/cluster contingency counts in `O(n)` per
//!   sample — not by enumerating the `Θ(n²)` pairs;
//! * [`prediction`] — the confusion matrix of co-clustered protein pairs
//!   against ground-truth complexes, with TPR/FPR (Table 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not panics; tests,
// benches, and doctests (separate crates / cfg(test) builds) may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod avpr;
pub mod prediction;
pub mod quality;
pub mod report;

pub use avpr::{avpr, Avpr};
pub use prediction::{confusion, ConfusionMatrix};
pub use quality::{clustering_quality, depth_clustering_quality, session_quality, Quality};
pub use report::Table;
