//! Deterministic fault injection for recovery testing.
//!
//! Real deployments lose shard regenerations to OOM kills, pool growth to
//! allocation failure, dataset reads to IO errors, and cache admissions
//! to budget pressure. This module plants **failpoints** at those sites
//! so tests can fail each one at a chosen point and assert the no-poison
//! invariant: the operation returns a typed
//! [`SamplingError::FaultInjected`], every ledger charge is rolled back,
//! and the session remains usable — re-issuing the failed request
//! completes bit-identically to an undisturbed run.
//!
//! A [`FaultPlan`] names which hit numbers of which [`FaultSite`]s fail;
//! [`install`] arms it **for the current thread only** (hooks fire on the
//! thread driving the solve, never inside rayon workers, so plans cannot
//! leak across tests running in parallel). The [`FaultGuard`] returned by
//! `install` disarms the plan when dropped.
//!
//! The hooks compile in by default (the tier-1 suite exercises them);
//! building `ugraph-sampling` with `--no-default-features` (or without
//! the `fault-injection` feature) strips them to nothing.

use std::fmt;

use crate::error::SamplingError;

/// A failpoint site of the sampling stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Regenerating an evicted shard from its RNG streams.
    ShardRegen,
    /// Growing a pool by one shard of fresh samples (`ensure`).
    PoolGrow,
    /// Reading or generating a dataset (exercised by the CLI layer).
    DatasetIo,
    /// Admitting a row into a budget-governed row cache.
    BudgetAdmission,
    /// Writing a protocol frame to a network socket (exercised by the
    /// server layer for torn-write simulation).
    WireWrite,
    /// Reading a protocol frame from a network socket (exercised by the
    /// server layer for dropped-read simulation, symmetric to
    /// [`FaultSite::WireWrite`]).
    WireRead,
    /// Dialing a TCP connection (exercised by the client pool for
    /// connect-refusal simulation).
    Connect,
    /// A mid-frame stall on the wire: the writer emits half a frame,
    /// pauses longer than a peer's IO deadline, then finishes — the slow
    /// peer the server's stall hardening must survive.
    WireStall,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::ShardRegen => write!(f, "shard regeneration"),
            FaultSite::PoolGrow => write!(f, "pool growth"),
            FaultSite::DatasetIo => write!(f, "dataset IO"),
            FaultSite::BudgetAdmission => write!(f, "budget admission"),
            FaultSite::WireWrite => write!(f, "wire write"),
            FaultSite::WireRead => write!(f, "wire read"),
            FaultSite::Connect => write!(f, "connection dial"),
            FaultSite::WireStall => write!(f, "mid-frame wire stall"),
        }
    }
}

const NUM_SITES: usize = 8;

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::ShardRegen => 0,
            FaultSite::PoolGrow => 1,
            FaultSite::DatasetIo => 2,
            FaultSite::BudgetAdmission => 3,
            FaultSite::WireWrite => 4,
            FaultSite::WireRead => 5,
            FaultSite::Connect => 6,
            FaultSite::WireStall => 7,
        }
    }
}

/// Which hits of which sites fail — a deterministic schedule, seeded
/// per-site by hit number rather than by wall clock, so a failing run is
/// exactly reproducible.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Per site: 1-based hit numbers that fail (empty = never fails).
    fail_hits: [Vec<u64>; NUM_SITES],
}

impl FaultPlan {
    /// A plan with no scheduled failures.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the `hit`-th (1-based) execution of `site` to fail.
    pub fn fail_at(mut self, site: FaultSite, hit: u64) -> Self {
        self.fail_hits[site.index()].push(hit);
        self
    }

    /// Schedules every execution of `site` to fail.
    pub fn fail_always(mut self, site: FaultSite) -> Self {
        self.fail_hits[site.index()].push(0); // 0 = wildcard
        self
    }

    fn fails(&self, site: FaultSite, hit: u64) -> bool {
        self.fail_hits[site.index()].iter().any(|&h| h == 0 || h == hit)
    }
}

#[cfg(feature = "fault-injection")]
mod registry {
    use super::{FaultPlan, NUM_SITES};
    use std::cell::RefCell;

    #[derive(Default)]
    pub(super) struct Active {
        pub(super) plan: FaultPlan,
        pub(super) hits: [u64; NUM_SITES],
    }

    thread_local! {
        pub(super) static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
    }
}

/// Disarms the thread's fault plan when dropped (returned by [`install`]).
#[derive(Debug)]
#[must_use = "dropping the guard disarms the plan immediately"]
pub struct FaultGuard(());

impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Arms `plan` for the current thread, replacing any previous plan and
/// resetting all hit counters. Disarm by dropping the returned guard (or
/// calling [`clear`]).
pub fn install(plan: FaultPlan) -> FaultGuard {
    #[cfg(feature = "fault-injection")]
    registry::ACTIVE.with(|a| {
        *a.borrow_mut() = Some(registry::Active { plan, hits: [0; NUM_SITES] });
    });
    #[cfg(not(feature = "fault-injection"))]
    let _ = plan;
    FaultGuard(())
}

/// Disarms the current thread's fault plan, if any.
pub fn clear() {
    #[cfg(feature = "fault-injection")]
    registry::ACTIVE.with(|a| *a.borrow_mut() = None);
}

/// Number of times `site` has been hit under the current plan (0 when no
/// plan is armed) — lets tests assert a failpoint was actually reached.
pub fn hits(site: FaultSite) -> u64 {
    #[cfg(feature = "fault-injection")]
    {
        registry::ACTIVE.with(|a| a.borrow().as_ref().map_or(0, |act| act.hits[site.index()]))
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
        0
    }
}

/// The failpoint hook: counts one hit of `site` against the current
/// thread's plan and fails if this hit is scheduled to. Without an armed
/// plan (or with the `fault-injection` feature disabled) this is a no-op
/// returning `Ok(())`.
#[inline]
pub fn hit(site: FaultSite) -> Result<(), SamplingError> {
    #[cfg(feature = "fault-injection")]
    {
        registry::ACTIVE.with(|a| {
            let mut active = a.borrow_mut();
            let Some(act) = active.as_mut() else { return Ok(()) };
            act.hits[site.index()] += 1;
            let hit = act.hits[site.index()];
            if act.plan.fails(site, hit) {
                Err(SamplingError::FaultInjected { site, hit })
            } else {
                Ok(())
            }
        })
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
        Ok(())
    }
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_hits_pass() {
        clear();
        assert_eq!(hit(FaultSite::ShardRegen), Ok(()));
        assert_eq!(hits(FaultSite::ShardRegen), 0);
    }

    #[test]
    fn plan_fails_the_scheduled_hit_only() {
        let _guard = install(FaultPlan::new().fail_at(FaultSite::PoolGrow, 2));
        assert_eq!(hit(FaultSite::PoolGrow), Ok(()));
        assert_eq!(
            hit(FaultSite::PoolGrow),
            Err(SamplingError::FaultInjected { site: FaultSite::PoolGrow, hit: 2 })
        );
        assert_eq!(hit(FaultSite::PoolGrow), Ok(()));
        // Other sites are untouched.
        assert_eq!(hit(FaultSite::DatasetIo), Ok(()));
        assert_eq!(hits(FaultSite::PoolGrow), 3);
    }

    #[test]
    fn fail_always_is_a_wildcard_and_guard_disarms() {
        {
            let _guard = install(FaultPlan::new().fail_always(FaultSite::ShardRegen));
            assert!(hit(FaultSite::ShardRegen).is_err());
            assert!(hit(FaultSite::ShardRegen).is_err());
        }
        assert_eq!(hit(FaultSite::ShardRegen), Ok(()));
    }

    #[test]
    fn reinstall_resets_counters() {
        let _guard = install(FaultPlan::new().fail_at(FaultSite::BudgetAdmission, 1));
        assert!(hit(FaultSite::BudgetAdmission).is_err());
        let _guard2 = install(FaultPlan::new().fail_at(FaultSite::BudgetAdmission, 2));
        assert_eq!(hit(FaultSite::BudgetAdmission), Ok(()));
        assert!(hit(FaultSite::BudgetAdmission).is_err());
    }
}
