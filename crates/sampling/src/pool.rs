//! Progressive sample pools — the backend implementations of the
//! [`WorldEngine`] seam.
//!
//! The clustering algorithms lower their probability threshold `q`
//! geometrically and re-estimate probabilities at each step (paper §4); the
//! required sample count grows as `q` shrinks. Pools therefore **grow
//! monotonically**: `ensure(r)` tops the pool up to `r` samples, reusing
//! everything drawn before — the progressive sampling strategy of the
//! paper. Because sample `i` is generated from a per-index RNG (see
//! [`crate::rng`]), the pool contents are independent of the growth
//! schedule, of the number of worker threads, **and of the backend**:
//!
//! * [`ComponentPool`] — scalar, unlimited connectivity: each world is
//!   reduced to its connected-component partition at generation time, so
//!   center queries only walk the center's component members;
//! * [`WorldPool`] — scalar, depth-limited: each world is kept as an edge
//!   bitset and queried with one bounded BFS per world;
//! * [`BitParallelPool`] — bit-parallel blocks: 64 worlds per machine word
//!   as structure-of-arrays edge masks (`masks[e]` spans 64 worlds of one
//!   block), queried with mask-propagating multi-world BFS — one traversal
//!   answers 64 worlds, for both unlimited and depth-limited semantics.
//!
//! ## Parallelism
//!
//! Generation (`ensure`) and the Monte-Carlo aggregation queries
//! (`counts_from_center`, `counts_within_depths`, `pair_count*`) run on
//! rayon, gated by the shared [`crate::tuning`] heuristics. Queries
//! partition their work items (sample rows, worlds, or 64-world blocks)
//! into chunks, accumulate per-chunk integer count vectors, and merge
//! them — so every estimate is bit-identical no matter how many threads
//! run, which the property tests assert.

use rayon::prelude::*;

use ugraph_graph::{
    Bitset, DepthBfs, Mask, MultiWorldBfs, NodeId, UncertainGraph, UnionFind, WorldView, LANES,
    MAX_SOURCES,
};

use crate::budget::{MemoryBudget, MemoryStats};
use crate::engine::{EngineStats, WorldEngine, DEPTH_UNLIMITED};
use crate::error::SamplingPhase;
use crate::faults::{self, FaultSite};
use crate::interrupt::RunState;
use crate::tuning::{
    chunked_counts, chunked_counts2_with, chunked_counts_with, chunked_sum_with,
    finalize_on_unlimited_query, ThreadConfig,
};
use crate::world::WorldSampler;

/// Blocks per shard of the width-64 bit-parallel backend — the granularity
/// at which pool storage is allocated, charged against a [`MemoryBudget`],
/// and evicted. Wider backends pack the same [`SHARD_WORLDS`] worlds into
/// proportionally fewer blocks per shard (`blocks_per_shard`), so
/// shard indices, touch stamps, and eviction order are identical at every
/// block width.
pub const SHARD_BLOCKS: usize = 16;

/// Worlds per shard (16 × 64 = 1,024 at every block width), the shard
/// granularity shared by all backends so they report memory uniformly.
pub const SHARD_WORLDS: usize = SHARD_BLOCKS * LANES;

/// Blocks per shard at block width `W` words (64·W worlds per block):
/// 16 for width 64, 4 for width 256, 2 for width 512 — always the same
/// [`SHARD_WORLDS`] worlds per shard.
#[inline]
const fn blocks_per_shard<const W: usize>() -> usize {
    SHARD_WORLDS / (W * LANES)
}

/// Residency metadata of one shard of a **scalar** pool (the shard's
/// samples live in the pool's flat storage; evicted samples are replaced
/// by empty placeholders so indices stay stable).
#[derive(Clone, Debug, Default)]
struct ShardMeta {
    /// Heap bytes currently charged to the budget for this shard.
    bytes: usize,
    /// Recency stamp from [`MemoryBudget::touch`].
    last_used: u64,
    /// Whether the shard's samples are materialized.
    resident: bool,
}

/// Index of the least-recently-used resident shard, by `(stamp, index)` —
/// the deterministic victim order of the eviction loop.
fn lru_victim<T>(
    shards: &[T],
    resident: impl Fn(&T) -> bool,
    stamp: impl Fn(&T) -> u64,
) -> Option<usize> {
    shards
        .iter()
        .enumerate()
        .filter(|(_, sh)| resident(sh))
        .min_by_key(|&(s, sh)| (stamp(sh), s))
        .map(|(s, _)| s)
}

/// The shard indices covering sample range `[lo, hi)`.
#[inline]
fn shard_span(lo: usize, hi: usize) -> std::ops::RangeInclusive<usize> {
    debug_assert!(lo < hi);
    lo / SHARD_WORLDS..=(hi - 1) / SHARD_WORLDS
}

/// Storage width of component labels and membership indexes.
///
/// Labels and node ids are at most `n − 1`, so graphs with
/// `n ≤ u16::MAX` store them as `u16` — halving label memory on every
/// shipped dataset — while larger graphs use the `u32` path behind the
/// same interface. Both widths are property-tested against each other.
trait Label: Copy + Eq + Send + Sync + std::fmt::Debug + 'static {
    fn from_u32(x: u32) -> Self;
    fn index(self) -> usize;
}

impl Label for u16 {
    #[inline]
    fn from_u32(x: u32) -> Self {
        debug_assert!(x <= u16::MAX as u32);
        x as u16
    }
    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

impl Label for u32 {
    #[inline]
    fn from_u32(x: u32) -> Self {
        x
    }
    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Whether `n`-node labels fit the narrow (`u16`) width.
#[inline]
fn narrow_fits(n: usize) -> bool {
    n <= u16::MAX as usize
}

/// One sampled world reduced to its connected-component partition, at a
/// fixed label width `L`.
///
/// Stores the canonical label per node plus a *membership index* (nodes
/// sorted by label with bucket offsets), so all members of a given
/// component can be enumerated in time proportional to the component size.
#[derive(Clone, Debug)]
struct RowData<L> {
    /// Canonical component label per node.
    labels: Vec<L>,
    /// Node indices grouped by label.
    order: Vec<L>,
    /// `starts[c]..starts[c+1]` delimits component `c` in `order`.
    starts: Vec<u32>,
}

impl<L: Label> RowData<L> {
    fn build(labels: &[u32], num_components: usize) -> Self {
        let n = labels.len();
        let mut starts = vec![0u32; num_components + 1];
        for &l in labels {
            starts[l as usize + 1] += 1;
        }
        for c in 0..num_components {
            starts[c + 1] += starts[c];
        }
        let mut cursor = starts.clone();
        let mut order = vec![L::from_u32(0); n];
        for (node, &l) in labels.iter().enumerate() {
            let slot = cursor[l as usize] as usize;
            order[slot] = L::from_u32(node as u32);
            cursor[l as usize] += 1;
        }
        let labels = labels.iter().map(|&l| L::from_u32(l)).collect();
        RowData { labels, order, starts }
    }

    #[inline]
    fn members(&self, label: usize) -> &[L] {
        let lo = self.starts[label] as usize;
        let hi = self.starts[label + 1] as usize;
        &self.order[lo..hi]
    }

    /// Increments `counts[u]` for every member `u` of `center`'s component.
    #[inline]
    fn accumulate_center(&self, center: usize, counts: &mut [u32]) {
        for &u in self.members(self.labels[center].index()) {
            counts[u.index()] += 1;
        }
    }
}

/// [`RowData`] at the width picked for the pool's node count — the
/// narrow/wide dispatch point of the scalar backend.
#[derive(Clone, Debug)]
enum SampleRow {
    Narrow(RowData<u16>),
    Wide(RowData<u32>),
}

impl SampleRow {
    fn build(labels: &[u32], num_components: usize, wide: bool) -> Self {
        if wide {
            SampleRow::Wide(RowData::build(labels, num_components))
        } else {
            SampleRow::Narrow(RowData::build(labels, num_components))
        }
    }

    #[inline]
    fn accumulate_center(&self, center: usize, counts: &mut [u32]) {
        match self {
            SampleRow::Narrow(r) => r.accumulate_center(center, counts),
            SampleRow::Wide(r) => r.accumulate_center(center, counts),
        }
    }

    #[inline]
    fn connected(&self, u: usize, v: usize) -> bool {
        match self {
            SampleRow::Narrow(r) => r.labels[u] == r.labels[v],
            SampleRow::Wide(r) => r.labels[u] == r.labels[v],
        }
    }

    fn labels_into(&self, out: &mut [u32]) {
        match self {
            SampleRow::Narrow(r) => {
                for (o, &l) in out.iter_mut().zip(&r.labels) {
                    *o = u32::from(l);
                }
            }
            SampleRow::Wide(r) => out.copy_from_slice(&r.labels),
        }
    }

    fn members_u32(&self, label: u32) -> Vec<u32> {
        match self {
            SampleRow::Narrow(r) => {
                r.members(label as usize).iter().map(|&u| u32::from(u)).collect()
            }
            SampleRow::Wide(r) => r.members(label as usize).to_vec(),
        }
    }

    fn component_count(&self) -> usize {
        match self {
            SampleRow::Narrow(r) => r.starts.len() - 1,
            SampleRow::Wide(r) => r.starts.len() - 1,
        }
    }

    /// The empty placeholder standing in for an evicted row (indices stay
    /// stable; the shard regenerates as a whole on first touch).
    fn placeholder(wide: bool) -> Self {
        SampleRow::build(&[], 0, wide)
    }

    /// Heap bytes of this row — the unit of shard accounting.
    fn heap_bytes(&self) -> usize {
        match self {
            SampleRow::Narrow(r) => (r.labels.len() + r.order.len()) * 2 + r.starts.len() * 4,
            SampleRow::Wide(r) => (r.labels.len() + r.order.len() + r.starts.len()) * 4,
        }
    }
}

/// Pool of per-sample connected-component partitions, for **unlimited**
/// connection probabilities (the scalar backend of [`WorldEngine`]).
#[derive(Debug)]
pub struct ComponentPool<'g> {
    sampler: WorldSampler<'g>,
    rows: Vec<SampleRow>,
    config: ThreadConfig,
    /// `true` = `u32` labels; picked from the node count at construction
    /// (see [`Label`]), overridable for width-equivalence tests.
    wide: bool,
    /// Per-[`SHARD_WORLDS`]-rows residency/accounting metadata.
    shards: Vec<ShardMeta>,
    /// Shared byte ledger governing eviction (unbounded by default).
    budget: MemoryBudget,
    /// Shards evicted / regenerated by this pool (cumulative).
    evicted: u64,
    regenerated: u64,
    /// Per-solve interruption state, polled at shard boundaries
    /// (unarmed by default — see [`RunState`]).
    run: RunState,
}

impl Clone for ComponentPool<'_> {
    fn clone(&self) -> Self {
        // The clone shares the budget handle, so its copy of the resident
        // rows is charged to the ledger like any other pool's.
        self.budget.charge(self.shards.iter().map(|m| m.bytes).sum());
        ComponentPool {
            sampler: self.sampler,
            rows: self.rows.clone(),
            config: self.config.clone(),
            wide: self.wide,
            shards: self.shards.clone(),
            budget: self.budget.clone(),
            evicted: self.evicted,
            regenerated: self.regenerated,
            run: self.run.clone(),
        }
    }
}

impl Drop for ComponentPool<'_> {
    fn drop(&mut self) {
        self.budget.release(self.shards.iter().map(|m| m.bytes).sum());
    }
}

impl<'g> ComponentPool<'g> {
    /// Creates an empty pool over `graph` with master `seed`. `threads = 0`
    /// uses all available cores.
    pub fn new(graph: &'g UncertainGraph, seed: u64, threads: usize) -> Self {
        ComponentPool {
            sampler: WorldSampler::new(graph, seed),
            rows: Vec::new(),
            config: ThreadConfig::new(threads),
            wide: !narrow_fits(graph.num_nodes()),
            shards: Vec::new(),
            budget: MemoryBudget::unbounded(),
            evicted: 0,
            regenerated: 0,
            run: RunState::unlimited(),
        }
    }

    /// Binds the pool to a (possibly shared) memory budget: the resident
    /// bytes move to the new ledger and the pool immediately sheds
    /// least-recently-used shards if the new ledger is over its limit.
    pub fn set_memory_budget(&mut self, budget: MemoryBudget) {
        let held: usize = self.shards.iter().map(|m| m.bytes).sum();
        self.budget.release(held);
        budget.charge(held);
        self.budget = budget;
        self.trim_to_budget();
    }

    /// Attaches the per-solve interruption state; see
    /// [`WorldEngine::set_run_state`].
    pub fn set_run_state(&mut self, run: RunState) {
        self.run = run;
    }

    /// Resident bytes, the budget limit, and this pool's cumulative shard
    /// eviction/regeneration counters.
    pub fn memory_stats(&self) -> MemoryStats {
        MemoryStats {
            bytes_held: self.shards.iter().map(|m| m.bytes).sum(),
            bytes_limit: self.budget.limit(),
            shards_evicted: self.evicted,
            shards_regenerated: self.regenerated,
        }
    }

    /// Re-derives shard `s`'s byte charge from its rows and settles the
    /// difference with the ledger.
    fn sync_shard_bytes(&mut self, s: usize) {
        let lo = s * SHARD_WORLDS;
        let hi = ((s + 1) * SHARD_WORLDS).min(self.rows.len());
        let now: usize = self.rows[lo..hi].iter().map(SampleRow::heap_bytes).sum();
        let meta = &mut self.shards[s];
        if now >= meta.bytes {
            self.budget.charge(now - meta.bytes);
        } else {
            self.budget.release(meta.bytes - now);
        }
        meta.bytes = now;
    }

    /// The resolve-or-regenerate accessor of every aggregate query path:
    /// stamps the shards covering sample range `[lo, hi)` as recently used
    /// and regenerates any evicted one from its per-index RNG streams —
    /// bit-identical to the originally sampled rows. Doubles as the
    /// query-path cooperative checkpoint and the [`FaultSite::ShardRegen`]
    /// failpoint: returns `false` (recording the error on the
    /// [`RunState`]) if the query should be abandoned, in which case no
    /// shard has been touched beyond its recency stamp and the caller
    /// must not read the rows.
    #[must_use]
    fn resolve_range(&mut self, lo: usize, hi: usize) -> bool {
        if lo >= hi {
            return true;
        }
        if self.run.checkpoint(SamplingPhase::Sweep) {
            return false;
        }
        for s in shard_span(lo, hi) {
            self.shards[s].last_used = self.budget.touch();
            if !self.shards[s].resident {
                if let Err(e) = faults::hit(FaultSite::ShardRegen) {
                    self.run.record(e);
                    return false;
                }
                self.regenerate_shard(s);
            }
        }
        true
    }

    /// Infallible single-sample resolve of the per-sample accessors
    /// (`labels*`, `component_*`): these back evaluation paths that run
    /// outside any solve, so they are neither checkpoints nor failpoints.
    fn resolve_point(&mut self, i: usize) {
        let s = i / SHARD_WORLDS;
        self.shards[s].last_used = self.budget.touch();
        if !self.shards[s].resident {
            self.regenerate_shard(s);
        }
    }

    fn regenerate_shard(&mut self, s: usize) {
        let n = self.graph().num_nodes();
        let sampler = self.sampler;
        let wide = self.wide;
        let lo = s * SHARD_WORLDS;
        let hi = ((s + 1) * SHARD_WORLDS).min(self.rows.len());
        if self.config.parallel_generation(hi - lo) {
            let rows: Vec<SampleRow> = self.config.run(|| {
                (lo as u64..hi as u64)
                    .into_par_iter()
                    .map_init(
                        || (UnionFind::new(n), vec![0u32; n]),
                        |(uf, labels), i| {
                            let comps = sampler.sample_components(i, uf, labels);
                            SampleRow::build(labels, comps, wide)
                        },
                    )
                    .collect()
            });
            for (i, row) in rows.into_iter().enumerate() {
                self.rows[lo + i] = row;
            }
        } else {
            let mut uf = UnionFind::new(n);
            let mut labels = vec![0u32; n];
            for i in lo..hi {
                let comps = sampler.sample_components(i as u64, &mut uf, &mut labels);
                self.rows[i] = SampleRow::build(&labels, comps, wide);
            }
        }
        self.shards[s].resident = true;
        self.regenerated += 1;
        self.budget.note_regeneration();
        self.sync_shard_bytes(s);
    }

    fn evict_shard(&mut self, s: usize) {
        let lo = s * SHARD_WORLDS;
        let hi = ((s + 1) * SHARD_WORLDS).min(self.rows.len());
        for row in &mut self.rows[lo..hi] {
            *row = SampleRow::placeholder(self.wide);
        }
        self.shards[s].resident = false;
        self.evicted += 1;
        self.budget.note_eviction();
        self.sync_shard_bytes(s);
    }

    /// Evicts least-recently-used shards until the shared ledger fits its
    /// limit (or this pool has nothing left to shed) — the epilogue of
    /// `ensure` and of every aggregate query.
    fn trim_to_budget(&mut self) {
        while self.budget.over_budget() {
            match lru_victim(&self.shards, |m| m.resident, |m| m.last_used) {
                Some(s) => self.evict_shard(s),
                None => break,
            }
        }
    }

    /// Forces the wide (`u32`) label path even on small graphs. Counts are
    /// identical either way; the property tests use this to exercise the
    /// wide path without 65k-node instances.
    ///
    /// # Panics
    /// Panics if the pool already holds samples (rows are stored at a
    /// single width).
    #[doc(hidden)]
    pub fn with_wide_labels(mut self, wide: bool) -> Self {
        assert!(self.rows.is_empty(), "label width is fixed once samples exist");
        self.wide = wide || !narrow_fits(self.graph().num_nodes());
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g UncertainGraph {
        self.sampler.graph()
    }

    /// Number of samples currently in the pool.
    pub fn num_samples(&self) -> usize {
        self.rows.len()
    }

    /// Grows the pool to at least `r` samples (no-op if already there).
    ///
    /// Samples are drawn in parallel; sample `i` always comes from RNG
    /// stream `i`, so the result is independent of the thread count.
    pub fn ensure(&mut self, r: usize) {
        let cur = self.rows.len();
        if r <= cur {
            return;
        }
        let n = self.graph().num_nodes();
        let sampler = self.sampler;
        let wide = self.wide;
        // Rows landing in a currently evicted trailing shard are appended
        // as placeholders — that shard regenerates as a whole on its next
        // touch, filling them from their RNG streams.
        let mut from = cur;
        if let Some(meta) = self.shards.last() {
            if !meta.resident {
                let end = (self.shards.len() * SHARD_WORLDS).min(r);
                self.rows.extend((cur..end).map(|_| SampleRow::placeholder(wide)));
                from = end;
                let s = self.shards.len() - 1;
                self.shards[s].last_used = self.budget.touch();
                self.sync_shard_bytes(s);
            }
        }
        // Grow shard by shard: each chunk is generated, appended, and
        // accounted as a unit, with a cooperative checkpoint (and the
        // `PoolGrow` failpoint) between chunks — an interrupted `ensure`
        // leaves a consistent, smaller pool that a re-issued request tops
        // up bit-identically.
        while from < r {
            if self.run.checkpoint(SamplingPhase::Generation) {
                break;
            }
            if let Err(e) = faults::hit(FaultSite::PoolGrow) {
                self.run.record(e);
                break;
            }
            let hi = ((from / SHARD_WORLDS + 1) * SHARD_WORLDS).min(r);
            if !self.config.parallel_generation(hi - from) {
                let mut uf = UnionFind::new(n);
                let mut labels = vec![0u32; n];
                for i in from as u64..hi as u64 {
                    let comps = sampler.sample_components(i, &mut uf, &mut labels);
                    self.rows.push(SampleRow::build(&labels, comps, wide));
                }
            } else {
                let new_rows: Vec<SampleRow> = self.config.run(|| {
                    (from as u64..hi as u64)
                        .into_par_iter()
                        .map_init(
                            || (UnionFind::new(n), vec![0u32; n]),
                            |(uf, labels), i| {
                                let comps = sampler.sample_components(i, uf, labels);
                                SampleRow::build(labels, comps, wide)
                            },
                        )
                        .collect()
                });
                self.rows.extend(new_rows);
            }
            // Account the finished chunk's shard, then move on.
            let s = from / SHARD_WORLDS;
            if s == self.shards.len() {
                self.shards.push(ShardMeta { bytes: 0, last_used: 0, resident: true });
            }
            self.shards[s].last_used = self.budget.touch();
            self.sync_shard_bytes(s);
            from = hi;
        }
        self.trim_to_budget();
    }

    /// Component labels of sample `i` (one per node), widened to `u32`.
    /// Regenerates `i`'s shard if it was evicted (these per-sample
    /// accessors resolve but do not trim — callers iterating the pool keep
    /// it resident; the next aggregate query or `ensure` settles the
    /// ledger).
    pub fn labels(&mut self, i: usize) -> Vec<u32> {
        let mut out = vec![0u32; self.graph().num_nodes()];
        self.labels_into(i, &mut out);
        out
    }

    /// Writes the component labels of sample `i` into `out` (the
    /// allocation-free form of [`ComponentPool::labels`]).
    ///
    /// # Panics
    /// Panics if `out.len() != n`.
    pub fn labels_into(&mut self, i: usize, out: &mut [u32]) {
        assert_eq!(out.len(), self.graph().num_nodes(), "labels buffer has wrong length");
        self.resolve_point(i);
        self.rows[i].labels_into(out);
    }

    /// Members of the component with `label` in sample `i`.
    pub fn component_members(&mut self, i: usize, label: u32) -> Vec<u32> {
        self.resolve_point(i);
        self.rows[i].members_u32(label)
    }

    /// Number of components in sample `i`.
    pub fn component_count(&mut self, i: usize) -> usize {
        self.resolve_point(i);
        self.rows[i].component_count()
    }

    /// For every node `u`, the number of samples in which `u` lies in the
    /// same component as `center`. `p̃(u, center) = out[u] / num_samples()`.
    ///
    /// Runs in `Σ_i |comp_i(center)|` — only the center's component members
    /// are touched per sample, which on sparse sampled worlds is far below
    /// `n·r`. Sample rows are processed in parallel chunks; integer count
    /// merging keeps the result independent of the chunking.
    ///
    /// # Panics
    /// Panics if `out.len() != n`.
    pub fn counts_from_center(&mut self, center: NodeId, out: &mut [u32]) {
        let len = self.rows.len();
        self.counts_from_center_range(center, 0, len, out)
    }

    /// The kernel of the center-count queries, over rows already resolved
    /// by the caller.
    fn counts_center_resident(&self, center: NodeId, lo: usize, hi: usize, out: &mut [u32]) {
        let n = self.graph().num_nodes();
        let run = &self.run;
        let accumulate = |counts: &mut [u32], (): &mut (), rows: &[SampleRow]| {
            for row in rows {
                // Cooperative per-row checkpoint (one relaxed load): once
                // the run trips, remaining rows are skipped and the
                // partial counts are discarded by the fallible caller.
                if run.checkpoint(SamplingPhase::Sweep) {
                    return;
                }
                row.accumulate_center(center.index(), counts);
            }
        };
        chunked_counts(&self.config, &self.rows[lo..hi], n, n, accumulate, out);
    }

    /// Batched [`ComponentPool::counts_from_center`]: one count row per
    /// requested center, row-major in `out` (`out[j * n + u]`).
    ///
    /// Implemented as a per-center loop: the membership index already makes
    /// a single-center sweep proportional to the center's component sizes,
    /// and keeping each pass focused on one `n`-sized output row is faster
    /// than a transposed one-pass sweep that scatters writes across all
    /// `k` rows (measured on the Krogan-like instance). The batch entry
    /// point still matters for the seam: other backends amortize real work
    /// here, and callers stay backend-agnostic.
    ///
    /// # Panics
    /// Panics if `out.len() != centers.len() * n`.
    pub fn counts_from_centers(&mut self, centers: &[NodeId], out: &mut [u32]) {
        let len = self.rows.len();
        self.counts_from_centers_range(centers, 0, len, out)
    }

    /// Batched [`ComponentPool::counts_from_center_range`]: one count row
    /// per requested center over the sample window `[lo, hi)`, row-major
    /// in `out`. Like [`ComponentPool::counts_from_centers`], a per-center
    /// loop — the membership index already makes each pass proportional to
    /// the center's component sizes — but the batch entry point keeps
    /// oracle top-up waves backend-agnostic.
    ///
    /// # Panics
    /// Panics if `out.len() != centers.len() * n`, `lo > hi`, or
    /// `hi > num_samples()`.
    pub fn counts_from_centers_range(
        &mut self,
        centers: &[NodeId],
        lo: usize,
        hi: usize,
        out: &mut [u32],
    ) {
        let n = self.graph().num_nodes();
        let k = centers.len();
        assert_eq!(out.len(), k * n, "batch counts buffer has wrong length");
        assert!(lo <= hi && hi <= self.rows.len(), "invalid sample range [{lo}, {hi})");
        if !self.resolve_range(lo, hi) {
            return;
        }
        for (j, &c) in centers.iter().enumerate() {
            self.counts_center_resident(c, lo, hi, &mut out[j * n..(j + 1) * n]);
        }
        self.trim_to_budget();
    }

    /// [`ComponentPool::counts_from_center`] restricted to the samples with
    /// index in `[lo, hi)` — counts over disjoint ranges add up exactly.
    ///
    /// # Panics
    /// Panics if `out.len() != n`, `lo > hi`, or `hi > num_samples()`.
    pub fn counts_from_center_range(
        &mut self,
        center: NodeId,
        lo: usize,
        hi: usize,
        out: &mut [u32],
    ) {
        let n = self.graph().num_nodes();
        assert_eq!(out.len(), n, "counts buffer has wrong length");
        assert!(lo <= hi && hi <= self.rows.len(), "invalid sample range [{lo}, {hi})");
        if !self.resolve_range(lo, hi) {
            return;
        }
        self.counts_center_resident(center, lo, hi, out);
        self.trim_to_budget();
    }

    /// Number of samples where `u` and `v` are connected.
    pub fn pair_count(&mut self, u: NodeId, v: NodeId) -> usize {
        let len = self.rows.len();
        self.pair_count_range(u, v, 0, len)
    }

    /// [`ComponentPool::pair_count`] restricted to the samples with index
    /// in `[lo, hi)` — one label comparison per in-window sample.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > num_samples()`.
    pub fn pair_count_range(&mut self, u: NodeId, v: NodeId, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi <= self.rows.len(), "invalid sample range [{lo}, {hi})");
        if !self.resolve_range(lo, hi) {
            return 0;
        }
        let total = chunked_sum_with(
            &self.config,
            &self.rows[lo..hi],
            1,
            &mut (),
            || (),
            |(), row| usize::from(row.connected(u.index(), v.index())),
        );
        self.trim_to_budget();
        total
    }

    /// The estimator `p̃(u, v)` of Eq. 3. Returns 0 for an empty pool.
    pub fn pair_estimate(&mut self, u: NodeId, v: NodeId) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.pair_count(u, v) as f64 / self.rows.len() as f64
    }
}

impl WorldEngine for ComponentPool<'_> {
    fn set_memory_budget(&mut self, budget: MemoryBudget) {
        ComponentPool::set_memory_budget(self, budget)
    }

    fn set_run_state(&mut self, run: RunState) {
        ComponentPool::set_run_state(self, run)
    }

    fn memory_stats(&self) -> MemoryStats {
        ComponentPool::memory_stats(self)
    }

    fn graph(&self) -> &UncertainGraph {
        ComponentPool::graph(self)
    }

    fn supports_finite_depths(&self) -> bool {
        false
    }

    fn num_samples(&self) -> usize {
        ComponentPool::num_samples(self)
    }

    fn ensure(&mut self, r: usize) {
        ComponentPool::ensure(self, r)
    }

    fn counts_from_center(&mut self, center: NodeId, out: &mut [u32]) {
        ComponentPool::counts_from_center(self, center, out)
    }

    fn counts_from_centers(&mut self, centers: &[NodeId], out: &mut [u32]) {
        ComponentPool::counts_from_centers(self, centers, out)
    }

    fn counts_from_center_range(&mut self, center: NodeId, lo: usize, hi: usize, out: &mut [u32]) {
        ComponentPool::counts_from_center_range(self, center, lo, hi, out)
    }

    fn counts_from_centers_range(
        &mut self,
        centers: &[NodeId],
        lo: usize,
        hi: usize,
        out: &mut [u32],
    ) {
        ComponentPool::counts_from_centers_range(self, centers, lo, hi, out)
    }

    fn pair_count(&mut self, u: NodeId, v: NodeId) -> usize {
        ComponentPool::pair_count(self, u, v)
    }

    fn pair_count_range(&mut self, u: NodeId, v: NodeId, lo: usize, hi: usize) -> usize {
        ComponentPool::pair_count_range(self, u, v, lo, hi)
    }

    /// # Panics
    /// Panics if `depth` is finite (see
    /// [`counts_within_depths`](WorldEngine::counts_within_depths)).
    fn pair_count_within_range(
        &mut self,
        u: NodeId,
        v: NodeId,
        depth: u32,
        lo: usize,
        hi: usize,
    ) -> usize {
        assert!(
            depth == DEPTH_UNLIMITED,
            "ComponentPool answers unlimited-depth queries only; use WorldPool or \
             BitParallelPool for finite depths"
        );
        ComponentPool::pair_count_range(self, u, v, lo, hi)
    }

    /// Component labels carry no distance information, so this scalar
    /// backend only answers [`DEPTH_UNLIMITED`] depths.
    ///
    /// # Panics
    /// Panics if either depth is finite.
    fn counts_within_depths(
        &mut self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        assert!(
            d_select == DEPTH_UNLIMITED && d_cover == DEPTH_UNLIMITED,
            "ComponentPool answers unlimited-depth queries only; use WorldPool or \
             BitParallelPool for finite depths"
        );
        ComponentPool::counts_from_center(self, center, out_cover);
        out_select.copy_from_slice(out_cover);
    }

    /// # Panics
    /// Panics if either depth is finite (see
    /// [`counts_within_depths`](WorldEngine::counts_within_depths)).
    fn counts_within_depths_batch(
        &mut self,
        centers: &[NodeId],
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        assert!(
            d_select == DEPTH_UNLIMITED && d_cover == DEPTH_UNLIMITED,
            "ComponentPool answers unlimited-depth queries only; use WorldPool or \
             BitParallelPool for finite depths"
        );
        ComponentPool::counts_from_centers(self, centers, out_cover);
        out_select.copy_from_slice(out_cover);
    }

    /// # Panics
    /// Panics if either depth is finite (see
    /// [`counts_within_depths`](WorldEngine::counts_within_depths)).
    fn counts_within_depths_range(
        &mut self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        lo: usize,
        hi: usize,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        assert!(
            d_select == DEPTH_UNLIMITED && d_cover == DEPTH_UNLIMITED,
            "ComponentPool answers unlimited-depth queries only; use WorldPool or \
             BitParallelPool for finite depths"
        );
        ComponentPool::counts_from_center_range(self, center, lo, hi, out_cover);
        out_select.copy_from_slice(out_cover);
    }

    /// # Panics
    /// Panics if either depth is finite (see
    /// [`counts_within_depths`](WorldEngine::counts_within_depths)).
    fn counts_within_depths_batch_range(
        &mut self,
        centers: &[NodeId],
        d_select: u32,
        d_cover: u32,
        lo: usize,
        hi: usize,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        assert!(
            d_select == DEPTH_UNLIMITED && d_cover == DEPTH_UNLIMITED,
            "ComponentPool answers unlimited-depth queries only; use WorldPool or \
             BitParallelPool for finite depths"
        );
        ComponentPool::counts_from_centers_range(self, centers, lo, hi, out_cover);
        out_select.copy_from_slice(out_cover);
    }

    /// # Panics
    /// Panics if `depth` is finite (see
    /// [`counts_within_depths`](WorldEngine::counts_within_depths)).
    fn pair_count_within(&mut self, u: NodeId, v: NodeId, depth: u32) -> usize {
        assert!(
            depth == DEPTH_UNLIMITED,
            "ComponentPool answers unlimited-depth queries only; use WorldPool or \
             BitParallelPool for finite depths"
        );
        ComponentPool::pair_count(self, u, v)
    }
}

/// Pool of per-sample edge bitsets, for **depth-limited** d-connection
/// probabilities (paper §3.4) — the scalar depth-capable backend of
/// [`WorldEngine`], one bounded BFS per world per query.
#[derive(Debug)]
pub struct WorldPool<'g> {
    sampler: WorldSampler<'g>,
    worlds: Vec<Bitset>,
    config: ThreadConfig,
    /// Reusable bounded-BFS workspace for serial query paths; parallel
    /// chunks build their own.
    bfs: DepthBfs,
    /// Per-[`SHARD_WORLDS`]-worlds residency/accounting metadata.
    shards: Vec<ShardMeta>,
    /// Shared byte ledger governing eviction (unbounded by default).
    budget: MemoryBudget,
    /// Shards evicted / regenerated by this pool (cumulative).
    evicted: u64,
    regenerated: u64,
    /// Per-solve interruption state, polled at shard/world boundaries
    /// (unarmed by default — see [`RunState`]).
    run: RunState,
}

impl Clone for WorldPool<'_> {
    fn clone(&self) -> Self {
        // The clone shares the budget handle, so its copy of the resident
        // worlds is charged to the ledger like any other pool's.
        self.budget.charge(self.shards.iter().map(|m| m.bytes).sum());
        WorldPool {
            sampler: self.sampler,
            worlds: self.worlds.clone(),
            config: self.config.clone(),
            bfs: self.bfs.clone(),
            shards: self.shards.clone(),
            budget: self.budget.clone(),
            evicted: self.evicted,
            regenerated: self.regenerated,
            run: self.run.clone(),
        }
    }
}

impl Drop for WorldPool<'_> {
    fn drop(&mut self) {
        self.budget.release(self.shards.iter().map(|m| m.bytes).sum());
    }
}

impl<'g> WorldPool<'g> {
    /// Creates an empty world pool over `graph` with master `seed`.
    /// `threads = 0` uses all available cores.
    pub fn new(graph: &'g UncertainGraph, seed: u64, threads: usize) -> Self {
        WorldPool {
            sampler: WorldSampler::new(graph, seed),
            worlds: Vec::new(),
            config: ThreadConfig::new(threads),
            bfs: DepthBfs::new(graph.num_nodes()),
            shards: Vec::new(),
            budget: MemoryBudget::unbounded(),
            evicted: 0,
            regenerated: 0,
            run: RunState::unlimited(),
        }
    }

    /// Binds the pool to a (possibly shared) memory budget: the resident
    /// bytes move to the new ledger and the pool immediately sheds
    /// least-recently-used shards if the new ledger is over its limit.
    pub fn set_memory_budget(&mut self, budget: MemoryBudget) {
        let held: usize = self.shards.iter().map(|m| m.bytes).sum();
        self.budget.release(held);
        budget.charge(held);
        self.budget = budget;
        self.trim_to_budget();
    }

    /// Resident bytes, the budget limit, and this pool's cumulative shard
    /// eviction/regeneration counters.
    pub fn memory_stats(&self) -> MemoryStats {
        MemoryStats {
            bytes_held: self.shards.iter().map(|m| m.bytes).sum(),
            bytes_limit: self.budget.limit(),
            shards_evicted: self.evicted,
            shards_regenerated: self.regenerated,
        }
    }

    /// Attaches the per-solve interruption state; see
    /// [`WorldEngine::set_run_state`].
    pub fn set_run_state(&mut self, run: RunState) {
        self.run = run;
    }

    /// Re-derives shard `s`'s byte charge from its world bitsets and
    /// settles the difference with the ledger.
    fn sync_shard_bytes(&mut self, s: usize) {
        let lo = s * SHARD_WORLDS;
        let hi = ((s + 1) * SHARD_WORLDS).min(self.worlds.len());
        let now: usize = self.worlds[lo..hi].iter().map(|w| w.blocks().len() * 8).sum();
        let meta = &mut self.shards[s];
        if now >= meta.bytes {
            self.budget.charge(now - meta.bytes);
        } else {
            self.budget.release(meta.bytes - now);
        }
        meta.bytes = now;
    }

    /// The resolve-or-regenerate accessor of every aggregate query path:
    /// stamps the shards covering world range `[lo, hi)` as recently used
    /// and regenerates any evicted one from its per-index RNG streams —
    /// bit-identical to the originally sampled worlds.
    ///
    /// Doubles as the query-entry cooperative checkpoint: returns `false`
    /// (without touching any world data) when the attached [`RunState`]
    /// has tripped, or records the error and returns `false` when the
    /// [`FaultSite::ShardRegen`] failpoint fires. The failpoint fires
    /// *before* regeneration mutates anything, so a shard is always either
    /// fully regenerated or untouched.
    #[must_use]
    fn resolve_range(&mut self, lo: usize, hi: usize) -> bool {
        if lo >= hi {
            return true;
        }
        if self.run.checkpoint(SamplingPhase::Sweep) {
            return false;
        }
        for s in shard_span(lo, hi) {
            self.shards[s].last_used = self.budget.touch();
            if !self.shards[s].resident {
                if let Err(e) = faults::hit(FaultSite::ShardRegen) {
                    self.run.record(e);
                    return false;
                }
                self.regenerate_shard(s);
            }
        }
        true
    }

    /// Infallible single-world resolve for per-sample accessors: touches
    /// and (if evicted) regenerates world `i`'s shard with no checkpoint
    /// and no failpoint, so evaluation paths that walk the pool world by
    /// world cannot be broken by an armed fault plan or a tripped run
    /// state.
    fn resolve_point(&mut self, i: usize) {
        let s = i / SHARD_WORLDS;
        self.shards[s].last_used = self.budget.touch();
        if !self.shards[s].resident {
            self.regenerate_shard(s);
        }
    }

    fn regenerate_shard(&mut self, s: usize) {
        let m = self.graph().num_edges();
        let sampler = self.sampler;
        let lo = s * SHARD_WORLDS;
        let hi = ((s + 1) * SHARD_WORLDS).min(self.worlds.len());
        let draw = move |i: u64| {
            let mut world = Bitset::with_len(m);
            sampler
                .sample_into(i, &mut world)
                .unwrap_or_else(|e| unreachable!("pool-sized bitset cannot mismatch: {e}"));
            world
        };
        if self.config.parallel_generation(hi - lo) {
            let worlds: Vec<Bitset> =
                self.config.run(|| (lo as u64..hi as u64).into_par_iter().map(draw).collect());
            for (i, world) in worlds.into_iter().enumerate() {
                self.worlds[lo + i] = world;
            }
        } else {
            for i in lo..hi {
                self.worlds[i] = draw(i as u64);
            }
        }
        self.shards[s].resident = true;
        self.regenerated += 1;
        self.budget.note_regeneration();
        self.sync_shard_bytes(s);
    }

    fn evict_shard(&mut self, s: usize) {
        let lo = s * SHARD_WORLDS;
        let hi = ((s + 1) * SHARD_WORLDS).min(self.worlds.len());
        for world in &mut self.worlds[lo..hi] {
            *world = Bitset::with_len(0);
        }
        self.shards[s].resident = false;
        self.evicted += 1;
        self.budget.note_eviction();
        self.sync_shard_bytes(s);
    }

    /// Evicts least-recently-used shards until the shared ledger fits its
    /// limit (or this pool has nothing left to shed) — the epilogue of
    /// `ensure` and of every aggregate query.
    fn trim_to_budget(&mut self) {
        while self.budget.over_budget() {
            match lru_victim(&self.shards, |m| m.resident, |m| m.last_used) {
                Some(s) => self.evict_shard(s),
                None => break,
            }
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g UncertainGraph {
        self.sampler.graph()
    }

    /// Number of sampled worlds.
    pub fn num_samples(&self) -> usize {
        self.worlds.len()
    }

    /// Grows the pool to at least `r` worlds, sampling in parallel (world
    /// `i` always comes from RNG stream `i`).
    pub fn ensure(&mut self, r: usize) {
        let cur = self.worlds.len();
        if r <= cur {
            return;
        }
        let m = self.graph().num_edges();
        let sampler = self.sampler;
        let draw = move |i: u64| {
            let mut world = Bitset::with_len(m);
            sampler
                .sample_into(i, &mut world)
                .unwrap_or_else(|e| unreachable!("pool-sized bitset cannot mismatch: {e}"));
            world
        };
        // Worlds landing in a currently evicted trailing shard are
        // appended as empty placeholders — that shard regenerates as a
        // whole on its next touch.
        let mut from = cur;
        if let Some(meta) = self.shards.last() {
            if !meta.resident {
                let end = (self.shards.len() * SHARD_WORLDS).min(r);
                self.worlds.extend((cur..end).map(|_| Bitset::with_len(0)));
                from = end;
                let s = self.shards.len() - 1;
                self.shards[s].last_used = self.budget.touch();
                self.sync_shard_bytes(s);
            }
        }
        // Grow shard by shard so interruption latency is bounded by one
        // shard of sampling; each chunk is fully generated and charged
        // before the next checkpoint, so a break leaves the pool smaller
        // but consistent.
        while from < r {
            if self.run.checkpoint(SamplingPhase::Generation) {
                break;
            }
            if let Err(e) = faults::hit(FaultSite::PoolGrow) {
                self.run.record(e);
                break;
            }
            let hi = ((from / SHARD_WORLDS + 1) * SHARD_WORLDS).min(r);
            if !self.config.parallel_generation(hi - from) {
                self.worlds.extend((from as u64..hi as u64).map(draw));
            } else {
                let new_worlds: Vec<Bitset> = self
                    .config
                    .run(|| (from as u64..hi as u64).into_par_iter().map(draw).collect());
                self.worlds.extend(new_worlds);
            }
            let s = from / SHARD_WORLDS;
            if s == self.shards.len() {
                self.shards.push(ShardMeta { bytes: 0, last_used: 0, resident: true });
            }
            self.shards[s].last_used = self.budget.touch();
            self.sync_shard_bytes(s);
            from = hi;
        }
        self.trim_to_budget();
    }

    /// The edge bitset of world `i`. Regenerates `i`'s shard if it was
    /// evicted (this per-sample accessor resolves but does not trim —
    /// callers iterating the pool keep it resident; the next aggregate
    /// query or `ensure` settles the ledger).
    pub fn world(&mut self, i: usize) -> &Bitset {
        self.resolve_point(i);
        &self.worlds[i]
    }

    /// Depth-limited connection counts from `center`.
    ///
    /// For every node `u`, after the call:
    /// * `out_select[u]` = #worlds with `dist(center, u) ≤ d_select`,
    /// * `out_cover[u]`  = #worlds with `dist(center, u) ≤ d_cover`.
    ///
    /// Requires `d_select ≤ d_cover` (one bounded BFS per world covers
    /// both).
    ///
    /// # Panics
    /// Panics on buffer-size mismatch or `d_select > d_cover`.
    pub fn counts_within_depths(
        &mut self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        let len = self.worlds.len();
        self.counts_within_depths_range(center, d_select, d_cover, 0, len, out_select, out_cover)
    }

    /// Batched [`WorldPool::counts_within_depths`]: rows row-major per
    /// center. Each world's edge bitset is materialized as a [`WorldView`]
    /// **once** for all centers (one pass over the pool), with counts
    /// identical to sequential per-center calls.
    ///
    /// # Panics
    /// Panics on buffer-size mismatch or `d_select > d_cover`.
    pub fn counts_within_depths_batch(
        &mut self,
        centers: &[NodeId],
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        let len = self.worlds.len();
        self.counts_within_depths_batch_range(
            centers, d_select, d_cover, 0, len, out_select, out_cover,
        )
    }

    /// [`WorldPool::counts_within_depths`] restricted to the worlds with
    /// index in `[lo, hi)` — counts over disjoint ranges add up exactly.
    ///
    /// # Panics
    /// Panics on buffer-size mismatch, `d_select > d_cover`, `lo > hi`, or
    /// `hi > num_samples()`.
    #[allow(clippy::too_many_arguments)]
    pub fn counts_within_depths_range(
        &mut self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        lo: usize,
        hi: usize,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        let n = self.graph().num_nodes();
        assert_eq!(out_select.len(), n, "select buffer has wrong length");
        assert_eq!(out_cover.len(), n, "cover buffer has wrong length");
        assert!(d_select <= d_cover, "d_select ({d_select}) must be ≤ d_cover ({d_cover})");
        assert!(lo <= hi && hi <= self.worlds.len(), "invalid sample range [{lo}, {hi})");
        if !self.resolve_range(lo, hi) {
            return;
        }
        let run = self.run.clone();
        let WorldPool { sampler, worlds, config, bfs, .. } = self;
        let graph = sampler.graph();
        chunked_counts2_with(
            config,
            &worlds[lo..hi],
            n,
            n,
            bfs,
            || DepthBfs::new(n),
            |select, cover, bfs, worlds| {
                for world in worlds {
                    if run.checkpoint(SamplingPhase::Sweep) {
                        return;
                    }
                    let view = WorldView::new(graph, world);
                    bfs.run(&view, center, d_cover, |node, depth| {
                        cover[node.index()] += 1;
                        if depth <= d_select {
                            select[node.index()] += 1;
                        }
                    });
                }
            },
            out_select,
            out_cover,
        );
        self.trim_to_budget();
    }

    /// Batched [`WorldPool::counts_within_depths_range`]: rows row-major
    /// per center over the worlds with index in `[lo, hi)`. Each in-window
    /// world's edge bitset is materialized as a [`WorldView`] **once** for
    /// all centers — the top-up analogue of
    /// [`WorldPool::counts_within_depths_batch`].
    ///
    /// # Panics
    /// Panics on buffer-size mismatch, `d_select > d_cover`, `lo > hi`, or
    /// `hi > num_samples()`.
    #[allow(clippy::too_many_arguments)]
    pub fn counts_within_depths_batch_range(
        &mut self,
        centers: &[NodeId],
        d_select: u32,
        d_cover: u32,
        lo: usize,
        hi: usize,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        let n = self.graph().num_nodes();
        let k = centers.len();
        assert_eq!(out_select.len(), k * n, "batch select buffer has wrong length");
        assert_eq!(out_cover.len(), k * n, "batch cover buffer has wrong length");
        assert!(d_select <= d_cover, "d_select ({d_select}) must be ≤ d_cover ({d_cover})");
        assert!(lo <= hi && hi <= self.worlds.len(), "invalid sample range [{lo}, {hi})");
        if k == 0 {
            return;
        }
        if !self.resolve_range(lo, hi) {
            return;
        }
        let run = self.run.clone();
        let WorldPool { sampler, worlds, config, bfs, .. } = self;
        let graph = sampler.graph();
        chunked_counts2_with(
            config,
            &worlds[lo..hi],
            k * n,
            k * n,
            bfs,
            || DepthBfs::new(n),
            |select, cover, bfs, worlds| {
                for world in worlds {
                    if run.checkpoint(SamplingPhase::Sweep) {
                        return;
                    }
                    let view = WorldView::new(graph, world);
                    for (j, &c) in centers.iter().enumerate() {
                        bfs.run(&view, c, d_cover, |node, depth| {
                            cover[j * n + node.index()] += 1;
                            if depth <= d_select {
                                select[j * n + node.index()] += 1;
                            }
                        });
                    }
                }
            },
            out_select,
            out_cover,
        );
        self.trim_to_budget();
    }

    /// Number of worlds where `dist(u, v) ≤ depth`.
    pub fn pair_count_within(&mut self, u: NodeId, v: NodeId, depth: u32) -> usize {
        let len = self.worlds.len();
        self.pair_count_within_range(u, v, depth, 0, len)
    }

    /// [`WorldPool::pair_count_within`] restricted to the worlds with
    /// index in `[lo, hi)` — one bounded BFS per in-window world.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > num_samples()`.
    pub fn pair_count_within_range(
        &mut self,
        u: NodeId,
        v: NodeId,
        depth: u32,
        lo: usize,
        hi: usize,
    ) -> usize {
        assert!(lo <= hi && hi <= self.worlds.len(), "invalid sample range [{lo}, {hi})");
        if !self.resolve_range(lo, hi) {
            return 0;
        }
        let run = self.run.clone();
        let WorldPool { sampler, worlds, config, bfs, .. } = self;
        let graph = sampler.graph();
        let n = graph.num_nodes();
        let total = chunked_sum_with(
            config,
            &worlds[lo..hi],
            n,
            bfs,
            || DepthBfs::new(n),
            |bfs, world| {
                if run.checkpoint(SamplingPhase::Sweep) {
                    return 0;
                }
                let view = WorldView::new(graph, world);
                let mut hit = false;
                bfs.run(&view, u, depth, |node, _| hit |= node == v);
                usize::from(hit)
            },
        );
        self.trim_to_budget();
        total
    }

    /// Estimator of the d-connection probability `Pr(u ~d~ v)`.
    pub fn pair_estimate_within(&mut self, u: NodeId, v: NodeId, depth: u32) -> f64 {
        if self.worlds.is_empty() {
            return 0.0;
        }
        let r = self.worlds.len();
        self.pair_count_within(u, v, depth) as f64 / r as f64
    }
}

impl WorldEngine for WorldPool<'_> {
    fn set_memory_budget(&mut self, budget: MemoryBudget) {
        WorldPool::set_memory_budget(self, budget)
    }

    fn set_run_state(&mut self, run: RunState) {
        WorldPool::set_run_state(self, run)
    }

    fn memory_stats(&self) -> MemoryStats {
        WorldPool::memory_stats(self)
    }

    fn graph(&self) -> &UncertainGraph {
        WorldPool::graph(self)
    }

    fn num_samples(&self) -> usize {
        WorldPool::num_samples(self)
    }

    fn ensure(&mut self, r: usize) {
        WorldPool::ensure(self, r)
    }

    fn counts_from_center(&mut self, center: NodeId, out: &mut [u32]) {
        // Dedicated unlimited path: one increment per reached node, no
        // select row to duplicate (the ranged kernel over the full window).
        let len = self.worlds.len();
        WorldEngine::counts_from_center_range(self, center, 0, len, out)
    }

    fn counts_from_centers(&mut self, centers: &[NodeId], out: &mut [u32]) {
        // One pass over the pool: each world's view is built once for all
        // centers instead of once per center (the ranged kernel over the
        // full window).
        let len = self.worlds.len();
        self.counts_from_centers_range(centers, 0, len, out)
    }

    fn counts_from_center_range(&mut self, center: NodeId, lo: usize, hi: usize, out: &mut [u32]) {
        let n = self.graph().num_nodes();
        assert_eq!(out.len(), n, "counts buffer has wrong length");
        assert!(lo <= hi && hi <= self.worlds.len(), "invalid sample range [{lo}, {hi})");
        if !self.resolve_range(lo, hi) {
            return;
        }
        let run = self.run.clone();
        let WorldPool { sampler, worlds, config, bfs, .. } = self;
        let graph = sampler.graph();
        chunked_counts_with(
            config,
            &worlds[lo..hi],
            n,
            n,
            bfs,
            || DepthBfs::new(n),
            |counts, bfs, worlds| {
                for world in worlds {
                    if run.checkpoint(SamplingPhase::Sweep) {
                        return;
                    }
                    let view = WorldView::new(graph, world);
                    bfs.run(&view, center, DEPTH_UNLIMITED, |node, _| counts[node.index()] += 1);
                }
            },
            out,
        );
        self.trim_to_budget();
    }

    fn counts_from_centers_range(
        &mut self,
        centers: &[NodeId],
        lo: usize,
        hi: usize,
        out: &mut [u32],
    ) {
        // One pass over the window: each in-window world's view is built
        // once for all centers, as in `counts_from_centers`.
        let n = self.graph().num_nodes();
        let k = centers.len();
        assert_eq!(out.len(), k * n, "batch counts buffer has wrong length");
        assert!(lo <= hi && hi <= self.worlds.len(), "invalid sample range [{lo}, {hi})");
        if k == 0 {
            return;
        }
        if !self.resolve_range(lo, hi) {
            return;
        }
        let run = self.run.clone();
        let WorldPool { sampler, worlds, config, bfs, .. } = self;
        let graph = sampler.graph();
        chunked_counts_with(
            config,
            &worlds[lo..hi],
            k * n,
            k * n,
            bfs,
            || DepthBfs::new(n),
            |counts, bfs, worlds| {
                for world in worlds {
                    if run.checkpoint(SamplingPhase::Sweep) {
                        return;
                    }
                    let view = WorldView::new(graph, world);
                    for (j, &c) in centers.iter().enumerate() {
                        bfs.run(&view, c, DEPTH_UNLIMITED, |node, _| {
                            counts[j * n + node.index()] += 1;
                        });
                    }
                }
            },
            out,
        );
        self.trim_to_budget();
    }

    fn pair_count(&mut self, u: NodeId, v: NodeId) -> usize {
        WorldPool::pair_count_within(self, u, v, DEPTH_UNLIMITED)
    }

    fn counts_within_depths(
        &mut self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        WorldPool::counts_within_depths(self, center, d_select, d_cover, out_select, out_cover)
    }

    fn counts_within_depths_batch(
        &mut self,
        centers: &[NodeId],
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        WorldPool::counts_within_depths_batch(
            self, centers, d_select, d_cover, out_select, out_cover,
        )
    }

    fn counts_within_depths_range(
        &mut self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        lo: usize,
        hi: usize,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        WorldPool::counts_within_depths_range(
            self, center, d_select, d_cover, lo, hi, out_select, out_cover,
        )
    }

    fn counts_within_depths_batch_range(
        &mut self,
        centers: &[NodeId],
        d_select: u32,
        d_cover: u32,
        lo: usize,
        hi: usize,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        WorldPool::counts_within_depths_batch_range(
            self, centers, d_select, d_cover, lo, hi, out_select, out_cover,
        )
    }

    fn pair_count_within(&mut self, u: NodeId, v: NodeId, depth: u32) -> usize {
        WorldPool::pair_count_within(self, u, v, depth)
    }

    fn pair_count_range(&mut self, u: NodeId, v: NodeId, lo: usize, hi: usize) -> usize {
        WorldPool::pair_count_within_range(self, u, v, DEPTH_UNLIMITED, lo, hi)
    }

    fn pair_count_within_range(
        &mut self,
        u: NodeId,
        v: NodeId,
        depth: u32,
        lo: usize,
        hi: usize,
    ) -> usize {
        WorldPool::pair_count_within_range(self, u, v, depth, lo, hi)
    }
}

/// Finalized per-lane component labels of one mask block, at label width
/// `L` — the structure that lets unlimited queries over the block run as
/// O(n + members) label scans instead of mask BFS.
///
/// Labels are stored node-major with stride `stride` = the block's lane
/// capacity, `W · 64` for block width `W`
/// (`labels[u * stride + l]` = `u`'s component in world `l`), so a
/// center's per-lane labels and a pair's two label strips are contiguous
/// loads. The membership index is a single CSR over `(lane, label)`
/// buckets: members of component `c` of lane `l` are
/// `order[starts[b]..starts[b + 1]]` with `b = lane_base[l] + c`.
///
/// Lanes are labeled **append-only**: finalizing a partially filled block
/// and topping it up later labels only the new lanes — already-labeled
/// lanes are never recomputed (worlds are immutable once sampled).
#[derive(Clone, Debug)]
struct BlockLabels<L> {
    /// Per-lane labels, node-major with stride `stride` (sized
    /// `n · stride` up front so lane appends are in-place writes).
    labels: Vec<L>,
    /// Node ids grouped by `(lane, label)` bucket; lane `l` owns
    /// `order[l * n..(l + 1) * n]`.
    order: Vec<L>,
    /// Cumulative bucket offsets into `order` (one terminator overall).
    starts: Vec<u32>,
    /// `lane_base[l]` = index of lane `l`'s first bucket in `starts`.
    lane_base: Vec<u32>,
    /// Lane capacity of the block (`W · 64`) — the node-major stride of
    /// `labels`.
    stride: u32,
    /// Lanes labeled so far (a prefix of the block's lanes).
    labeled: u32,
}

impl<L: Label> BlockLabels<L> {
    fn new(n: usize, stride: usize) -> Self {
        BlockLabels {
            labels: vec![L::from_u32(0); n * stride],
            order: Vec::new(),
            starts: vec![0],
            lane_base: vec![0],
            stride: stride as u32,
            labeled: 0,
        }
    }

    /// Heap bytes held by the label and membership structures.
    fn heap_bytes(&self) -> usize {
        (self.labels.len() + self.order.len()) * std::mem::size_of::<L>()
            + (self.starts.len() + self.lane_base.len()) * 4
    }

    /// Labels lanes `[self.labeled, target)` from the block's edge masks
    /// with one component-sharing sweep, then appends their membership
    /// buckets. Already-labeled lanes are untouched.
    fn extend<const W: usize>(
        &mut self,
        graph: &UncertainGraph,
        bfs: &mut MultiWorldBfs<W>,
        masks: &[Mask<W>],
        target: usize,
    ) {
        let n = graph.num_nodes();
        let stride = self.stride as usize;
        let from = self.labeled as usize;
        debug_assert_eq!(stride, Mask::<W>::LANES);
        debug_assert!(from < target && target <= stride);
        let new_mask = Mask::<W>::prefix(target).and_not(Mask::prefix(from));
        let labels = &mut self.labels;
        let counts = bfs.label_components(graph, masks, new_mask, |v, mask, next| {
            let base = v.index() * stride;
            mask.for_each_lane(|l| labels[base + l] = L::from_u32(next[l]));
        });
        // Append the new lanes' membership buckets (counting sort per lane).
        self.order.resize((target - from) * n + self.order.len(), L::from_u32(0));
        let mut sizes: Vec<u32> = Vec::new();
        let mut cursor: Vec<u32> = Vec::new();
        for l in from..target {
            let nb = counts[l] as usize;
            sizes.clear();
            sizes.resize(nb, 0);
            for u in 0..n {
                sizes[self.labels[u * stride + l].index()] += 1;
            }
            let mut running =
                *self.starts.last().unwrap_or_else(|| unreachable!("starts holds its terminator"));
            cursor.clear();
            for &s in &sizes {
                cursor.push(running);
                running += s;
                self.starts.push(running);
            }
            for u in 0..n {
                let c = self.labels[u * stride + l].index();
                self.order[cursor[c] as usize] = L::from_u32(u as u32);
                cursor[c] += 1;
            }
            let base = *self
                .lane_base
                .last()
                .unwrap_or_else(|| unreachable!("lane_base holds its terminator"));
            self.lane_base.push(base + nb as u32);
        }
        self.labeled = target as u32;
    }

    /// Increments `counts[u]` for every member `u` of `center`'s component
    /// in every lane selected by `lanes` — the finalized-block kernel of
    /// the unlimited count queries (`lanes` must be ⊆ the labeled lanes).
    #[inline]
    fn accumulate_center<const W: usize>(&self, center: usize, lanes: Mask<W>, counts: &mut [u32]) {
        let stride = self.stride as usize;
        let base = center * stride;
        lanes.for_each_lane(|l| {
            let b = (self.lane_base[l] + self.labels[base + l].index() as u32) as usize;
            for &u in &self.order[self.starts[b] as usize..self.starts[b + 1] as usize] {
                counts[u.index()] += 1;
            }
        });
    }

    /// Number of lanes in `lanes` where `u` and `v` share a component
    /// (`lanes` must be ⊆ the labeled lanes).
    #[inline]
    fn pair_lanes<const W: usize>(&self, u: usize, v: usize, lanes: Mask<W>) -> usize {
        let stride = self.stride as usize;
        let (bu, bv) = (u * stride, v * stride);
        let mut hits = 0usize;
        lanes.for_each_lane(|l| hits += usize::from(self.labels[bu + l] == self.labels[bv + l]));
        hits
    }

    /// Exact label-scan cost of a batched query — the total member count
    /// of every `(center, lane)` component bucket — for the
    /// [`crate::tuning::labels_beat_shared_masks`] dispatch.
    fn batch_label_ops<const W: usize>(&self, centers: &[NodeId], lanes: Mask<W>) -> usize {
        let stride = self.stride as usize;
        let mut ops = 0usize;
        for c in centers {
            let base = c.index() * stride;
            lanes.for_each_lane(|l| {
                let b = (self.lane_base[l] + self.labels[base + l].index() as u32) as usize;
                ops += (self.starts[b + 1] - self.starts[b]) as usize;
            });
        }
        ops
    }
}

/// [`BlockLabels`] at the width picked for the pool's node count.
#[derive(Clone, Debug)]
enum BlockLabelsAny {
    Narrow(BlockLabels<u16>),
    Wide(BlockLabels<u32>),
}

impl BlockLabelsAny {
    fn new(n: usize, wide: bool, stride: usize) -> Self {
        if wide {
            BlockLabelsAny::Wide(BlockLabels::new(n, stride))
        } else {
            BlockLabelsAny::Narrow(BlockLabels::new(n, stride))
        }
    }

    #[inline]
    fn labeled(&self) -> u32 {
        match self {
            BlockLabelsAny::Narrow(l) => l.labeled,
            BlockLabelsAny::Wide(l) => l.labeled,
        }
    }

    /// Lane mask of the labeled prefix.
    #[inline]
    fn labeled_mask<const W: usize>(&self) -> Mask<W> {
        Mask::prefix(self.labeled() as usize)
    }

    fn extend<const W: usize>(
        &mut self,
        graph: &UncertainGraph,
        bfs: &mut MultiWorldBfs<W>,
        masks: &[Mask<W>],
        target: usize,
    ) {
        match self {
            BlockLabelsAny::Narrow(l) => l.extend(graph, bfs, masks, target),
            BlockLabelsAny::Wide(l) => l.extend(graph, bfs, masks, target),
        }
    }

    #[inline]
    fn accumulate_center<const W: usize>(&self, center: usize, lanes: Mask<W>, counts: &mut [u32]) {
        match self {
            BlockLabelsAny::Narrow(l) => l.accumulate_center(center, lanes, counts),
            BlockLabelsAny::Wide(l) => l.accumulate_center(center, lanes, counts),
        }
    }

    #[inline]
    fn pair_lanes<const W: usize>(&self, u: usize, v: usize, lanes: Mask<W>) -> usize {
        match self {
            BlockLabelsAny::Narrow(l) => l.pair_lanes(u, v, lanes),
            BlockLabelsAny::Wide(l) => l.pair_lanes(u, v, lanes),
        }
    }

    fn batch_label_ops<const W: usize>(&self, centers: &[NodeId], lanes: Mask<W>) -> usize {
        match self {
            BlockLabelsAny::Narrow(l) => l.batch_label_ops(centers, lanes),
            BlockLabelsAny::Wide(l) => l.batch_label_ops(centers, lanes),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            BlockLabelsAny::Narrow(l) => l.heap_bytes(),
            BlockLabelsAny::Wide(l) => l.heap_bytes(),
        }
    }
}

/// Shape of an unlimited-depth point query, as seen by the adaptive
/// backend's finalization prologue: single-center **rows** finalize
/// touched blocks eagerly, **pair** queries convert a block only after
/// repeated hits ([`finalize_on_unlimited_query`]). Multi-center batches
/// never go through the prologue — they neither finalize nor count toward
/// the threshold (on finalized blocks the cost model often prefers the
/// mask sharing sweep, so batch traffic is no evidence labels would pay
/// off); they dispatch via [`crate::tuning::labels_beat_shared_masks`] on
/// blocks other traffic finalized.
#[derive(Clone, Copy, PartialEq, Eq)]
enum UnlimitedShape {
    Row,
    Pair,
}

/// One block of up to `W · 64` sampled worlds as per-edge presence masks.
#[derive(Clone, Debug)]
struct MaskBlock<const W: usize> {
    /// `masks[e]` lane `l` ⇔ edge `e` exists in world `base + l`.
    masks: Vec<Mask<W>>,
    /// Number of valid lanes (worlds) in this block; only the last block
    /// of a pool can be partial.
    lanes: u32,
    /// Lazily finalized component labels (adaptive mode only); covers the
    /// first `labels.labeled()` lanes, never invalidated — a lane top-up
    /// extends the labels, it does not recompute them.
    labels: Option<BlockLabelsAny>,
    /// Mask-path unlimited point queries absorbed while unfinalized — the
    /// input of [`finalize_on_unlimited_query`].
    mask_queries: u32,
}

impl<const W: usize> MaskBlock<W> {
    /// Heap bytes held by the block's masks and finalized labels.
    fn heap_bytes(&self) -> usize {
        self.masks.len() * std::mem::size_of::<Mask<W>>()
            + self.labels.as_ref().map_or(0, BlockLabelsAny::heap_bytes)
    }

    /// Splits a query's lane selection into (served-from-labels,
    /// served-by-mask-BFS) parts.
    #[inline]
    fn split_lanes(&self, query: Mask<W>) -> (Mask<W>, Mask<W>) {
        match &self.labels {
            Some(l) => {
                let labeled = l.labeled_mask();
                (query & labeled, query.and_not(labeled))
            }
            None => (Mask::ZERO, query),
        }
    }
}

/// A group of consecutive mask blocks covering [`SHARD_WORLDS`] worlds —
/// the allocation/eviction granularity of the bit-parallel backend. The
/// shard owns its blocks' masks **and** their finalized labels; eviction
/// drops both (an empty `blocks` vector ⇔ evicted), and regeneration
/// rebuilds the masks bit-identically from their per-index RNG streams
/// while labels simply re-finalize on the next unlimited query.
#[derive(Clone, Debug)]
struct BlockShard<const W: usize> {
    blocks: Vec<MaskBlock<W>>,
    /// Heap bytes currently charged to the budget for this shard.
    bytes: usize,
    /// Recency stamp from [`MemoryBudget::touch`].
    last_used: u64,
}

impl<const W: usize> BlockShard<W> {
    #[inline]
    fn resident(&self) -> bool {
        !self.blocks.is_empty()
    }

    fn heap_bytes(&self) -> usize {
        self.blocks.iter().map(MaskBlock::heap_bytes).sum()
    }
}

/// Block `b` of a sharded bit-parallel pool (the shard must be resident).
#[inline]
fn shard_block<const W: usize>(shards: &[BlockShard<W>], b: usize) -> &MaskBlock<W> {
    &shards[b / blocks_per_shard::<W>()].blocks[b % blocks_per_shard::<W>()]
}

/// The **bit-parallel** backend of [`WorldEngine`]: worlds stored in
/// blocks of 64 as structure-of-arrays edge masks, queried with
/// mask-propagating multi-world BFS ([`MultiWorldBfs`]).
///
/// One traversal answers 64 worlds at once, so queries cost
/// `O((n + m) · ⌈r/64⌉)` word operations instead of `r` per-world walks —
/// and generation skips the per-world union-find/labeling pass entirely.
/// World `i` lives in lane `i % 64` of block `i / 64` and is drawn from
/// per-index RNG stream `i`, so the pool is world-for-world identical to
/// the scalar pools under the same master seed (property-tested). Blocks
/// are grouped into [`SHARD_BLOCKS`]-block shards charged against a
/// [`MemoryBudget`].
#[derive(Debug)]
pub struct BitParallelPool<'g, const W: usize = 1> {
    sampler: WorldSampler<'g>,
    shards: Vec<BlockShard<W>>,
    samples: usize,
    config: ThreadConfig,
    /// Reusable multi-world BFS workspace for serial query paths; parallel
    /// chunks build their own.
    bfs: MultiWorldBfs<W>,
    /// Reusable `(block, lane mask)` work-item buffer of the ranged query
    /// paths (allocation-free single-row queries).
    items: Vec<(u32, Mask<W>)>,
    /// Reusable `(block, label lanes, mask lanes)` dispatch plan of the
    /// batched unlimited queries.
    batch_plan: Vec<(u32, Mask<W>, Mask<W>)>,
    /// Lazy per-block component-label finalization
    /// ([`crate::EngineKind::Adaptive`]): off = pure-mask backend.
    adaptive: bool,
    /// `true` = `u32` block labels (see [`Label`]).
    wide: bool,
    /// Finalization counters (see [`EngineStats`]).
    stats: EngineStats,
    /// Shared byte ledger governing eviction (unbounded by default).
    budget: MemoryBudget,
    /// Shards evicted / regenerated by this pool (cumulative).
    evicted: u64,
    regenerated: u64,
    /// Per-solve interruption state, polled at shard/block boundaries
    /// (unarmed by default — see [`RunState`]).
    run: RunState,
}

impl<const W: usize> Clone for BitParallelPool<'_, W> {
    fn clone(&self) -> Self {
        // The clone shares the budget handle, so its copy of the resident
        // shards is charged to the ledger like any other pool's.
        self.budget.charge(self.shards.iter().map(|sh| sh.bytes).sum());
        BitParallelPool {
            sampler: self.sampler,
            shards: self.shards.clone(),
            samples: self.samples,
            config: self.config.clone(),
            bfs: self.bfs.clone(),
            items: self.items.clone(),
            batch_plan: self.batch_plan.clone(),
            adaptive: self.adaptive,
            wide: self.wide,
            stats: self.stats,
            budget: self.budget.clone(),
            evicted: self.evicted,
            regenerated: self.regenerated,
            run: self.run.clone(),
        }
    }
}

impl<const W: usize> Drop for BitParallelPool<'_, W> {
    fn drop(&mut self) {
        self.budget.release(self.shards.iter().map(|sh| sh.bytes).sum());
    }
}

impl<'g, const W: usize> BitParallelPool<'g, W> {
    /// Worlds per block at this width (`W · 64`).
    const BLOCK_LANES: usize = W * LANES;

    /// Creates an empty **pure-mask** bit-parallel pool over `graph` with
    /// master `seed` — every query runs mask BFS. `threads = 0` uses all
    /// available cores.
    pub fn new(graph: &'g UncertainGraph, seed: u64, threads: usize) -> Self {
        BitParallelPool {
            sampler: WorldSampler::new(graph, seed),
            shards: Vec::new(),
            samples: 0,
            config: ThreadConfig::new(threads),
            bfs: MultiWorldBfs::new(graph.num_nodes()),
            items: Vec::new(),
            batch_plan: Vec::new(),
            adaptive: false,
            wide: !narrow_fits(graph.num_nodes()),
            stats: EngineStats::default(),
            budget: MemoryBudget::unbounded(),
            evicted: 0,
            regenerated: 0,
            run: RunState::unlimited(),
        }
    }

    /// Creates an **adaptive** pool: bit-parallel blocks plus lazy
    /// per-block component-label finalization (see
    /// [`BitParallelPool::with_finalization`]).
    pub fn new_adaptive(graph: &'g UncertainGraph, seed: u64, threads: usize) -> Self {
        Self::new(graph, seed, threads).with_finalization(true)
    }

    /// Enables or disables lazy block finalization: with it on, the first
    /// unlimited-depth row query against a block materializes per-lane
    /// component labels (one component-sharing fixpoint sweep, cached next
    /// to the edge masks) and every later unlimited query over the block
    /// runs as an O(n + members) label scan; point queries convert a block
    /// only after repeated mask-path hits
    /// ([`crate::tuning::finalize_on_unlimited_query`]). Counts are
    /// identical either way — finalization trades label memory
    /// (≈ one scalar component row per world) for mask traversals.
    /// Disabling drops existing labels.
    pub fn with_finalization(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        if !adaptive {
            for s in 0..self.shards.len() {
                for block in &mut self.shards[s].blocks {
                    block.labels = None;
                    block.mask_queries = 0;
                }
                self.sync_shard_bytes(s);
            }
            self.stats = EngineStats::default();
        }
        self
    }

    /// Forces the wide (`u32`) label path even on small graphs (see
    /// [`ComponentPool::with_wide_labels`]).
    ///
    /// # Panics
    /// Panics if any block is already finalized.
    #[doc(hidden)]
    pub fn with_wide_labels(mut self, wide: bool) -> Self {
        assert!(
            self.shards.iter().flat_map(|sh| &sh.blocks).all(|b| b.labels.is_none()),
            "label width is fixed once blocks are finalized"
        );
        self.wide = wide || !narrow_fits(self.graph().num_nodes());
        self
    }

    /// Binds the pool to a (possibly shared) memory budget: the resident
    /// bytes move to the new ledger and the pool immediately sheds
    /// least-recently-used shards if the new ledger is over its limit.
    pub fn set_memory_budget(&mut self, budget: MemoryBudget) {
        let held: usize = self.shards.iter().map(|sh| sh.bytes).sum();
        self.budget.release(held);
        budget.charge(held);
        self.budget = budget;
        self.trim_to_budget();
    }

    /// Resident bytes, the budget limit, and this pool's cumulative shard
    /// eviction/regeneration counters.
    pub fn memory_stats(&self) -> MemoryStats {
        MemoryStats {
            bytes_held: self.shards.iter().map(|sh| sh.bytes).sum(),
            bytes_limit: self.budget.limit(),
            shards_evicted: self.evicted,
            shards_regenerated: self.regenerated,
        }
    }

    /// Attaches the per-solve interruption state; see
    /// [`WorldEngine::set_run_state`].
    pub fn set_run_state(&mut self, run: RunState) {
        self.run = run;
    }

    /// Re-derives shard `s`'s byte charge from its blocks (masks plus any
    /// finalized labels) and settles the difference with the ledger.
    fn sync_shard_bytes(&mut self, s: usize) {
        let now = self.shards[s].heap_bytes();
        let sh = &mut self.shards[s];
        if now >= sh.bytes {
            self.budget.charge(now - sh.bytes);
        } else {
            self.budget.release(sh.bytes - now);
        }
        sh.bytes = now;
    }

    /// The resolve-or-regenerate accessor of every query path: stamps the
    /// shards covering sample range `[lo, hi)` as recently used and
    /// regenerates any evicted one from its per-index RNG streams —
    /// bit-identical to the originally sampled blocks (dropped labels
    /// re-finalize lazily, per the usual adaptive heuristics).
    ///
    /// Doubles as the query-entry cooperative checkpoint: returns `false`
    /// (without touching any sample data) when the attached [`RunState`]
    /// has tripped, or records the error and returns `false` when the
    /// [`FaultSite::ShardRegen`] failpoint fires. The failpoint fires
    /// *before* regeneration mutates anything, so a shard is always either
    /// fully regenerated or untouched.
    #[must_use]
    fn resolve_range(&mut self, lo: usize, hi: usize) -> bool {
        if lo >= hi {
            return true;
        }
        if self.run.checkpoint(SamplingPhase::Sweep) {
            return false;
        }
        for s in shard_span(lo, hi) {
            self.shards[s].last_used = self.budget.touch();
            if !self.shards[s].resident() {
                if let Err(e) = faults::hit(FaultSite::ShardRegen) {
                    self.run.record(e);
                    return false;
                }
                self.regenerate_shard(s);
            }
        }
        true
    }

    fn regenerate_shard(&mut self, s: usize) {
        let m = self.graph().num_edges();
        let sampler = self.sampler;
        let r = self.samples;
        let first = s * blocks_per_shard::<W>();
        let last = ((s + 1) * blocks_per_shard::<W>()).min(r.div_ceil(Self::BLOCK_LANES));
        let build = |b: usize| Self::build_block(&sampler, m, b, r);
        let blocks: Vec<MaskBlock<W>> =
            if self.config.parallel_generation((last - first) * Self::BLOCK_LANES) {
                self.config.run(|| (first..last).into_par_iter().map(build).collect())
            } else {
                (first..last).map(build).collect()
            };
        self.shards[s].blocks = blocks;
        self.regenerated += 1;
        self.budget.note_regeneration();
        self.sync_shard_bytes(s);
    }

    fn evict_shard(&mut self, s: usize) {
        // Dropping a shard drops its finalized labels with it; the
        // finalized-block gauge shrinks accordingly (lanes/query counters
        // are cumulative and stand).
        let labeled = self.shards[s].blocks.iter().filter(|b| b.labels.is_some()).count();
        self.stats.finalized_blocks = self.stats.finalized_blocks.saturating_sub(labeled);
        self.shards[s].blocks = Vec::new();
        self.evicted += 1;
        self.budget.note_eviction();
        self.sync_shard_bytes(s);
    }

    /// Evicts least-recently-used shards until the shared ledger fits its
    /// limit (or this pool has nothing left to shed) — the epilogue of
    /// `ensure` and of every aggregate query.
    fn trim_to_budget(&mut self) {
        while self.budget.over_budget() {
            match lru_victim(&self.shards, BlockShard::resident, |sh| sh.last_used) {
                Some(s) => self.evict_shard(s),
                None => break,
            }
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g UncertainGraph {
        self.sampler.graph()
    }

    /// Number of samples currently in the pool.
    pub fn num_samples(&self) -> usize {
        self.samples
    }

    /// Number of `W·64`-world blocks backing the pool (resident or
    /// evicted).
    pub fn num_blocks(&self) -> usize {
        self.samples.div_ceil(Self::BLOCK_LANES)
    }

    /// Finalization counters (all zero for pure-mask pools).
    pub fn engine_stats(&self) -> EngineStats {
        self.stats
    }

    /// Presence mask of edge `e` in block `block` (lane `l` ⇔ the edge
    /// exists in world `block·W·64 + l`). Exposed for tests and
    /// diagnostics; the block's shard must be resident.
    pub fn edge_mask(&self, block: usize, e: usize) -> Mask<W> {
        shard_block(&self.shards, block).masks[e]
    }

    fn build_block(sampler: &WorldSampler<'g>, m: usize, block: usize, r: usize) -> MaskBlock<W> {
        let base = block * Self::BLOCK_LANES;
        let lanes = (r - base).min(Self::BLOCK_LANES);
        let mut masks = vec![Mask::<W>::ZERO; m];
        for lane in 0..lanes {
            sampler
                .sample_block_lane((base + lane) as u64, lane, &mut masks)
                .unwrap_or_else(|e| unreachable!("pool-sized mask buffer cannot mismatch: {e}"));
        }
        MaskBlock { masks, lanes: lanes as u32, labels: None, mask_queries: 0 }
    }

    /// Finalization prologue of every unlimited-depth query over the
    /// sample window `[lo, hi)`: decides per touched block whether to
    /// materialize (or extend) its component labels before the query runs,
    /// per the [`finalize_on_unlimited_query`] heuristic, and accounts the
    /// query in [`EngineStats`]. Fresh blocks are labeled in parallel when
    /// the batch is worth it; a partially labeled block (the grown trailing
    /// block) extends **append-only** — labeled lanes are never recomputed.
    fn prepare_unlimited(&mut self, lo: usize, hi: usize, shape: UnlimitedShape) {
        if !self.adaptive || lo >= hi || self.run.checkpoint(SamplingPhase::Labeling) {
            return;
        }
        let graph = self.sampler.graph();
        let n = graph.num_nodes();
        // CSR offsets into the block-label membership index are u32.
        if n.saturating_mul(Self::BLOCK_LANES) > u32::MAX as usize {
            return;
        }
        let bps = blocks_per_shard::<W>();
        let (mut label_q, mut mask_q) = (0usize, 0usize);
        let mut todo: Vec<usize> = Vec::new();
        for b in lo / Self::BLOCK_LANES..=(hi - 1) / Self::BLOCK_LANES {
            let block = &mut self.shards[b / bps].blocks[b % bps];
            let labeled = block.labels.as_ref().map_or(0, BlockLabelsAny::labeled) as usize;
            if labeled >= block.lanes as usize {
                label_q += 1;
            } else if finalize_on_unlimited_query(shape == UnlimitedShape::Row, block.mask_queries)
            {
                todo.push(b);
                label_q += 1;
            } else {
                block.mask_queries += 1;
                mask_q += 1;
            }
        }
        self.stats.label_queries += label_q;
        self.stats.mask_queries += mask_q;
        if todo.is_empty() {
            return;
        }
        // Fresh full finalizations are independent per block: build the
        // label structures by value in parallel, then attach. Extensions of
        // a partially labeled block (at most one — the trailing block) run
        // serially on the pool's workspace.
        let wide = self.wide;
        let fresh: Vec<usize> = todo
            .iter()
            .copied()
            .filter(|&b| shard_block(&self.shards, b).labels.is_none())
            .collect();
        if fresh.len() > 1 && self.config.parallel_generation(fresh.len() * Self::BLOCK_LANES) {
            let shards: &[BlockShard<W>] = &self.shards;
            let built: Vec<(usize, BlockLabelsAny)> = self.config.run(|| {
                fresh
                    .par_iter()
                    .map_init(
                        || MultiWorldBfs::<W>::new(n),
                        |bfs, &b| {
                            let block = shard_block(shards, b);
                            let mut labels = BlockLabelsAny::new(n, wide, Self::BLOCK_LANES);
                            labels.extend(graph, bfs, &block.masks, block.lanes as usize);
                            (b, labels)
                        },
                    )
                    .collect()
            });
            for (b, labels) in built {
                self.stats.finalized_blocks += 1;
                self.stats.finalized_lanes += labels.labeled() as usize;
                self.shards[b / bps].blocks[b % bps].labels = Some(labels);
            }
        }
        // Serial (and catch-up) path: blocks the parallel branch already
        // attached are fully labeled and fall through both updates.
        for &b in &todo {
            let block = &mut self.shards[b / bps].blocks[b % bps];
            let labels =
                block.labels.get_or_insert_with(|| BlockLabelsAny::new(n, wide, Self::BLOCK_LANES));
            let before = labels.labeled() as usize;
            if before == 0 {
                self.stats.finalized_blocks += 1;
            }
            let target = block.lanes as usize;
            if before < target {
                labels.extend(graph, &mut self.bfs, &block.masks, target);
                self.stats.finalized_lanes += target - before;
            }
        }
        // Labels grew: re-charge the touched shards' bytes to the ledger.
        for s in shard_span(lo, hi) {
            self.sync_shard_bytes(s);
        }
    }

    /// Grows the pool to at least `r` samples (no-op if already there).
    ///
    /// A partial last block is topped up lane by lane; full new blocks are
    /// generated in parallel. Either way world `i` comes from RNG stream
    /// `i`, so the pool is independent of the growth schedule and thread
    /// count.
    pub fn ensure(&mut self, r: usize) {
        if r <= self.samples {
            return;
        }
        let cur = self.samples;
        let m = self.graph().num_edges();
        let sampler = self.sampler;
        let bps = blocks_per_shard::<W>();
        let total = r.div_ceil(Self::BLOCK_LANES);
        let trailing_evicted = self.shards.last().is_some_and(|sh| !sh.resident());
        // Top up the trailing partial block, if any — unless its shard is
        // evicted, in which case the whole shard (top-up included)
        // regenerates at the new extent on its next touch.
        let mut achieved = cur;
        if !cur.is_multiple_of(Self::BLOCK_LANES) && !trailing_evicted {
            let b = cur / Self::BLOCK_LANES;
            let base = b * Self::BLOCK_LANES;
            let target = (r - base).min(Self::BLOCK_LANES);
            let last = &mut self.shards[b / bps].blocks[b % bps];
            for lane in last.lanes as usize..target {
                sampler
                    .sample_block_lane((base + lane) as u64, lane, &mut last.masks)
                    .unwrap_or_else(|e| {
                        unreachable!("pool-sized mask buffer cannot mismatch: {e}")
                    });
            }
            last.lanes = target as u32;
            achieved = base + target;
        }
        if trailing_evicted {
            // Samples landing in the evicted trailing shard are recorded
            // without generating anything — that shard regenerates as a
            // whole, at the new extent, on its next touch.
            achieved = (self.shards.len() * bps * Self::BLOCK_LANES).min(r);
        }
        // Append new blocks shard by shard so interruption latency is
        // bounded by one shard of sampling; each chunk is fully generated
        // before the next checkpoint, so a break leaves the pool smaller
        // but consistent. Blocks landing in the evicted trailing shard are
        // left to that shard's regeneration.
        let first = if trailing_evicted {
            (self.shards.len() * bps).min(total)
        } else {
            cur.div_ceil(Self::BLOCK_LANES)
        };
        let mut from = first;
        while from < total {
            if self.run.checkpoint(SamplingPhase::Generation) {
                break;
            }
            if let Err(e) = faults::hit(FaultSite::PoolGrow) {
                self.run.record(e);
                break;
            }
            let chunk_end = ((from / bps + 1) * bps).min(total);
            let build = |b: usize| Self::build_block(&sampler, m, b, r);
            let new_blocks: Vec<MaskBlock<W>> =
                if self.config.parallel_generation((chunk_end - from) * Self::BLOCK_LANES) {
                    self.config.run(|| (from..chunk_end).into_par_iter().map(build).collect())
                } else {
                    (from..chunk_end).map(build).collect()
                };
            let s = from / bps;
            if s == self.shards.len() {
                self.shards.push(BlockShard { blocks: Vec::new(), bytes: 0, last_used: 0 });
            }
            self.shards[s].blocks.extend(new_blocks);
            achieved = (chunk_end * Self::BLOCK_LANES).min(r);
            from = chunk_end;
        }
        self.samples = achieved;
        // Account the new samples shard by shard, then shed LRU shards if
        // the shared ledger now exceeds its limit.
        if achieved > cur {
            for s in shard_span(cur, achieved) {
                self.shards[s].last_used = self.budget.touch();
                self.sync_shard_bytes(s);
            }
        }
        self.trim_to_budget();
    }

    /// For every node `u`, the number of samples in which `u` is connected
    /// to `center` — per 64-world block, an O(n + members) label scan when
    /// the block is finalized (adaptive mode), otherwise one
    /// connectivity-fixpoint traversal popcounting the final reach masks.
    ///
    /// # Panics
    /// Panics if `out.len() != n`.
    pub fn counts_from_center(&mut self, center: NodeId, out: &mut [u32]) {
        let samples = self.samples;
        self.counts_from_center_range(center, 0, samples, out)
    }

    /// Batched [`BitParallelPool::counts_from_center`]: one count row per
    /// requested center, row-major in `out` (`out[j * n + u]`).
    ///
    /// Amortization by **component sharing**: connectivity reach sets are
    /// per-component, so if centers `c_i` and `c_j` are connected in some
    /// of a block's worlds, their rows are identical in those worlds. Per
    /// 64-world block, each center runs a mask BFS only over the worlds
    /// where its component is still unknown; every later center found
    /// inside the traversed reach set inherits the reach masks for the
    /// shared worlds with one AND + popcount sweep instead of a
    /// re-traversal. On instances with a supercritical giant component
    /// (most candidate centers connected in most worlds), a block costs
    /// roughly one traversal plus `k` cheap sweeps — the amortization that
    /// makes bit-parallel win the multi-row query workload it loses on
    /// single rows.
    ///
    /// # Panics
    /// Panics if `out.len() != centers.len() * n`.
    pub fn counts_from_centers(&mut self, centers: &[NodeId], out: &mut [u32]) {
        let samples = self.samples;
        self.counts_from_centers_range(centers, 0, samples, out)
    }

    /// Batched [`BitParallelPool::counts_from_center_range`]: one count row
    /// per requested center over the sample window `[lo, hi)`, with the
    /// same **component-sharing** amortization as
    /// [`BitParallelPool::counts_from_centers`] — per overlapping 64-world
    /// block, each center traverses only the window lanes where its
    /// component is still unknown, and later centers found inside an
    /// earlier reach set inherit the shared worlds' rows with one
    /// AND + popcount sweep. This is the top-up wave shape: one shared pass
    /// over the new worlds for all cached rows instead of the losing
    /// single-row mask BFS per center.
    ///
    /// # Panics
    /// Panics if `out.len() != centers.len() * n`, `lo > hi`, or
    /// `hi > num_samples()`.
    pub fn counts_from_centers_range(
        &mut self,
        centers: &[NodeId],
        lo: usize,
        hi: usize,
        out: &mut [u32],
    ) {
        let n = self.graph().num_nodes();
        let k = centers.len();
        assert_eq!(out.len(), k * n, "batch counts buffer has wrong length");
        assert!(lo <= hi && hi <= self.samples, "invalid sample range [{lo}, {hi})");
        if k == 0 {
            return;
        }
        if k == 1 {
            return BitParallelPool::counts_from_center_range(self, centers[0], lo, hi, out);
        }
        if !self.resolve_range(lo, hi) {
            return;
        }
        // Plan the per-block dispatch serially (batches never finalize —
        // that is the single-row/pair paths' job): a fully labeled block
        // goes to label scans only when the exact cost model prefers them
        // over the sharing sweep; a block with any unlabeled lanes runs
        // the sweep for *all* its lanes, because the traversal must run
        // anyway and folding labeled lanes into it is nearly free. Doing
        // this up front keeps the stats exact — a batch block-query counts
        // as label-served only if labels actually serve it.
        let mut items = std::mem::take(&mut self.items);
        Self::range_blocks_into(lo, hi, &mut items);
        let mut plan = std::mem::take(&mut self.batch_plan);
        plan.clear();
        let (mut label_q, mut mask_q) = (0usize, 0usize);
        for &(b, lanes) in &items {
            let block = shard_block(&self.shards, b as usize);
            let (labeled, masked) = block.split_lanes(lanes);
            let use_labels = masked.is_zero()
                && labeled.any()
                && block.labels.as_ref().is_some_and(|labels| {
                    crate::tuning::labels_beat_shared_masks(
                        labels.batch_label_ops(centers, labeled),
                        n,
                        self.graph().num_edges(),
                        k,
                        W,
                    )
                });
            if use_labels {
                label_q += 1;
                plan.push((b, labeled, Mask::ZERO));
            } else {
                mask_q += 1;
                plan.push((b, Mask::ZERO, lanes));
            }
        }
        if self.adaptive {
            self.stats.label_queries += label_q;
            self.stats.mask_queries += mask_q;
        }
        let run = self.run.clone();
        let BitParallelPool { sampler, shards, config, bfs, .. } = self;
        let graph = sampler.graph();
        let shards: &[BlockShard<W>] = shards;
        let per_block = n + 2 * graph.num_edges();
        // The per-center "worlds still unknown" masks and the (node, mask)
        // reach list of the sharing sweep live inside the BFS workspace, so
        // warm batches allocate nothing per block.
        chunked_counts_with(
            config,
            &plan,
            k * n,
            per_block + k * n,
            bfs,
            || MultiWorldBfs::<W>::new(n),
            |counts, bfs, plan: &[(u32, Mask<W>, Mask<W>)]| {
                for &(b, labeled, masked) in plan {
                    if run.checkpoint(SamplingPhase::Sweep) {
                        return;
                    }
                    let block = shard_block(shards, b as usize);
                    if labeled.any() {
                        let labels = block
                            .labels
                            .as_ref()
                            .unwrap_or_else(|| unreachable!("planned labels exist"));
                        for (j, c) in centers.iter().enumerate() {
                            labels.accumulate_center(
                                c.index(),
                                labeled,
                                &mut counts[j * n..(j + 1) * n],
                            );
                        }
                    }
                    if masked.is_zero() {
                        continue;
                    }
                    // Mask lanes: component-sharing traversal sweep.
                    bfs.shared_component_counts(graph, &block.masks, centers, masked, counts);
                }
            },
            out,
        );
        self.items = items;
        self.batch_plan = plan;
        self.trim_to_budget();
    }

    /// [`BitParallelPool::counts_from_center`] restricted to the samples
    /// with index in `[lo, hi)`: only the blocks overlapping the range are
    /// traversed, with their lane masks narrowed to the range's lanes —
    /// counts over disjoint ranges add up exactly.
    ///
    /// # Panics
    /// Panics if `out.len() != n`, `lo > hi`, or `hi > num_samples()`.
    pub fn counts_from_center_range(
        &mut self,
        center: NodeId,
        lo: usize,
        hi: usize,
        out: &mut [u32],
    ) {
        let n = self.graph().num_nodes();
        assert_eq!(out.len(), n, "counts buffer has wrong length");
        assert!(lo <= hi && hi <= self.samples, "invalid sample range [{lo}, {hi})");
        if !self.resolve_range(lo, hi) {
            return;
        }
        self.prepare_unlimited(lo, hi, UnlimitedShape::Row);
        let mut items = std::mem::take(&mut self.items);
        Self::range_blocks_into(lo, hi, &mut items);
        let run = self.run.clone();
        let BitParallelPool { sampler, shards, config, bfs, .. } = self;
        let graph = sampler.graph();
        let shards: &[BlockShard<W>] = shards;
        let per_block = n + 2 * graph.num_edges();
        chunked_counts_with(
            config,
            &items,
            n,
            per_block,
            bfs,
            || MultiWorldBfs::<W>::new(n),
            |counts, bfs, items| {
                for &(b, mask) in items {
                    if run.checkpoint(SamplingPhase::Sweep) {
                        return;
                    }
                    let block = shard_block(shards, b as usize);
                    let (labeled, masked) = block.split_lanes(mask);
                    if labeled.any() {
                        let labels = block
                            .labels
                            .as_ref()
                            .unwrap_or_else(|| unreachable!("labeled lanes imply labels"));
                        labels.accumulate_center(center.index(), labeled, counts);
                    }
                    if masked.any() {
                        bfs.run_unlimited(graph, &block.masks, center, masked, |node, m| {
                            counts[node.index()] += m.count_ones();
                        });
                    }
                }
            },
            out,
        );
        self.items = items;
        self.trim_to_budget();
    }

    /// The blocks overlapping sample range `[lo, hi)`, each with the lane
    /// mask selecting exactly the in-range worlds of that block, written
    /// into `out` (reused across queries to keep single-row queries
    /// allocation-free).
    fn range_blocks_into(lo: usize, hi: usize, out: &mut Vec<(u32, Mask<W>)>) {
        out.clear();
        if lo >= hi {
            return;
        }
        let first = lo / Self::BLOCK_LANES;
        let last = (hi - 1) / Self::BLOCK_LANES;
        out.extend((first..=last).map(|b| {
            let base = b * Self::BLOCK_LANES;
            let s = lo.max(base) - base;
            let e = hi.min(base + Self::BLOCK_LANES) - base;
            (b as u32, Mask::<W>::prefix(e).and_not(Mask::prefix(s)))
        }));
    }

    /// Number of samples where `u` and `v` are connected.
    pub fn pair_count(&mut self, u: NodeId, v: NodeId) -> usize {
        let samples = self.samples;
        self.pair_count_range(u, v, 0, samples)
    }

    /// [`BitParallelPool::pair_count`] restricted to the samples with
    /// index in `[lo, hi)` — one masked fixpoint traversal per
    /// overlapping 64-world block.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > num_samples()`.
    pub fn pair_count_range(&mut self, u: NodeId, v: NodeId, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi <= self.samples, "invalid sample range [{lo}, {hi})");
        if !self.resolve_range(lo, hi) {
            return 0;
        }
        self.prepare_unlimited(lo, hi, UnlimitedShape::Pair);
        let mut items = std::mem::take(&mut self.items);
        Self::range_blocks_into(lo, hi, &mut items);
        let run = self.run.clone();
        let BitParallelPool { sampler, shards, config, bfs, .. } = self;
        let graph = sampler.graph();
        let shards: &[BlockShard<W>] = shards;
        let n = graph.num_nodes();
        let per_block = n + 2 * graph.num_edges();
        let total = chunked_sum_with(
            config,
            &items,
            per_block,
            bfs,
            || MultiWorldBfs::<W>::new(n),
            |bfs, &(b, mask)| {
                if run.checkpoint(SamplingPhase::Sweep) {
                    return 0;
                }
                let block = shard_block(shards, b as usize);
                let (labeled, masked) = block.split_lanes(mask);
                let mut hits = 0usize;
                if labeled.any() {
                    let labels = block
                        .labels
                        .as_ref()
                        .unwrap_or_else(|| unreachable!("labeled lanes imply labels"));
                    hits += labels.pair_lanes(u.index(), v.index(), labeled);
                }
                if masked.any() {
                    bfs.run_unlimited(graph, &block.masks, u, masked, |_, _| {});
                    hits += bfs.reach(v).count_ones() as usize;
                }
                hits
            },
        );
        self.items = items;
        self.trim_to_budget();
        total
    }

    /// Depth-limited connection counts from `center` (same contract as
    /// [`WorldPool::counts_within_depths`]) — one depth-limited masked BFS
    /// per 64-world block.
    ///
    /// # Panics
    /// Panics on buffer-size mismatch or `d_select > d_cover`.
    pub fn counts_within_depths(
        &mut self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        let samples = self.samples;
        self.counts_within_depths_range(
            center, d_select, d_cover, 0, samples, out_select, out_cover,
        )
    }

    /// Batched [`BitParallelPool::counts_within_depths`]: rows row-major
    /// per center, computed with multi-source level-synchronous mask BFS
    /// in groups of up to [`MAX_SOURCES`] centers — one traversal per
    /// 64-world block per group.
    ///
    /// # Panics
    /// Panics on buffer-size mismatch or `d_select > d_cover`.
    pub fn counts_within_depths_batch(
        &mut self,
        centers: &[NodeId],
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        let samples = self.samples;
        self.counts_within_depths_batch_range(
            centers, d_select, d_cover, 0, samples, out_select, out_cover,
        )
    }

    /// Batched [`BitParallelPool::counts_within_depths_range`]: rows
    /// row-major per center over the sample window `[lo, hi)`, computed
    /// with multi-source level-synchronous mask BFS in groups of up to
    /// [`MAX_SOURCES`] centers — one traversal per overlapping 64-world
    /// block per group, with lane masks narrowed to the window's worlds.
    ///
    /// # Panics
    /// Panics on buffer-size mismatch, `d_select > d_cover`, `lo > hi`, or
    /// `hi > num_samples()`.
    #[allow(clippy::too_many_arguments)]
    pub fn counts_within_depths_batch_range(
        &mut self,
        centers: &[NodeId],
        d_select: u32,
        d_cover: u32,
        lo: usize,
        hi: usize,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        let n = self.graph().num_nodes();
        let k = centers.len();
        assert_eq!(out_select.len(), k * n, "batch select buffer has wrong length");
        assert_eq!(out_cover.len(), k * n, "batch cover buffer has wrong length");
        assert!(d_select <= d_cover, "d_select ({d_select}) must be ≤ d_cover ({d_cover})");
        assert!(lo <= hi && hi <= self.samples, "invalid sample range [{lo}, {hi})");
        if d_select == DEPTH_UNLIMITED {
            // Both depths unlimited: the fixpoint mode is cheaper.
            self.counts_from_centers_range(centers, lo, hi, out_cover);
            out_select.copy_from_slice(out_cover);
            return;
        }
        if !self.resolve_range(lo, hi) {
            return;
        }
        let mut items = std::mem::take(&mut self.items);
        Self::range_blocks_into(lo, hi, &mut items);
        let run = self.run.clone();
        let BitParallelPool { sampler, shards, config, bfs, .. } = self;
        let graph = sampler.graph();
        let shards: &[BlockShard<W>] = shards;
        let per_block = n + 2 * graph.num_edges();
        for (gi, group) in centers.chunks(MAX_SOURCES).enumerate() {
            let kg = group.len();
            let sel_group = &mut out_select[gi * MAX_SOURCES * n..][..kg * n];
            let cov_group = &mut out_cover[gi * MAX_SOURCES * n..][..kg * n];
            chunked_counts2_with(
                config,
                &items,
                kg * n,
                per_block * kg,
                bfs,
                || MultiWorldBfs::<W>::new(n),
                |select, cover, bfs, items| {
                    for &(b, mask) in items {
                        if run.checkpoint(SamplingPhase::Sweep) {
                            return;
                        }
                        bfs.run_multi(
                            graph,
                            &shard_block(shards, b as usize).masks,
                            group,
                            mask,
                            d_cover,
                            |node, depth, j, m| {
                                let c = m.count_ones();
                                cover[j * n + node.index()] += c;
                                if depth <= d_select {
                                    select[j * n + node.index()] += c;
                                }
                            },
                        );
                    }
                },
                sel_group,
                cov_group,
            );
        }
        self.items = items;
        self.trim_to_budget();
    }

    /// [`BitParallelPool::counts_within_depths`] restricted to the samples
    /// with index in `[lo, hi)` (see
    /// [`BitParallelPool::counts_from_center_range`]).
    ///
    /// # Panics
    /// Panics on buffer-size mismatch, `d_select > d_cover`, `lo > hi`, or
    /// `hi > num_samples()`.
    #[allow(clippy::too_many_arguments)]
    pub fn counts_within_depths_range(
        &mut self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        lo: usize,
        hi: usize,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        let n = self.graph().num_nodes();
        assert_eq!(out_select.len(), n, "select buffer has wrong length");
        assert_eq!(out_cover.len(), n, "cover buffer has wrong length");
        assert!(d_select <= d_cover, "d_select ({d_select}) must be ≤ d_cover ({d_cover})");
        assert!(lo <= hi && hi <= self.samples, "invalid sample range [{lo}, {hi})");
        if d_select == DEPTH_UNLIMITED {
            self.counts_from_center_range(center, lo, hi, out_cover);
            out_select.copy_from_slice(out_cover);
            return;
        }
        if !self.resolve_range(lo, hi) {
            return;
        }
        let mut items = std::mem::take(&mut self.items);
        Self::range_blocks_into(lo, hi, &mut items);
        let run = self.run.clone();
        let BitParallelPool { sampler, shards, config, bfs, .. } = self;
        let graph = sampler.graph();
        let shards: &[BlockShard<W>] = shards;
        let per_block = n + 2 * graph.num_edges();
        chunked_counts2_with(
            config,
            &items,
            n,
            per_block,
            bfs,
            || MultiWorldBfs::<W>::new(n),
            |select, cover, bfs, items| {
                for &(b, mask) in items {
                    if run.checkpoint(SamplingPhase::Sweep) {
                        return;
                    }
                    bfs.run(
                        graph,
                        &shard_block(shards, b as usize).masks,
                        center,
                        mask,
                        d_cover,
                        |node, depth, m| {
                            let c = m.count_ones();
                            cover[node.index()] += c;
                            if depth <= d_select {
                                select[node.index()] += c;
                            }
                        },
                    );
                }
            },
            out_select,
            out_cover,
        );
        self.items = items;
        self.trim_to_budget();
    }

    /// Number of samples where `dist(u, v) ≤ depth`.
    pub fn pair_count_within(&mut self, u: NodeId, v: NodeId, depth: u32) -> usize {
        let samples = self.samples;
        self.pair_count_within_range(u, v, depth, 0, samples)
    }

    /// [`BitParallelPool::pair_count_within`] restricted to the samples
    /// with index in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > num_samples()`.
    pub fn pair_count_within_range(
        &mut self,
        u: NodeId,
        v: NodeId,
        depth: u32,
        lo: usize,
        hi: usize,
    ) -> usize {
        if depth == DEPTH_UNLIMITED {
            return self.pair_count_range(u, v, lo, hi);
        }
        assert!(lo <= hi && hi <= self.samples, "invalid sample range [{lo}, {hi})");
        if !self.resolve_range(lo, hi) {
            return 0;
        }
        let mut items = std::mem::take(&mut self.items);
        Self::range_blocks_into(lo, hi, &mut items);
        let run = self.run.clone();
        let BitParallelPool { sampler, shards, config, bfs, .. } = self;
        let graph = sampler.graph();
        let shards: &[BlockShard<W>] = shards;
        let n = graph.num_nodes();
        let per_block = n + 2 * graph.num_edges();
        let total = chunked_sum_with(
            config,
            &items,
            per_block,
            bfs,
            || MultiWorldBfs::<W>::new(n),
            |bfs, &(b, mask)| {
                if run.checkpoint(SamplingPhase::Sweep) {
                    return 0;
                }
                let mut hit = Mask::<W>::ZERO;
                bfs.run(
                    graph,
                    &shard_block(shards, b as usize).masks,
                    u,
                    mask,
                    depth,
                    |node, _, m| {
                        if node == v {
                            hit |= m;
                        }
                    },
                );
                hit.count_ones() as usize
            },
        );
        self.items = items;
        self.trim_to_budget();
        total
    }

    /// The estimator `p̃(u, v)` of Eq. 3. Returns 0 for an empty pool.
    pub fn pair_estimate(&mut self, u: NodeId, v: NodeId) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.pair_count(u, v) as f64 / self.samples as f64
    }
}

impl<const W: usize> WorldEngine for BitParallelPool<'_, W> {
    fn set_memory_budget(&mut self, budget: MemoryBudget) {
        BitParallelPool::set_memory_budget(self, budget)
    }

    fn set_run_state(&mut self, run: RunState) {
        BitParallelPool::set_run_state(self, run)
    }

    fn memory_stats(&self) -> MemoryStats {
        BitParallelPool::memory_stats(self)
    }

    fn graph(&self) -> &UncertainGraph {
        BitParallelPool::graph(self)
    }

    fn num_samples(&self) -> usize {
        BitParallelPool::num_samples(self)
    }

    fn engine_stats(&self) -> EngineStats {
        BitParallelPool::engine_stats(self)
    }

    fn ensure(&mut self, r: usize) {
        BitParallelPool::ensure(self, r)
    }

    fn counts_from_center(&mut self, center: NodeId, out: &mut [u32]) {
        BitParallelPool::counts_from_center(self, center, out)
    }

    fn counts_from_centers(&mut self, centers: &[NodeId], out: &mut [u32]) {
        BitParallelPool::counts_from_centers(self, centers, out)
    }

    fn counts_from_center_range(&mut self, center: NodeId, lo: usize, hi: usize, out: &mut [u32]) {
        BitParallelPool::counts_from_center_range(self, center, lo, hi, out)
    }

    fn counts_from_centers_range(
        &mut self,
        centers: &[NodeId],
        lo: usize,
        hi: usize,
        out: &mut [u32],
    ) {
        BitParallelPool::counts_from_centers_range(self, centers, lo, hi, out)
    }

    fn pair_count(&mut self, u: NodeId, v: NodeId) -> usize {
        BitParallelPool::pair_count(self, u, v)
    }

    fn counts_within_depths(
        &mut self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        BitParallelPool::counts_within_depths(
            self, center, d_select, d_cover, out_select, out_cover,
        )
    }

    fn counts_within_depths_batch(
        &mut self,
        centers: &[NodeId],
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        BitParallelPool::counts_within_depths_batch(
            self, centers, d_select, d_cover, out_select, out_cover,
        )
    }

    fn counts_within_depths_range(
        &mut self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        lo: usize,
        hi: usize,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        BitParallelPool::counts_within_depths_range(
            self, center, d_select, d_cover, lo, hi, out_select, out_cover,
        )
    }

    fn counts_within_depths_batch_range(
        &mut self,
        centers: &[NodeId],
        d_select: u32,
        d_cover: u32,
        lo: usize,
        hi: usize,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        BitParallelPool::counts_within_depths_batch_range(
            self, centers, d_select, d_cover, lo, hi, out_select, out_cover,
        )
    }

    fn pair_count_within(&mut self, u: NodeId, v: NodeId, depth: u32) -> usize {
        BitParallelPool::pair_count_within(self, u, v, depth)
    }

    fn pair_count_range(&mut self, u: NodeId, v: NodeId, lo: usize, hi: usize) -> usize {
        BitParallelPool::pair_count_range(self, u, v, lo, hi)
    }

    fn pair_count_within_range(
        &mut self,
        u: NodeId,
        v: NodeId,
        depth: u32,
        lo: usize,
        hi: usize,
    ) -> usize {
        BitParallelPool::pair_count_within_range(self, u, v, depth, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn chain(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn ensure_grows_monotonically() {
        let g = chain(10, 0.5);
        let mut pool = ComponentPool::new(&g, 1, 1);
        assert_eq!(pool.num_samples(), 0);
        pool.ensure(10);
        assert_eq!(pool.num_samples(), 10);
        pool.ensure(5); // no shrink
        assert_eq!(pool.num_samples(), 10);
        pool.ensure(25);
        assert_eq!(pool.num_samples(), 25);
    }

    #[test]
    fn growth_schedule_does_not_change_samples() {
        let g = chain(12, 0.4);
        let mut a = ComponentPool::new(&g, 3, 1);
        a.ensure(20);
        let mut b = ComponentPool::new(&g, 3, 1);
        b.ensure(7);
        b.ensure(13);
        b.ensure(20);
        for i in 0..20 {
            assert_eq!(a.labels(i), b.labels(i), "sample {i} differs");
        }
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let g = chain(20, 0.5);
        let mut serial = ComponentPool::new(&g, 5, 1);
        serial.ensure(33);
        let mut parallel = ComponentPool::new(&g, 5, 4);
        parallel.ensure(33);
        for i in 0..33 {
            assert_eq!(serial.labels(i), parallel.labels(i), "sample {i} differs");
        }
    }

    #[test]
    fn membership_index_consistent_with_labels() {
        let g = chain(15, 0.5);
        let mut pool = ComponentPool::new(&g, 9, 1);
        pool.ensure(20);
        for i in 0..20 {
            let labels = pool.labels(i);
            for c in 0..pool.component_count(i) as u32 {
                let members = pool.component_members(i, c);
                assert!(!members.is_empty());
                for u in members {
                    assert_eq!(labels[u as usize], c);
                }
            }
            let total: usize = (0..pool.component_count(i) as u32)
                .map(|c| pool.component_members(i, c).len())
                .sum();
            assert_eq!(total, g.num_nodes());
        }
    }

    #[test]
    fn counts_from_center_match_pair_counts() {
        let g = chain(8, 0.6);
        let mut pool = ComponentPool::new(&g, 2, 1);
        pool.ensure(50);
        let center = NodeId(3);
        let mut counts = vec![0u32; 8];
        pool.counts_from_center(center, &mut counts);
        for u in 0..8u32 {
            assert_eq!(counts[u as usize] as usize, pool.pair_count(center, NodeId(u)));
        }
        // The center is connected to itself in every sample.
        assert_eq!(counts[3] as usize, 50);
    }

    #[test]
    fn parallel_counts_match_serial_counts() {
        // 64 nodes × 1100 rows clears the MIN_PARALLEL_WORK gate, so the
        // 4-worker pool genuinely takes the chunked parallel path.
        let g = chain(64, 0.55);
        let mut serial = ComponentPool::new(&g, 13, 1);
        let mut parallel = ComponentPool::new(&g, 13, 4);
        serial.ensure(1100);
        parallel.ensure(1100);
        let mut counts_serial = vec![0u32; 64];
        let mut counts_parallel = vec![0u32; 64];
        for center in [0u32, 21, 42, 63] {
            serial.counts_from_center(NodeId(center), &mut counts_serial);
            parallel.counts_from_center(NodeId(center), &mut counts_parallel);
            assert_eq!(counts_serial, counts_parallel, "center {center}");
        }
    }

    #[test]
    fn parallel_pair_counts_match_serial() {
        // pair_count is O(1) per row, so its parallel path needs a pool
        // larger than MIN_PARALLEL_WORK rows.
        let g = chain(8, 0.5);
        let mut serial = ComponentPool::new(&g, 17, 1);
        let mut parallel = ComponentPool::new(&g, 17, 4);
        serial.ensure(70_000);
        parallel.ensure(70_000);
        for v in 1..8u32 {
            assert_eq!(
                serial.pair_count(NodeId(0), NodeId(v)),
                parallel.pair_count(NodeId(0), NodeId(v)),
                "pair (0, {v})"
            );
        }
    }

    #[test]
    fn pair_estimate_converges_on_certain_graph() {
        let g = chain(4, 1.0);
        let mut pool = ComponentPool::new(&g, 8, 1);
        pool.ensure(10);
        assert_eq!(pool.pair_estimate(NodeId(0), NodeId(3)), 1.0);
    }

    #[test]
    fn empty_pool_estimates_zero() {
        let g = chain(3, 0.5);
        let mut pool = ComponentPool::new(&g, 1, 1);
        assert_eq!(pool.pair_estimate(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn world_pool_grows_and_reproduces() {
        let g = chain(10, 0.5);
        let mut a = WorldPool::new(&g, 77, 1);
        a.ensure(12);
        let mut b = WorldPool::new(&g, 77, 3);
        b.ensure(4);
        b.ensure(12);
        for i in 0..12 {
            assert_eq!(a.world(i), b.world(i), "world {i} differs");
        }
    }

    #[test]
    fn depth_counts_respect_depth() {
        // Certain chain 0-1-2-3: within depth 1 of node 0 only {0,1}.
        let g = chain(4, 1.0);
        let mut pool = WorldPool::new(&g, 1, 1);
        pool.ensure(5);
        let mut sel = vec![0u32; 4];
        let mut cov = vec![0u32; 4];
        pool.counts_within_depths(NodeId(0), 1, 2, &mut sel, &mut cov);
        assert_eq!(sel, vec![5, 5, 0, 0]);
        assert_eq!(cov, vec![5, 5, 5, 0]);
    }

    #[test]
    fn parallel_depth_counts_match_serial() {
        // 64 nodes × 1100 worlds clears the MIN_PARALLEL_WORK gate for the
        // depth-limited queries (per-item work ≈ n).
        let g = chain(64, 0.6);
        let mut serial = WorldPool::new(&g, 21, 1);
        let mut parallel = WorldPool::new(&g, 21, 4);
        serial.ensure(1100);
        parallel.ensure(1100);
        let (mut s1, mut c1) = (vec![0u32; 64], vec![0u32; 64]);
        let (mut s2, mut c2) = (vec![0u32; 64], vec![0u32; 64]);
        for center in [0u32, 21, 42, 63] {
            serial.counts_within_depths(NodeId(center), 2, 4, &mut s1, &mut c1);
            parallel.counts_within_depths(NodeId(center), 2, 4, &mut s2, &mut c2);
            assert_eq!(s1, s2, "select counts differ at center {center}");
            assert_eq!(c1, c2, "cover counts differ at center {center}");
        }
        for v in [1u32, 31, 63] {
            assert_eq!(
                serial.pair_count_within(NodeId(0), NodeId(v), 3),
                parallel.pair_count_within(NodeId(0), NodeId(v), 3),
                "pair counts differ for (0, {v})"
            );
        }
    }

    #[test]
    fn depth_pair_estimates() {
        let g = chain(3, 1.0);
        let mut pool = WorldPool::new(&g, 4, 1);
        pool.ensure(8);
        assert_eq!(pool.pair_estimate_within(NodeId(0), NodeId(2), 1), 0.0);
        assert_eq!(pool.pair_estimate_within(NodeId(0), NodeId(2), 2), 1.0);
    }

    #[test]
    fn world_and_component_pools_agree_at_full_depth() {
        let g = chain(6, 0.5);
        let mut cpool = ComponentPool::new(&g, 31, 1);
        let mut wpool = WorldPool::new(&g, 31, 1);
        cpool.ensure(200);
        wpool.ensure(200);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                let a = cpool.pair_estimate(NodeId(u), NodeId(v));
                let b = wpool.pair_estimate_within(NodeId(u), NodeId(v), 5);
                assert!((a - b).abs() < 1e-12, "({u},{v}): {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "d_select")]
    fn depth_order_enforced() {
        let g = chain(3, 1.0);
        let mut pool = WorldPool::new(&g, 1, 1);
        pool.ensure(1);
        let mut sel = vec![0u32; 3];
        let mut cov = vec![0u32; 3];
        pool.counts_within_depths(NodeId(0), 2, 1, &mut sel, &mut cov);
    }

    // ───────────── bit-parallel backend ─────────────

    #[test]
    fn bit_pool_blocks_and_lanes() {
        let g = chain(10, 0.5);
        let mut pool = BitParallelPool::<1>::new(&g, 7, 1);
        pool.ensure(1);
        assert_eq!((pool.num_samples(), pool.num_blocks()), (1, 1));
        pool.ensure(64);
        assert_eq!((pool.num_samples(), pool.num_blocks()), (64, 1));
        pool.ensure(65);
        assert_eq!((pool.num_samples(), pool.num_blocks()), (65, 2));
        pool.ensure(300);
        assert_eq!((pool.num_samples(), pool.num_blocks()), (300, 5));
    }

    #[test]
    fn bit_pool_worlds_match_scalar_worlds() {
        let g = chain(12, 0.45);
        let mut scalar = WorldPool::new(&g, 99, 1);
        scalar.ensure(130);
        // Grown in uneven steps to exercise partial-block top-up.
        let mut bit = BitParallelPool::<1>::new(&g, 99, 1);
        bit.ensure(10);
        bit.ensure(64);
        bit.ensure(70);
        bit.ensure(130);
        for i in 0..130 {
            let world = scalar.world(i);
            for e in 0..g.num_edges() {
                assert_eq!(
                    bit.edge_mask(i / LANES, e).get(i % LANES),
                    world.get(e),
                    "world {i} edge {e} differs"
                );
            }
        }
    }

    #[test]
    fn bit_pool_counts_match_component_pool() {
        let g = chain(9, 0.5);
        let mut scalar = ComponentPool::new(&g, 42, 1);
        let mut bit = BitParallelPool::<1>::new(&g, 42, 1);
        // 100 is deliberately not a multiple of 64.
        scalar.ensure(100);
        bit.ensure(100);
        let mut a = vec![0u32; 9];
        let mut b = vec![0u32; 9];
        for c in 0..9u32 {
            scalar.counts_from_center(NodeId(c), &mut a);
            bit.counts_from_center(NodeId(c), &mut b);
            assert_eq!(a, b, "center {c}");
            for v in 0..9u32 {
                assert_eq!(
                    scalar.pair_count(NodeId(c), NodeId(v)),
                    bit.pair_count(NodeId(c), NodeId(v)),
                    "pair ({c},{v})"
                );
            }
        }
    }

    #[test]
    fn bit_pool_depth_counts_match_world_pool() {
        let g = chain(10, 0.6);
        let mut scalar = WorldPool::new(&g, 5, 1);
        let mut bit = BitParallelPool::<1>::new(&g, 5, 1);
        scalar.ensure(97);
        bit.ensure(97);
        let (mut s1, mut c1) = (vec![0u32; 10], vec![0u32; 10]);
        let (mut s2, mut c2) = (vec![0u32; 10], vec![0u32; 10]);
        for center in 0..10u32 {
            for (ds, dc) in [(0, 0), (1, 2), (2, 2), (3, 9)] {
                scalar.counts_within_depths(NodeId(center), ds, dc, &mut s1, &mut c1);
                bit.counts_within_depths(NodeId(center), ds, dc, &mut s2, &mut c2);
                assert_eq!(s1, s2, "select center {center} depths ({ds},{dc})");
                assert_eq!(c1, c2, "cover center {center} depths ({ds},{dc})");
            }
        }
        for v in 1..10u32 {
            for d in [1u32, 3, 8] {
                assert_eq!(
                    scalar.pair_count_within(NodeId(0), NodeId(v), d),
                    bit.pair_count_within(NodeId(0), NodeId(v), d),
                    "pair (0,{v}) depth {d}"
                );
            }
        }
    }

    #[test]
    fn bit_pool_growth_schedule_invariant() {
        let g = chain(8, 0.5);
        let mut a = BitParallelPool::<1>::new(&g, 13, 1);
        a.ensure(150);
        let mut b = BitParallelPool::<1>::new(&g, 13, 4);
        b.ensure(3);
        b.ensure(66);
        b.ensure(150);
        let mut ca = vec![0u32; 8];
        let mut cb = vec![0u32; 8];
        for c in 0..8u32 {
            a.counts_from_center(NodeId(c), &mut ca);
            b.counts_from_center(NodeId(c), &mut cb);
            assert_eq!(ca, cb, "center {c}");
        }
    }

    #[test]
    fn bit_pool_empty_and_certain() {
        let g = chain(4, 1.0);
        let mut pool = BitParallelPool::<1>::new(&g, 8, 1);
        assert_eq!(pool.pair_estimate(NodeId(0), NodeId(3)), 0.0);
        pool.ensure(10);
        assert_eq!(pool.pair_estimate(NodeId(0), NodeId(3)), 1.0);
        let mut counts = vec![0u32; 4];
        pool.counts_from_center(NodeId(0), &mut counts);
        assert_eq!(counts, vec![10, 10, 10, 10]);
    }

    #[test]
    fn engine_trait_unifies_backends() {
        fn total_reach(engine: &mut dyn WorldEngine, center: NodeId) -> u32 {
            let n = engine.graph().num_nodes();
            let mut counts = vec![0u32; n];
            engine.counts_from_center(center, &mut counts);
            counts.iter().sum()
        }
        let g = chain(6, 0.7);
        let mut scalar = ComponentPool::new(&g, 3, 1);
        let mut bit = BitParallelPool::<1>::new(&g, 3, 1);
        WorldEngine::ensure(&mut scalar, 70);
        WorldEngine::ensure(&mut bit, 70);
        assert_eq!(total_reach(&mut scalar, NodeId(2)), total_reach(&mut bit, NodeId(2)));
    }

    #[test]
    fn batched_counts_match_sequential_on_all_backends() {
        let g = chain(11, 0.5);
        let centers: Vec<NodeId> = [0u32, 5, 5, 10, 3].iter().map(|&c| NodeId(c)).collect(); // incl. duplicate
        let k = centers.len();
        let mut want = vec![0u32; k * 11];
        let mut scalar = ComponentPool::new(&g, 77, 1);
        scalar.ensure(90);
        for (j, &c) in centers.iter().enumerate() {
            scalar.counts_from_center(c, &mut want[j * 11..(j + 1) * 11]);
        }
        let mut got = vec![0u32; k * 11];
        scalar.counts_from_centers(&centers, &mut got);
        assert_eq!(got, want, "component pool batch differs");
        let mut bit = BitParallelPool::<1>::new(&g, 77, 1);
        bit.ensure(90);
        got.fill(0);
        bit.counts_from_centers(&centers, &mut got);
        assert_eq!(got, want, "bit-parallel batch differs");
        let mut world = WorldPool::new(&g, 77, 1);
        world.ensure(90);
        got.fill(0);
        WorldEngine::counts_from_centers(&mut world, &centers, &mut got);
        assert_eq!(got, want, "world pool batch differs");
    }

    #[test]
    fn ranged_counts_add_up_to_full_counts() {
        let g = chain(9, 0.55);
        let mut scalar = ComponentPool::new(&g, 5, 1);
        let mut bit = BitParallelPool::<1>::new(&g, 5, 1);
        scalar.ensure(150);
        bit.ensure(150);
        let mut full = vec![0u32; 9];
        let mut acc = vec![0u32; 9];
        let mut part = vec![0u32; 9];
        for center in [0u32, 4, 8] {
            scalar.counts_from_center(NodeId(center), &mut full);
            // Split points chosen to straddle the 64-world block boundary.
            for (engine, name) in [
                (&mut scalar as &mut dyn WorldEngine, "scalar"),
                (&mut bit as &mut dyn WorldEngine, "bitparallel"),
            ] {
                acc.fill(0);
                for w in [(0usize, 10usize), (10, 64), (64, 65), (65, 130), (130, 150)] {
                    engine.counts_from_center_range(NodeId(center), w.0, w.1, &mut part);
                    for (a, &p) in acc.iter_mut().zip(&part) {
                        *a += p;
                    }
                }
                assert_eq!(acc, full, "{name} ranged counts at center {center}");
            }
        }
    }

    #[test]
    fn ranged_depth_counts_add_up_to_full_counts() {
        let g = chain(10, 0.6);
        let mut scalar = WorldPool::new(&g, 21, 1);
        let mut bit = BitParallelPool::<1>::new(&g, 21, 1);
        scalar.ensure(100);
        bit.ensure(100);
        let (mut fs, mut fc) = (vec![0u32; 10], vec![0u32; 10]);
        scalar.counts_within_depths(NodeId(2), 1, 3, &mut fs, &mut fc);
        let (mut ps, mut pc) = (vec![0u32; 10], vec![0u32; 10]);
        for (engine, name) in [
            (&mut scalar as &mut dyn WorldEngine, "scalar"),
            (&mut bit as &mut dyn WorldEngine, "bitparallel"),
        ] {
            let (mut acs, mut acc) = (vec![0u32; 10], vec![0u32; 10]);
            for w in [(0usize, 63usize), (63, 64), (64, 100)] {
                engine.counts_within_depths_range(NodeId(2), 1, 3, w.0, w.1, &mut ps, &mut pc);
                for i in 0..10 {
                    acs[i] += ps[i];
                    acc[i] += pc[i];
                }
            }
            assert_eq!(acs, fs, "{name} ranged select counts");
            assert_eq!(acc, fc, "{name} ranged cover counts");
        }
    }

    #[test]
    fn batched_depth_counts_match_sequential() {
        let g = chain(10, 0.6);
        let centers: Vec<NodeId> = (0..10).map(NodeId).collect();
        let k = centers.len();
        let mut scalar = WorldPool::new(&g, 9, 1);
        let mut bit = BitParallelPool::<1>::new(&g, 9, 1);
        scalar.ensure(97);
        bit.ensure(97);
        let (mut ws, mut wc) = (vec![0u32; k * 10], vec![0u32; k * 10]);
        for (j, &c) in centers.iter().enumerate() {
            scalar.counts_within_depths(
                c,
                1,
                4,
                &mut ws[j * 10..(j + 1) * 10],
                &mut wc[j * 10..(j + 1) * 10],
            );
        }
        let (mut gs, mut gc) = (vec![0u32; k * 10], vec![0u32; k * 10]);
        scalar.counts_within_depths_batch(&centers, 1, 4, &mut gs, &mut gc);
        assert_eq!((&gs, &gc), (&ws, &wc), "world pool batch depth rows differ");
        gs.fill(0);
        gc.fill(0);
        bit.counts_within_depths_batch(&centers, 1, 4, &mut gs, &mut gc);
        assert_eq!((&gs, &gc), (&ws, &wc), "bit-parallel batch depth rows differ");
    }

    #[test]
    fn empty_center_batch_is_a_noop() {
        let g = chain(4, 0.5);
        let mut pool = ComponentPool::new(&g, 1, 1);
        pool.ensure(8);
        pool.counts_from_centers(&[], &mut []);
        let mut bit = BitParallelPool::<1>::new(&g, 1, 1);
        bit.ensure(8);
        bit.counts_from_centers(&[], &mut []);
    }

    #[test]
    #[should_panic(expected = "invalid sample range")]
    fn ranged_counts_reject_out_of_bounds() {
        let g = chain(4, 0.5);
        let mut pool = ComponentPool::new(&g, 1, 1);
        pool.ensure(8);
        let mut out = vec![0u32; 4];
        pool.counts_from_center_range(NodeId(0), 2, 9, &mut out);
    }

    #[test]
    #[should_panic(expected = "unlimited-depth queries only")]
    fn component_pool_rejects_finite_depths() {
        let g = chain(3, 0.5);
        let mut pool = ComponentPool::new(&g, 1, 1);
        pool.ensure(4);
        let mut sel = vec![0u32; 3];
        let mut cov = vec![0u32; 3];
        WorldEngine::counts_within_depths(&mut pool, NodeId(0), 1, 2, &mut sel, &mut cov);
    }

    #[test]
    fn ranged_batch_counts_match_sequential_ranged_on_all_backends() {
        let g = chain(11, 0.55);
        let centers: Vec<NodeId> = [0u32, 5, 5, 10, 3].iter().map(|&c| NodeId(c)).collect(); // incl. duplicate
        let k = centers.len();
        let n = 11;
        let mut scalar = ComponentPool::new(&g, 33, 1);
        let mut world = WorldPool::new(&g, 33, 1);
        let mut bit = BitParallelPool::<1>::new(&g, 33, 1);
        scalar.ensure(150);
        world.ensure(150);
        bit.ensure(150);
        // Windows straddle block boundaries, incl. a single-world window.
        for (lo, hi) in [(0usize, 10usize), (10, 64), (64, 65), (37, 130), (130, 150), (70, 70)] {
            let mut want = vec![0u32; k * n];
            for (j, &c) in centers.iter().enumerate() {
                scalar.counts_from_center_range(c, lo, hi, &mut want[j * n..(j + 1) * n]);
            }
            let mut got = vec![0u32; k * n];
            for (engine, name) in [
                (&mut scalar as &mut dyn WorldEngine, "scalar"),
                (&mut world as &mut dyn WorldEngine, "world"),
                (&mut bit as &mut dyn WorldEngine, "bitparallel"),
            ] {
                got.fill(0);
                engine.counts_from_centers_range(&centers, lo, hi, &mut got);
                assert_eq!(got, want, "{name} ranged batch differs on [{lo}, {hi})");
            }
        }
    }

    #[test]
    fn ranged_batch_depth_counts_match_sequential_ranged() {
        let g = chain(10, 0.6);
        let centers: Vec<NodeId> = [1u32, 4, 4, 9, 0].iter().map(|&c| NodeId(c)).collect();
        let k = centers.len();
        let n = 10;
        let mut scalar = WorldPool::new(&g, 13, 1);
        let mut bit = BitParallelPool::<1>::new(&g, 13, 1);
        scalar.ensure(130);
        bit.ensure(130);
        for (lo, hi) in [(0usize, 50usize), (50, 64), (63, 65), (64, 130), (90, 90)] {
            let (mut ws, mut wc) = (vec![0u32; k * n], vec![0u32; k * n]);
            for (j, &c) in centers.iter().enumerate() {
                scalar.counts_within_depths_range(
                    c,
                    1,
                    3,
                    lo,
                    hi,
                    &mut ws[j * n..(j + 1) * n],
                    &mut wc[j * n..(j + 1) * n],
                );
            }
            let (mut gs, mut gc) = (vec![0u32; k * n], vec![0u32; k * n]);
            for (engine, name) in [
                (&mut scalar as &mut dyn WorldEngine, "world"),
                (&mut bit as &mut dyn WorldEngine, "bitparallel"),
            ] {
                gs.fill(0);
                gc.fill(0);
                engine.counts_within_depths_batch_range(&centers, 1, 3, lo, hi, &mut gs, &mut gc);
                assert_eq!(gs, ws, "{name} ranged batch select differs on [{lo}, {hi})");
                assert_eq!(gc, wc, "{name} ranged batch cover differs on [{lo}, {hi})");
            }
        }
    }

    #[test]
    fn ranged_pair_counts_add_up_to_full_counts() {
        let g = chain(10, 0.55);
        let mut scalar = ComponentPool::new(&g, 19, 1);
        let mut world = WorldPool::new(&g, 19, 1);
        let mut bit = BitParallelPool::<1>::new(&g, 19, 1);
        scalar.ensure(150);
        world.ensure(150);
        bit.ensure(150);
        let windows = [(0usize, 10usize), (10, 64), (64, 65), (65, 130), (130, 150)];
        for (u, v) in [(0u32, 1u32), (0, 9), (3, 7)] {
            let (u, v) = (NodeId(u), NodeId(v));
            let full = scalar.pair_count(u, v);
            for (engine, name) in [
                (&mut scalar as &mut dyn WorldEngine, "scalar"),
                (&mut world as &mut dyn WorldEngine, "world"),
                (&mut bit as &mut dyn WorldEngine, "bitparallel"),
            ] {
                let sum: usize =
                    windows.iter().map(|&(lo, hi)| engine.pair_count_range(u, v, lo, hi)).sum();
                assert_eq!(sum, full, "{name} ranged pair counts for ({u}, {v})");
            }
            // Depth-limited ranged pair counts on the depth-capable pair.
            let full_d = world.pair_count_within(u, v, 3);
            for (engine, name) in [
                (&mut world as &mut dyn WorldEngine, "world"),
                (&mut bit as &mut dyn WorldEngine, "bitparallel"),
            ] {
                let sum: usize = windows
                    .iter()
                    .map(|&(lo, hi)| engine.pair_count_within_range(u, v, 3, lo, hi))
                    .sum();
                assert_eq!(sum, full_d, "{name} ranged depth pair counts for ({u}, {v})");
            }
        }
    }

    // ───────────── adaptive finalization ─────────────

    #[test]
    fn adaptive_counts_match_scalar_and_pure_mask() {
        let g = chain(11, 0.5);
        let mut scalar = ComponentPool::new(&g, 6, 1);
        let mut mask = BitParallelPool::<1>::new(&g, 6, 1);
        let mut adaptive = BitParallelPool::<1>::new_adaptive(&g, 6, 1);
        // 150 = 2 full blocks + a 22-lane tail.
        scalar.ensure(150);
        mask.ensure(150);
        adaptive.ensure(150);
        let mut a = vec![0u32; 11];
        let mut b = vec![0u32; 11];
        let mut c = vec![0u32; 11];
        for center in 0..11u32 {
            scalar.counts_from_center(NodeId(center), &mut a);
            mask.counts_from_center(NodeId(center), &mut b);
            adaptive.counts_from_center(NodeId(center), &mut c);
            assert_eq!(a, b, "mask center {center}");
            assert_eq!(a, c, "adaptive center {center}");
            for v in 0..11u32 {
                assert_eq!(
                    scalar.pair_count(NodeId(center), NodeId(v)),
                    adaptive.pair_count(NodeId(center), NodeId(v)),
                    "pair ({center},{v})"
                );
            }
        }
        let stats = adaptive.engine_stats();
        assert_eq!(stats.finalized_blocks, 3, "{stats:?}");
        assert_eq!(stats.finalized_lanes, 150, "{stats:?}");
        assert!(stats.label_queries > 0);
        assert_eq!(mask.engine_stats(), EngineStats::default(), "pure-mask pool reports no stats");
    }

    #[test]
    fn depth_only_workload_never_finalizes() {
        let g = chain(9, 0.6);
        let mut pool = BitParallelPool::<1>::new_adaptive(&g, 4, 1);
        pool.ensure(130);
        let (mut sel, mut cov) = (vec![0u32; 9], vec![0u32; 9]);
        for center in 0..9u32 {
            pool.counts_within_depths(NodeId(center), 2, 4, &mut sel, &mut cov);
        }
        pool.pair_count_within(NodeId(0), NodeId(5), 3);
        assert_eq!(pool.engine_stats(), EngineStats::default(), "finite depths must stay on masks");
    }

    #[test]
    fn growth_never_relabels_finalized_blocks() {
        let g = chain(8, 0.5);
        let mut pool = BitParallelPool::<1>::new_adaptive(&g, 12, 1);
        let mut counts = vec![0u32; 8];
        pool.ensure(64);
        pool.counts_from_center(NodeId(0), &mut counts);
        let s1 = pool.engine_stats();
        assert_eq!((s1.finalized_blocks, s1.finalized_lanes), (1, 64));
        // Growing appends worlds; the already-finalized block keeps its
        // labels (finalized_lanes counts every lane at most once, so any
        // recomputation would overshoot the pool size).
        pool.ensure(200);
        pool.counts_from_center(NodeId(3), &mut counts);
        let s2 = pool.engine_stats();
        assert_eq!((s2.finalized_blocks, s2.finalized_lanes), (4, 200), "{s2:?}");
        // A further query finalizes nothing new.
        pool.counts_from_center(NodeId(5), &mut counts);
        let s3 = pool.engine_stats();
        assert_eq!((s3.finalized_blocks, s3.finalized_lanes), (4, 200), "{s3:?}");
        assert_eq!(s3.label_queries, s2.label_queries + 4);
    }

    #[test]
    fn partial_block_topup_extends_labels_append_only() {
        let g = chain(7, 0.5);
        let mut pool = BitParallelPool::<1>::new_adaptive(&g, 9, 1);
        let mut counts = vec![0u32; 7];
        // Finalize a 10-lane partial block...
        pool.ensure(10);
        pool.counts_from_center(NodeId(2), &mut counts);
        let s1 = pool.engine_stats();
        assert_eq!((s1.finalized_blocks, s1.finalized_lanes), (1, 10));
        // ...top the same block up to 40 lanes: only the 30 new lanes are
        // labeled, on the same block.
        pool.ensure(40);
        pool.counts_from_center(NodeId(2), &mut counts);
        let s2 = pool.engine_stats();
        assert_eq!((s2.finalized_blocks, s2.finalized_lanes), (1, 40), "{s2:?}");
        // Counts still match a fresh scalar pool.
        let mut scalar = ComponentPool::new(&g, 9, 1);
        scalar.ensure(40);
        let mut want = vec![0u32; 7];
        scalar.counts_from_center(NodeId(2), &mut want);
        assert_eq!(counts, want);
    }

    #[test]
    fn cold_pair_queries_stay_on_masks_until_threshold() {
        use crate::tuning::FINALIZE_AFTER_MASK_QUERIES;
        let g = chain(6, 0.5);
        let mut pool = BitParallelPool::<1>::new_adaptive(&g, 3, 1);
        pool.ensure(64);
        let want = {
            let mut scalar = ComponentPool::new(&g, 3, 1);
            scalar.ensure(64);
            scalar.pair_count(NodeId(0), NodeId(4))
        };
        for i in 0..FINALIZE_AFTER_MASK_QUERIES {
            assert_eq!(pool.pair_count(NodeId(0), NodeId(4)), want);
            let s = pool.engine_stats();
            assert_eq!(s.finalized_lanes, 0, "pair query {i} should stay on masks");
            assert_eq!(s.mask_queries, i as usize + 1);
        }
        // The next pair query crosses the threshold and converts the block.
        assert_eq!(pool.pair_count(NodeId(0), NodeId(4)), want);
        let s = pool.engine_stats();
        assert_eq!((s.finalized_blocks, s.finalized_lanes), (1, 64), "{s:?}");
        assert_eq!(s.label_queries, 1);
    }

    #[test]
    fn mixed_finalized_and_mask_blocks_answer_ranged_queries() {
        let g = chain(10, 0.55);
        let mut scalar = ComponentPool::new(&g, 21, 1);
        let mut pool = BitParallelPool::<1>::new_adaptive(&g, 21, 1);
        scalar.ensure(200);
        pool.ensure(200);
        // Finalize only block 1 (a row query restricted to its worlds).
        let mut row = vec![0u32; 10];
        pool.counts_from_center_range(NodeId(0), 64, 128, &mut row);
        let s = pool.engine_stats();
        assert_eq!((s.finalized_blocks, s.finalized_lanes), (1, 64));
        // Pair queries spanning finalized and mask blocks agree with
        // scalar for windows straddling both kinds.
        for (lo, hi) in [(0usize, 200usize), (10, 130), (64, 128), (100, 190), (0, 64)] {
            for (u, v) in [(0u32, 9u32), (3, 7)] {
                assert_eq!(
                    scalar.pair_count_range(NodeId(u), NodeId(v), lo, hi),
                    pool.pair_count_range(NodeId(u), NodeId(v), lo, hi),
                    "pair ({u},{v}) on [{lo},{hi})"
                );
            }
        }
        // Batched rows across the mixed pool agree too.
        let centers: Vec<NodeId> = (0..10).map(NodeId).collect();
        let mut want = vec![0u32; 10 * 10];
        let mut got = vec![0u32; 10 * 10];
        scalar.counts_from_centers(&centers, &mut want);
        pool.counts_from_centers(&centers, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn wide_and_narrow_labels_agree() {
        let g = chain(13, 0.5);
        let mut narrow = ComponentPool::new(&g, 5, 1);
        let mut wide = ComponentPool::new(&g, 5, 1).with_wide_labels(true);
        narrow.ensure(90);
        wide.ensure(90);
        let mut a = vec![0u32; 13];
        let mut b = vec![0u32; 13];
        for c in 0..13u32 {
            narrow.counts_from_center(NodeId(c), &mut a);
            wide.counts_from_center(NodeId(c), &mut b);
            assert_eq!(a, b, "scalar width mismatch at center {c}");
        }
        let mut bn = BitParallelPool::<1>::new_adaptive(&g, 5, 1);
        let mut bw = BitParallelPool::<1>::new_adaptive(&g, 5, 1).with_wide_labels(true);
        bn.ensure(90);
        bw.ensure(90);
        for c in 0..13u32 {
            bn.counts_from_center(NodeId(c), &mut a);
            bw.counts_from_center(NodeId(c), &mut b);
            assert_eq!(a, b, "block-label width mismatch at center {c}");
        }
        assert_eq!(bn.engine_stats().finalized_lanes, 90);
        assert_eq!(bw.engine_stats().finalized_lanes, 90);
    }

    #[test]
    fn ranged_batch_windows_add_up_to_full_batch() {
        let g = chain(9, 0.5);
        let centers: Vec<NodeId> = (0..9).map(NodeId).collect();
        let n = 9;
        let mut bit = BitParallelPool::<1>::new(&g, 8, 1);
        bit.ensure(150);
        let mut full = vec![0u32; 9 * n];
        bit.counts_from_centers(&centers, &mut full);
        let mut acc = vec![0u32; 9 * n];
        let mut part = vec![0u32; 9 * n];
        for (lo, hi) in [(0usize, 70usize), (70, 128), (128, 150)] {
            bit.counts_from_centers_range(&centers, lo, hi, &mut part);
            for (a, &p) in acc.iter_mut().zip(&part) {
                *a += p;
            }
        }
        assert_eq!(acc, full, "disjoint ranged batches must add up to the full batch");
    }
}
