//! Progressive sample pools.
//!
//! The clustering algorithms lower their probability threshold `q`
//! geometrically and re-estimate probabilities at each step (paper §4); the
//! required sample count grows as `q` shrinks. Pools therefore **grow
//! monotonically**: `ensure(r)` tops the pool up to `r` samples, reusing
//! everything drawn before — the progressive sampling strategy of the
//! paper. Because sample `i` is generated from a per-index RNG (see
//! [`crate::rng`]), the pool contents are independent of the growth
//! schedule and of the number of worker threads.

use std::num::NonZeroUsize;

use ugraph_graph::{Bitset, DepthBfs, NodeId, UncertainGraph, UnionFind, WorldView};

use crate::world::WorldSampler;

/// Resolves a thread-count request: 0 means "all available cores".
fn resolve_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// One sampled world reduced to its connected-component partition.
///
/// Stores the canonical label per node plus a *membership index* (nodes
/// sorted by label with bucket offsets), so all members of a given
/// component can be enumerated in time proportional to the component size.
#[derive(Clone, Debug)]
struct SampleRow {
    /// Canonical component label per node.
    labels: Vec<u32>,
    /// Node indices grouped by label.
    order: Vec<u32>,
    /// `starts[c]..starts[c+1]` delimits component `c` in `order`.
    starts: Vec<u32>,
}

impl SampleRow {
    fn from_labels(labels: Vec<u32>, num_components: usize) -> Self {
        let n = labels.len();
        let mut starts = vec![0u32; num_components + 1];
        for &l in &labels {
            starts[l as usize + 1] += 1;
        }
        for c in 0..num_components {
            starts[c + 1] += starts[c];
        }
        let mut cursor = starts.clone();
        let mut order = vec![0u32; n];
        for (node, &l) in labels.iter().enumerate() {
            let slot = cursor[l as usize] as usize;
            order[slot] = node as u32;
            cursor[l as usize] += 1;
        }
        SampleRow { labels, order, starts }
    }

    #[inline]
    fn members(&self, label: u32) -> &[u32] {
        let lo = self.starts[label as usize] as usize;
        let hi = self.starts[label as usize + 1] as usize;
        &self.order[lo..hi]
    }
}

/// Pool of per-sample connected-component partitions, for **unlimited**
/// connection probabilities.
#[derive(Clone, Debug)]
pub struct ComponentPool<'g> {
    sampler: WorldSampler<'g>,
    rows: Vec<SampleRow>,
    threads: usize,
}

impl<'g> ComponentPool<'g> {
    /// Creates an empty pool over `graph` with master `seed`. `threads = 0`
    /// uses all available cores.
    pub fn new(graph: &'g UncertainGraph, seed: u64, threads: usize) -> Self {
        ComponentPool {
            sampler: WorldSampler::new(graph, seed),
            rows: Vec::new(),
            threads: resolve_threads(threads),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g UncertainGraph {
        self.sampler.graph()
    }

    /// Number of samples currently in the pool.
    pub fn num_samples(&self) -> usize {
        self.rows.len()
    }

    /// Grows the pool to at least `r` samples (no-op if already there).
    pub fn ensure(&mut self, r: usize) {
        let cur = self.rows.len();
        if r <= cur {
            return;
        }
        let new = self.generate_rows(cur as u64, r as u64);
        self.rows.extend(new);
    }

    fn generate_rows(&self, from: u64, to: u64) -> Vec<SampleRow> {
        let n = self.graph().num_nodes();
        let count = (to - from) as usize;
        let make_range = |lo: u64, hi: u64| {
            let mut uf = UnionFind::new(n);
            let mut out = Vec::with_capacity((hi - lo) as usize);
            let mut labels = vec![0u32; n];
            for i in lo..hi {
                let comps = self.sampler.sample_components(i, &mut uf, &mut labels);
                out.push(SampleRow::from_labels(std::mem::replace(&mut labels, vec![0u32; n]), comps));
            }
            out
        };
        let threads = self.threads.min(count.max(1));
        if threads <= 1 || count < 4 {
            return make_range(from, to);
        }
        // Contiguous chunks per thread; deterministic because each sample
        // index has its own RNG stream.
        let chunk = count.div_ceil(threads);
        let mut results: Vec<Vec<SampleRow>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = from + (t * chunk) as u64;
                let hi = to.min(from + ((t + 1) * chunk) as u64);
                if lo >= hi {
                    break;
                }
                handles.push(scope.spawn(move || make_range(lo, hi)));
            }
            for h in handles {
                results.push(h.join().expect("sample generation thread panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Component labels of sample `i` (one per node).
    pub fn labels(&self, i: usize) -> &[u32] {
        &self.rows[i].labels
    }

    /// Members of the component with `label` in sample `i`.
    pub fn component_members(&self, i: usize, label: u32) -> &[u32] {
        self.rows[i].members(label)
    }

    /// Number of components in sample `i`.
    pub fn component_count(&self, i: usize) -> usize {
        self.rows[i].starts.len() - 1
    }

    /// For every node `u`, the number of samples in which `u` lies in the
    /// same component as `center`. `p̃(u, center) = out[u] / num_samples()`.
    ///
    /// Runs in `Σ_i |comp_i(center)|` — only the center's component members
    /// are touched per sample, which on sparse sampled worlds is far below
    /// `n·r`.
    ///
    /// # Panics
    /// Panics if `out.len() != n`.
    pub fn counts_from_center(&self, center: NodeId, out: &mut [u32]) {
        assert_eq!(out.len(), self.graph().num_nodes(), "counts buffer has wrong length");
        out.fill(0);
        for row in &self.rows {
            let label = row.labels[center.index()];
            for &u in row.members(label) {
                out[u as usize] += 1;
            }
        }
    }

    /// Number of samples where `u` and `v` are connected.
    pub fn pair_count(&self, u: NodeId, v: NodeId) -> usize {
        self.rows
            .iter()
            .filter(|row| row.labels[u.index()] == row.labels[v.index()])
            .count()
    }

    /// The estimator `p̃(u, v)` of Eq. 3. Returns 0 for an empty pool.
    pub fn pair_estimate(&self, u: NodeId, v: NodeId) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.pair_count(u, v) as f64 / self.rows.len() as f64
    }
}

/// Pool of per-sample edge bitsets, for **depth-limited** d-connection
/// probabilities (paper §3.4).
#[derive(Clone, Debug)]
pub struct WorldPool<'g> {
    sampler: WorldSampler<'g>,
    worlds: Vec<Bitset>,
    threads: usize,
}

impl<'g> WorldPool<'g> {
    /// Creates an empty world pool over `graph` with master `seed`.
    /// `threads = 0` uses all available cores.
    pub fn new(graph: &'g UncertainGraph, seed: u64, threads: usize) -> Self {
        WorldPool {
            sampler: WorldSampler::new(graph, seed),
            worlds: Vec::new(),
            threads: resolve_threads(threads),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g UncertainGraph {
        self.sampler.graph()
    }

    /// Number of sampled worlds.
    pub fn num_samples(&self) -> usize {
        self.worlds.len()
    }

    /// Grows the pool to at least `r` worlds.
    pub fn ensure(&mut self, r: usize) {
        let cur = self.worlds.len();
        if r <= cur {
            return;
        }
        let m = self.graph().num_edges();
        let count = r - cur;
        let make_range = |lo: u64, hi: u64| {
            let mut out = Vec::with_capacity((hi - lo) as usize);
            for i in lo..hi {
                let mut b = Bitset::with_len(m);
                self.sampler.sample_into(i, &mut b);
                out.push(b);
            }
            out
        };
        let threads = self.threads.min(count.max(1));
        if threads <= 1 || count < 4 {
            let new = make_range(cur as u64, r as u64);
            self.worlds.extend(new);
            return;
        }
        let chunk = count.div_ceil(threads);
        let mut results: Vec<Vec<Bitset>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = cur as u64 + (t * chunk) as u64;
                let hi = (r as u64).min(cur as u64 + ((t + 1) * chunk) as u64);
                if lo >= hi {
                    break;
                }
                handles.push(scope.spawn(move || make_range(lo, hi)));
            }
            for h in handles {
                results.push(h.join().expect("world generation thread panicked"));
            }
        });
        for batch in results {
            self.worlds.extend(batch);
        }
    }

    /// The edge bitset of world `i`.
    pub fn world(&self, i: usize) -> &Bitset {
        &self.worlds[i]
    }

    /// Depth-limited connection counts from `center`.
    ///
    /// For every node `u`, after the call:
    /// * `out_select[u]` = #worlds with `dist(center, u) ≤ d_select`,
    /// * `out_cover[u]`  = #worlds with `dist(center, u) ≤ d_cover`.
    ///
    /// Requires `d_select ≤ d_cover` (one bounded BFS per world covers
    /// both). `bfs` is a reusable workspace sized for the graph.
    ///
    /// # Panics
    /// Panics on buffer-size mismatch or `d_select > d_cover`.
    pub fn counts_within_depths(
        &self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
        bfs: &mut DepthBfs,
    ) {
        let n = self.graph().num_nodes();
        assert_eq!(out_select.len(), n, "select buffer has wrong length");
        assert_eq!(out_cover.len(), n, "cover buffer has wrong length");
        assert!(d_select <= d_cover, "d_select ({d_select}) must be ≤ d_cover ({d_cover})");
        out_select.fill(0);
        out_cover.fill(0);
        for world in &self.worlds {
            let view = WorldView::new(self.graph(), world);
            bfs.run(&view, center, d_cover, |node, depth| {
                out_cover[node.index()] += 1;
                if depth <= d_select {
                    out_select[node.index()] += 1;
                }
            });
        }
    }

    /// Number of worlds where `dist(u, v) ≤ depth`.
    pub fn pair_count_within(&self, u: NodeId, v: NodeId, depth: u32, bfs: &mut DepthBfs) -> usize {
        let mut count = 0usize;
        for world in &self.worlds {
            let view = WorldView::new(self.graph(), world);
            let mut hit = false;
            bfs.run(&view, u, depth, |node, _| hit |= node == v);
            if hit {
                count += 1;
            }
        }
        count
    }

    /// Estimator of the d-connection probability `Pr(u ~d~ v)`.
    pub fn pair_estimate_within(&self, u: NodeId, v: NodeId, depth: u32, bfs: &mut DepthBfs) -> f64 {
        if self.worlds.is_empty() {
            return 0.0;
        }
        self.pair_count_within(u, v, depth, bfs) as f64 / self.worlds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn chain(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn ensure_grows_monotonically() {
        let g = chain(10, 0.5);
        let mut pool = ComponentPool::new(&g, 1, 1);
        assert_eq!(pool.num_samples(), 0);
        pool.ensure(10);
        assert_eq!(pool.num_samples(), 10);
        pool.ensure(5); // no shrink
        assert_eq!(pool.num_samples(), 10);
        pool.ensure(25);
        assert_eq!(pool.num_samples(), 25);
    }

    #[test]
    fn growth_schedule_does_not_change_samples() {
        let g = chain(12, 0.4);
        let mut a = ComponentPool::new(&g, 3, 1);
        a.ensure(20);
        let mut b = ComponentPool::new(&g, 3, 1);
        b.ensure(7);
        b.ensure(13);
        b.ensure(20);
        for i in 0..20 {
            assert_eq!(a.labels(i), b.labels(i), "sample {i} differs");
        }
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let g = chain(20, 0.5);
        let mut serial = ComponentPool::new(&g, 5, 1);
        serial.ensure(33);
        let mut parallel = ComponentPool::new(&g, 5, 4);
        parallel.ensure(33);
        for i in 0..33 {
            assert_eq!(serial.labels(i), parallel.labels(i), "sample {i} differs");
        }
    }

    #[test]
    fn membership_index_consistent_with_labels() {
        let g = chain(15, 0.5);
        let mut pool = ComponentPool::new(&g, 9, 1);
        pool.ensure(20);
        for i in 0..20 {
            let labels = pool.labels(i);
            for c in 0..pool.component_count(i) as u32 {
                let members = pool.component_members(i, c);
                assert!(!members.is_empty());
                for &u in members {
                    assert_eq!(labels[u as usize], c);
                }
            }
            let total: usize =
                (0..pool.component_count(i) as u32).map(|c| pool.component_members(i, c).len()).sum();
            assert_eq!(total, g.num_nodes());
        }
    }

    #[test]
    fn counts_from_center_match_pair_counts() {
        let g = chain(8, 0.6);
        let mut pool = ComponentPool::new(&g, 2, 1);
        pool.ensure(50);
        let center = NodeId(3);
        let mut counts = vec![0u32; 8];
        pool.counts_from_center(center, &mut counts);
        for u in 0..8u32 {
            assert_eq!(counts[u as usize] as usize, pool.pair_count(center, NodeId(u)));
        }
        // The center is connected to itself in every sample.
        assert_eq!(counts[3] as usize, 50);
    }

    #[test]
    fn pair_estimate_converges_on_certain_graph() {
        let g = chain(4, 1.0);
        let mut pool = ComponentPool::new(&g, 8, 1);
        pool.ensure(10);
        assert_eq!(pool.pair_estimate(NodeId(0), NodeId(3)), 1.0);
    }

    #[test]
    fn empty_pool_estimates_zero() {
        let g = chain(3, 0.5);
        let pool = ComponentPool::new(&g, 1, 1);
        assert_eq!(pool.pair_estimate(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn world_pool_grows_and_reproduces() {
        let g = chain(10, 0.5);
        let mut a = WorldPool::new(&g, 77, 1);
        a.ensure(12);
        let mut b = WorldPool::new(&g, 77, 3);
        b.ensure(4);
        b.ensure(12);
        for i in 0..12 {
            assert_eq!(a.world(i), b.world(i), "world {i} differs");
        }
    }

    #[test]
    fn depth_counts_respect_depth() {
        // Certain chain 0-1-2-3: within depth 1 of node 0 only {0,1}.
        let g = chain(4, 1.0);
        let mut pool = WorldPool::new(&g, 1, 1);
        pool.ensure(5);
        let mut sel = vec![0u32; 4];
        let mut cov = vec![0u32; 4];
        let mut bfs = DepthBfs::new(4);
        pool.counts_within_depths(NodeId(0), 1, 2, &mut sel, &mut cov, &mut bfs);
        assert_eq!(sel, vec![5, 5, 0, 0]);
        assert_eq!(cov, vec![5, 5, 5, 0]);
    }

    #[test]
    fn depth_pair_estimates() {
        let g = chain(3, 1.0);
        let mut pool = WorldPool::new(&g, 4, 1);
        pool.ensure(8);
        let mut bfs = DepthBfs::new(3);
        assert_eq!(pool.pair_estimate_within(NodeId(0), NodeId(2), 1, &mut bfs), 0.0);
        assert_eq!(pool.pair_estimate_within(NodeId(0), NodeId(2), 2, &mut bfs), 1.0);
    }

    #[test]
    fn world_and_component_pools_agree_at_full_depth() {
        let g = chain(6, 0.5);
        let mut cpool = ComponentPool::new(&g, 31, 1);
        let mut wpool = WorldPool::new(&g, 31, 1);
        cpool.ensure(200);
        wpool.ensure(200);
        let mut bfs = DepthBfs::new(6);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                let a = cpool.pair_estimate(NodeId(u), NodeId(v));
                let b = wpool.pair_estimate_within(NodeId(u), NodeId(v), 5, &mut bfs);
                assert!((a - b).abs() < 1e-12, "({u},{v}): {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "d_select")]
    fn depth_order_enforced() {
        let g = chain(3, 1.0);
        let mut pool = WorldPool::new(&g, 1, 1);
        pool.ensure(1);
        let mut sel = vec![0u32; 3];
        let mut cov = vec![0u32; 3];
        let mut bfs = DepthBfs::new(3);
        pool.counts_within_depths(NodeId(0), 2, 1, &mut sel, &mut cov, &mut bfs);
    }
}
