//! Progressive sample pools.
//!
//! The clustering algorithms lower their probability threshold `q`
//! geometrically and re-estimate probabilities at each step (paper §4); the
//! required sample count grows as `q` shrinks. Pools therefore **grow
//! monotonically**: `ensure(r)` tops the pool up to `r` samples, reusing
//! everything drawn before — the progressive sampling strategy of the
//! paper. Because sample `i` is generated from a per-index RNG (see
//! [`crate::rng`]), the pool contents are independent of the growth
//! schedule and of the number of worker threads.
//!
//! ## Parallelism
//!
//! Both world generation (`ensure`) and the Monte-Carlo aggregation queries
//! (`counts_from_center`, `counts_within_depths`, `pair_count*`) run on
//! rayon. Generation maps each sample index through its own RNG stream
//! (`map_init` reuses per-worker union-find / bitset scratch); queries
//! partition the sample rows into chunks, accumulate per-chunk count
//! vectors, and merge them. Counts are integers, so the merged result — and
//! therefore every estimate — is bit-identical no matter how many threads
//! run, which the property tests assert.

use rayon::prelude::*;

use ugraph_graph::{Bitset, DepthBfs, NodeId, UncertainGraph, UnionFind, WorldView};

use crate::world::WorldSampler;

/// Below this many items a parallel pass costs more than it saves.
const MIN_PARALLEL_ITEMS: usize = 32;

/// Minimum estimated work units (`items × per-item cost`) before a query
/// takes the parallel path — below this, parallel dispatch (worker wake-up
/// under real rayon, scoped-thread spawn under the vendored subset) costs
/// more than the accumulation it distributes.
const MIN_PARALLEL_WORK: usize = 1 << 16;

/// The pool's rayon configuration, resolved **once** at pool construction —
/// re-resolving the worker count (a syscall) or rebuilding a pinned pool on
/// every query would burden the clustering inner loop.
///
/// `threads == 0` (the default) runs on the ambient/global rayon pool; any
/// other value pins a dedicated worker pool (persistent workers under real
/// rayon, a cheap scoped-thread handle under the vendored subset).
#[derive(Clone, Debug)]
struct ThreadConfig {
    /// Resolved worker count (never 0).
    workers: usize,
    /// The dedicated pool, shared across pool clones; `None` = ambient.
    pool: Option<std::sync::Arc<rayon::ThreadPool>>,
}

impl ThreadConfig {
    fn new(threads: usize) -> Self {
        let workers = if threads == 0 {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        } else {
            threads
        };
        let pool = (threads != 0).then(|| {
            std::sync::Arc::new(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("failed to build sampling thread pool"),
            )
        });
        ThreadConfig { workers, pool }
    }

    /// Runs `op` with this configuration's worker count governing rayon.
    fn run<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        match &self.pool {
            Some(pool) => pool.install(op),
            None => op(),
        }
    }

    /// Whether parallel generation of `count` new samples is worthwhile.
    /// Sampling a world is always expensive (one Bernoulli draw per edge),
    /// so any non-trivial batch parallelizes.
    fn parallel_generation(&self, count: usize) -> bool {
        count >= 4 && self.workers > 1
    }

    /// Whether a query over `items` sample rows, costing roughly
    /// `per_item_work` units each, should take the parallel path.
    fn parallel_query(&self, items: usize, per_item_work: usize) -> bool {
        self.workers > 1
            && items >= MIN_PARALLEL_ITEMS
            && items.saturating_mul(per_item_work.max(1)) >= MIN_PARALLEL_WORK
    }

    /// Chunk size that spreads `items` evenly over the workers.
    fn chunk_size(&self, items: usize) -> usize {
        items.div_ceil(self.workers).max(1)
    }
}

/// Element-wise `a[i] += b[i]`, the merge step of chunked count queries.
fn merge_counts(mut a: Vec<u32>, b: Vec<u32>) -> Vec<u32> {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
    a
}

/// One sampled world reduced to its connected-component partition.
///
/// Stores the canonical label per node plus a *membership index* (nodes
/// sorted by label with bucket offsets), so all members of a given
/// component can be enumerated in time proportional to the component size.
#[derive(Clone, Debug)]
struct SampleRow {
    /// Canonical component label per node.
    labels: Vec<u32>,
    /// Node indices grouped by label.
    order: Vec<u32>,
    /// `starts[c]..starts[c+1]` delimits component `c` in `order`.
    starts: Vec<u32>,
}

impl SampleRow {
    fn from_labels(labels: Vec<u32>, num_components: usize) -> Self {
        let n = labels.len();
        let mut starts = vec![0u32; num_components + 1];
        for &l in &labels {
            starts[l as usize + 1] += 1;
        }
        for c in 0..num_components {
            starts[c + 1] += starts[c];
        }
        let mut cursor = starts.clone();
        let mut order = vec![0u32; n];
        for (node, &l) in labels.iter().enumerate() {
            let slot = cursor[l as usize] as usize;
            order[slot] = node as u32;
            cursor[l as usize] += 1;
        }
        SampleRow { labels, order, starts }
    }

    #[inline]
    fn members(&self, label: u32) -> &[u32] {
        let lo = self.starts[label as usize] as usize;
        let hi = self.starts[label as usize + 1] as usize;
        &self.order[lo..hi]
    }
}

/// Pool of per-sample connected-component partitions, for **unlimited**
/// connection probabilities.
#[derive(Clone, Debug)]
pub struct ComponentPool<'g> {
    sampler: WorldSampler<'g>,
    rows: Vec<SampleRow>,
    config: ThreadConfig,
}

impl<'g> ComponentPool<'g> {
    /// Creates an empty pool over `graph` with master `seed`. `threads = 0`
    /// uses all available cores.
    pub fn new(graph: &'g UncertainGraph, seed: u64, threads: usize) -> Self {
        ComponentPool {
            sampler: WorldSampler::new(graph, seed),
            rows: Vec::new(),
            config: ThreadConfig::new(threads),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g UncertainGraph {
        self.sampler.graph()
    }

    /// Number of samples currently in the pool.
    pub fn num_samples(&self) -> usize {
        self.rows.len()
    }

    /// Grows the pool to at least `r` samples (no-op if already there).
    ///
    /// Samples are drawn in parallel; sample `i` always comes from RNG
    /// stream `i`, so the result is independent of the thread count.
    pub fn ensure(&mut self, r: usize) {
        let cur = self.rows.len();
        if r <= cur {
            return;
        }
        let n = self.graph().num_nodes();
        let sampler = self.sampler;
        if !self.config.parallel_generation(r - cur) {
            let mut uf = UnionFind::new(n);
            let mut labels = vec![0u32; n];
            for i in cur as u64..r as u64 {
                let comps = sampler.sample_components(i, &mut uf, &mut labels);
                self.rows.push(SampleRow::from_labels(
                    std::mem::replace(&mut labels, vec![0u32; n]),
                    comps,
                ));
            }
            return;
        }
        let new_rows: Vec<SampleRow> = self.config.run(|| {
            (cur as u64..r as u64)
                .into_par_iter()
                .map_init(
                    || (UnionFind::new(n), vec![0u32; n]),
                    |(uf, labels), i| {
                        let comps = sampler.sample_components(i, uf, labels);
                        SampleRow::from_labels(std::mem::replace(labels, vec![0u32; n]), comps)
                    },
                )
                .collect()
        });
        self.rows.extend(new_rows);
    }

    /// Component labels of sample `i` (one per node).
    pub fn labels(&self, i: usize) -> &[u32] {
        &self.rows[i].labels
    }

    /// Members of the component with `label` in sample `i`.
    pub fn component_members(&self, i: usize, label: u32) -> &[u32] {
        self.rows[i].members(label)
    }

    /// Number of components in sample `i`.
    pub fn component_count(&self, i: usize) -> usize {
        self.rows[i].starts.len() - 1
    }

    /// For every node `u`, the number of samples in which `u` lies in the
    /// same component as `center`. `p̃(u, center) = out[u] / num_samples()`.
    ///
    /// Runs in `Σ_i |comp_i(center)|` — only the center's component members
    /// are touched per sample, which on sparse sampled worlds is far below
    /// `n·r`. Sample rows are processed in parallel chunks; integer count
    /// merging keeps the result independent of the chunking.
    ///
    /// # Panics
    /// Panics if `out.len() != n`.
    pub fn counts_from_center(&self, center: NodeId, out: &mut [u32]) {
        let n = self.graph().num_nodes();
        assert_eq!(out.len(), n, "counts buffer has wrong length");
        let accumulate = |counts: &mut [u32], rows: &[SampleRow]| {
            for row in rows {
                let label = row.labels[center.index()];
                for &u in row.members(label) {
                    counts[u as usize] += 1;
                }
            }
        };
        if !self.config.parallel_query(self.rows.len(), n) {
            out.fill(0);
            accumulate(out, &self.rows);
            return;
        }
        let merged = self.config.run(|| {
            self.rows
                .par_chunks(self.config.chunk_size(self.rows.len()))
                .map(|rows| {
                    let mut counts = vec![0u32; n];
                    accumulate(&mut counts, rows);
                    counts
                })
                .reduce(|| vec![0u32; n], merge_counts)
        });
        out.copy_from_slice(&merged);
    }

    /// Number of samples where `u` and `v` are connected.
    pub fn pair_count(&self, u: NodeId, v: NodeId) -> usize {
        let connected = |row: &SampleRow| row.labels[u.index()] == row.labels[v.index()];
        if !self.config.parallel_query(self.rows.len(), 1) {
            return self.rows.iter().filter(|row| connected(row)).count();
        }
        self.config.run(|| {
            self.rows
                .par_chunks(self.config.chunk_size(self.rows.len()))
                .map(|rows| rows.iter().filter(|row| connected(row)).count())
                .sum()
        })
    }

    /// The estimator `p̃(u, v)` of Eq. 3. Returns 0 for an empty pool.
    pub fn pair_estimate(&self, u: NodeId, v: NodeId) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.pair_count(u, v) as f64 / self.rows.len() as f64
    }
}

/// Pool of per-sample edge bitsets, for **depth-limited** d-connection
/// probabilities (paper §3.4).
#[derive(Clone, Debug)]
pub struct WorldPool<'g> {
    sampler: WorldSampler<'g>,
    worlds: Vec<Bitset>,
    config: ThreadConfig,
}

impl<'g> WorldPool<'g> {
    /// Creates an empty world pool over `graph` with master `seed`.
    /// `threads = 0` uses all available cores.
    pub fn new(graph: &'g UncertainGraph, seed: u64, threads: usize) -> Self {
        WorldPool {
            sampler: WorldSampler::new(graph, seed),
            worlds: Vec::new(),
            config: ThreadConfig::new(threads),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g UncertainGraph {
        self.sampler.graph()
    }

    /// Number of sampled worlds.
    pub fn num_samples(&self) -> usize {
        self.worlds.len()
    }

    /// Grows the pool to at least `r` worlds, sampling in parallel (world
    /// `i` always comes from RNG stream `i`).
    pub fn ensure(&mut self, r: usize) {
        let cur = self.worlds.len();
        if r <= cur {
            return;
        }
        let m = self.graph().num_edges();
        let sampler = self.sampler;
        if !self.config.parallel_generation(r - cur) {
            for i in cur as u64..r as u64 {
                let mut world = Bitset::with_len(m);
                sampler.sample_into(i, &mut world);
                self.worlds.push(world);
            }
            return;
        }
        let new_worlds: Vec<Bitset> = self.config.run(|| {
            (cur as u64..r as u64)
                .into_par_iter()
                .map(|i| {
                    let mut world = Bitset::with_len(m);
                    sampler.sample_into(i, &mut world);
                    world
                })
                .collect()
        });
        self.worlds.extend(new_worlds);
    }

    /// The edge bitset of world `i`.
    pub fn world(&self, i: usize) -> &Bitset {
        &self.worlds[i]
    }

    /// Depth-limited connection counts from `center`.
    ///
    /// For every node `u`, after the call:
    /// * `out_select[u]` = #worlds with `dist(center, u) ≤ d_select`,
    /// * `out_cover[u]`  = #worlds with `dist(center, u) ≤ d_cover`.
    ///
    /// Requires `d_select ≤ d_cover` (one bounded BFS per world covers
    /// both). `bfs` is a reusable workspace sized for the graph; parallel
    /// chunks build their own BFS workspaces internally.
    ///
    /// # Panics
    /// Panics on buffer-size mismatch or `d_select > d_cover`.
    pub fn counts_within_depths(
        &self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
        bfs: &mut DepthBfs,
    ) {
        let n = self.graph().num_nodes();
        assert_eq!(out_select.len(), n, "select buffer has wrong length");
        assert_eq!(out_cover.len(), n, "cover buffer has wrong length");
        assert!(d_select <= d_cover, "d_select ({d_select}) must be ≤ d_cover ({d_cover})");
        let accumulate =
            |select: &mut [u32], cover: &mut [u32], bfs: &mut DepthBfs, worlds: &[Bitset]| {
                for world in worlds {
                    let view = WorldView::new(self.graph(), world);
                    bfs.run(&view, center, d_cover, |node, depth| {
                        cover[node.index()] += 1;
                        if depth <= d_select {
                            select[node.index()] += 1;
                        }
                    });
                }
            };
        if !self.config.parallel_query(self.worlds.len(), n) {
            out_select.fill(0);
            out_cover.fill(0);
            accumulate(out_select, out_cover, bfs, &self.worlds);
            return;
        }
        let (select, cover) = self.config.run(|| {
            self.worlds
                .par_chunks(self.config.chunk_size(self.worlds.len()))
                .map_init(
                    || DepthBfs::new(n),
                    |bfs, worlds| {
                        let mut select = vec![0u32; n];
                        let mut cover = vec![0u32; n];
                        accumulate(&mut select, &mut cover, bfs, worlds);
                        (select, cover)
                    },
                )
                .reduce(
                    || (vec![0u32; n], vec![0u32; n]),
                    |(s1, c1), (s2, c2)| (merge_counts(s1, s2), merge_counts(c1, c2)),
                )
        });
        out_select.copy_from_slice(&select);
        out_cover.copy_from_slice(&cover);
    }

    /// Number of worlds where `dist(u, v) ≤ depth`.
    pub fn pair_count_within(&self, u: NodeId, v: NodeId, depth: u32, bfs: &mut DepthBfs) -> usize {
        let n = self.graph().num_nodes();
        let world_hits = |bfs: &mut DepthBfs, world: &Bitset| {
            let view = WorldView::new(self.graph(), world);
            let mut hit = false;
            bfs.run(&view, u, depth, |node, _| hit |= node == v);
            hit
        };
        if !self.config.parallel_query(self.worlds.len(), n) {
            return self.worlds.iter().filter(|world| world_hits(bfs, world)).count();
        }
        self.config.run(|| {
            self.worlds
                .par_chunks(self.config.chunk_size(self.worlds.len()))
                .map_init(
                    || DepthBfs::new(n),
                    |bfs, worlds| worlds.iter().filter(|world| world_hits(bfs, world)).count(),
                )
                .sum()
        })
    }

    /// Estimator of the d-connection probability `Pr(u ~d~ v)`.
    pub fn pair_estimate_within(
        &self,
        u: NodeId,
        v: NodeId,
        depth: u32,
        bfs: &mut DepthBfs,
    ) -> f64 {
        if self.worlds.is_empty() {
            return 0.0;
        }
        self.pair_count_within(u, v, depth, bfs) as f64 / self.worlds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn chain(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn ensure_grows_monotonically() {
        let g = chain(10, 0.5);
        let mut pool = ComponentPool::new(&g, 1, 1);
        assert_eq!(pool.num_samples(), 0);
        pool.ensure(10);
        assert_eq!(pool.num_samples(), 10);
        pool.ensure(5); // no shrink
        assert_eq!(pool.num_samples(), 10);
        pool.ensure(25);
        assert_eq!(pool.num_samples(), 25);
    }

    #[test]
    fn growth_schedule_does_not_change_samples() {
        let g = chain(12, 0.4);
        let mut a = ComponentPool::new(&g, 3, 1);
        a.ensure(20);
        let mut b = ComponentPool::new(&g, 3, 1);
        b.ensure(7);
        b.ensure(13);
        b.ensure(20);
        for i in 0..20 {
            assert_eq!(a.labels(i), b.labels(i), "sample {i} differs");
        }
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let g = chain(20, 0.5);
        let mut serial = ComponentPool::new(&g, 5, 1);
        serial.ensure(33);
        let mut parallel = ComponentPool::new(&g, 5, 4);
        parallel.ensure(33);
        for i in 0..33 {
            assert_eq!(serial.labels(i), parallel.labels(i), "sample {i} differs");
        }
    }

    #[test]
    fn membership_index_consistent_with_labels() {
        let g = chain(15, 0.5);
        let mut pool = ComponentPool::new(&g, 9, 1);
        pool.ensure(20);
        for i in 0..20 {
            let labels = pool.labels(i);
            for c in 0..pool.component_count(i) as u32 {
                let members = pool.component_members(i, c);
                assert!(!members.is_empty());
                for &u in members {
                    assert_eq!(labels[u as usize], c);
                }
            }
            let total: usize = (0..pool.component_count(i) as u32)
                .map(|c| pool.component_members(i, c).len())
                .sum();
            assert_eq!(total, g.num_nodes());
        }
    }

    #[test]
    fn counts_from_center_match_pair_counts() {
        let g = chain(8, 0.6);
        let mut pool = ComponentPool::new(&g, 2, 1);
        pool.ensure(50);
        let center = NodeId(3);
        let mut counts = vec![0u32; 8];
        pool.counts_from_center(center, &mut counts);
        for u in 0..8u32 {
            assert_eq!(counts[u as usize] as usize, pool.pair_count(center, NodeId(u)));
        }
        // The center is connected to itself in every sample.
        assert_eq!(counts[3] as usize, 50);
    }

    #[test]
    fn parallel_counts_match_serial_counts() {
        // 64 nodes × 1100 rows clears the MIN_PARALLEL_WORK gate, so the
        // 4-worker pool genuinely takes the chunked parallel path.
        let g = chain(64, 0.55);
        let mut serial = ComponentPool::new(&g, 13, 1);
        let mut parallel = ComponentPool::new(&g, 13, 4);
        serial.ensure(1100);
        parallel.ensure(1100);
        let mut counts_serial = vec![0u32; 64];
        let mut counts_parallel = vec![0u32; 64];
        for center in [0u32, 21, 42, 63] {
            serial.counts_from_center(NodeId(center), &mut counts_serial);
            parallel.counts_from_center(NodeId(center), &mut counts_parallel);
            assert_eq!(counts_serial, counts_parallel, "center {center}");
        }
    }

    #[test]
    fn parallel_pair_counts_match_serial() {
        // pair_count is O(1) per row, so its parallel path needs a pool
        // larger than MIN_PARALLEL_WORK rows.
        let g = chain(8, 0.5);
        let mut serial = ComponentPool::new(&g, 17, 1);
        let mut parallel = ComponentPool::new(&g, 17, 4);
        serial.ensure(70_000);
        parallel.ensure(70_000);
        for v in 1..8u32 {
            assert_eq!(
                serial.pair_count(NodeId(0), NodeId(v)),
                parallel.pair_count(NodeId(0), NodeId(v)),
                "pair (0, {v})"
            );
        }
    }

    #[test]
    fn pair_estimate_converges_on_certain_graph() {
        let g = chain(4, 1.0);
        let mut pool = ComponentPool::new(&g, 8, 1);
        pool.ensure(10);
        assert_eq!(pool.pair_estimate(NodeId(0), NodeId(3)), 1.0);
    }

    #[test]
    fn empty_pool_estimates_zero() {
        let g = chain(3, 0.5);
        let pool = ComponentPool::new(&g, 1, 1);
        assert_eq!(pool.pair_estimate(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn world_pool_grows_and_reproduces() {
        let g = chain(10, 0.5);
        let mut a = WorldPool::new(&g, 77, 1);
        a.ensure(12);
        let mut b = WorldPool::new(&g, 77, 3);
        b.ensure(4);
        b.ensure(12);
        for i in 0..12 {
            assert_eq!(a.world(i), b.world(i), "world {i} differs");
        }
    }

    #[test]
    fn depth_counts_respect_depth() {
        // Certain chain 0-1-2-3: within depth 1 of node 0 only {0,1}.
        let g = chain(4, 1.0);
        let mut pool = WorldPool::new(&g, 1, 1);
        pool.ensure(5);
        let mut sel = vec![0u32; 4];
        let mut cov = vec![0u32; 4];
        let mut bfs = DepthBfs::new(4);
        pool.counts_within_depths(NodeId(0), 1, 2, &mut sel, &mut cov, &mut bfs);
        assert_eq!(sel, vec![5, 5, 0, 0]);
        assert_eq!(cov, vec![5, 5, 5, 0]);
    }

    #[test]
    fn parallel_depth_counts_match_serial() {
        // 64 nodes × 1100 worlds clears the MIN_PARALLEL_WORK gate for the
        // depth-limited queries (per-item work ≈ n).
        let g = chain(64, 0.6);
        let mut serial = WorldPool::new(&g, 21, 1);
        let mut parallel = WorldPool::new(&g, 21, 4);
        serial.ensure(1100);
        parallel.ensure(1100);
        let mut bfs = DepthBfs::new(64);
        let (mut s1, mut c1) = (vec![0u32; 64], vec![0u32; 64]);
        let (mut s2, mut c2) = (vec![0u32; 64], vec![0u32; 64]);
        for center in [0u32, 21, 42, 63] {
            serial.counts_within_depths(NodeId(center), 2, 4, &mut s1, &mut c1, &mut bfs);
            parallel.counts_within_depths(NodeId(center), 2, 4, &mut s2, &mut c2, &mut bfs);
            assert_eq!(s1, s2, "select counts differ at center {center}");
            assert_eq!(c1, c2, "cover counts differ at center {center}");
        }
        for v in [1u32, 31, 63] {
            assert_eq!(
                serial.pair_count_within(NodeId(0), NodeId(v), 3, &mut bfs),
                parallel.pair_count_within(NodeId(0), NodeId(v), 3, &mut bfs),
                "pair counts differ for (0, {v})"
            );
        }
    }

    #[test]
    fn depth_pair_estimates() {
        let g = chain(3, 1.0);
        let mut pool = WorldPool::new(&g, 4, 1);
        pool.ensure(8);
        let mut bfs = DepthBfs::new(3);
        assert_eq!(pool.pair_estimate_within(NodeId(0), NodeId(2), 1, &mut bfs), 0.0);
        assert_eq!(pool.pair_estimate_within(NodeId(0), NodeId(2), 2, &mut bfs), 1.0);
    }

    #[test]
    fn world_and_component_pools_agree_at_full_depth() {
        let g = chain(6, 0.5);
        let mut cpool = ComponentPool::new(&g, 31, 1);
        let mut wpool = WorldPool::new(&g, 31, 1);
        cpool.ensure(200);
        wpool.ensure(200);
        let mut bfs = DepthBfs::new(6);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                let a = cpool.pair_estimate(NodeId(u), NodeId(v));
                let b = wpool.pair_estimate_within(NodeId(u), NodeId(v), 5, &mut bfs);
                assert!((a - b).abs() < 1e-12, "({u},{v}): {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "d_select")]
    fn depth_order_enforced() {
        let g = chain(3, 1.0);
        let mut pool = WorldPool::new(&g, 1, 1);
        pool.ensure(1);
        let mut sel = vec![0u32; 3];
        let mut cov = vec![0u32; 3];
        let mut bfs = DepthBfs::new(3);
        pool.counts_within_depths(NodeId(0), 2, 1, &mut sel, &mut cov, &mut bfs);
    }
}
