//! Shared parallelism heuristics for the sample-pool backends.
//!
//! Both the scalar pools ([`crate::ComponentPool`], [`crate::WorldPool`])
//! and the bit-parallel block pool ([`crate::BitParallelPool`]) face the
//! same dispatch decision on every operation: is the batch big enough that
//! a rayon fork-join pays for itself? The thresholds and the resolved
//! thread configuration live here so the backends cannot drift apart.

use rayon::prelude::*;

/// Below this many items a parallel pass costs more than it saves.
///
/// Rationale: waking a rayon worker (or spawning a scoped thread under the
/// vendored subset) costs on the order of microseconds, while a single
/// sample-row accumulation is tens of nanoseconds; with fewer than ~32
/// rows per worker the dispatch overhead dominates even when the per-item
/// work estimate is pessimistic.
pub const MIN_PARALLEL_ITEMS: usize = 32;

/// Minimum estimated work units (`items × per-item cost`) before a query
/// takes the parallel path.
///
/// `per-item cost` is measured in elementary operations (e.g. `n` for a
/// query touching every node of every sample row, 1 for an O(1) per-row
/// predicate). Below `2¹⁶` total units, parallel dispatch (worker wake-up
/// under real rayon, scoped-thread spawn under the vendored subset) costs
/// more than the accumulation it distributes — a 64 Ki-operation
/// accumulation finishes in tens of microseconds on one core.
pub const MIN_PARALLEL_WORK: usize = 1 << 16;

/// Mask-path pair queries a 64-world block absorbs before the adaptive
/// backend finalizes its component labels anyway.
///
/// Rationale: finalizing a block costs roughly one connectivity-fixpoint
/// sweep over every component (≈ 2–3 single-source mask traversals) plus an
/// `O(64·n)` bucket sort, while a *single* pair query costs one traversal —
/// so a cold pair query should never pay full-block labeling. From the
/// third pair query on, labeling would already have been cheaper in
/// hindsight (finalized pair lookups are O(lanes) label compares), so the
/// heuristic converts the block at that point.
pub const FINALIZE_AFTER_MASK_QUERIES: u32 = 2;

/// Decides whether an unlimited-depth query against a not-yet-finalized
/// block of the adaptive backend should finalize its component labels
/// first (see [`FINALIZE_AFTER_MASK_QUERIES`]).
///
/// Full-row queries (`counts_from_center*` and the batched/ranged forms)
/// finalize **eagerly**: they traverse the whole block anyway, labeling
/// costs little more than the query itself, and the clustering drivers
/// re-query every pool many times — so the first row query converts the
/// block and every later unlimited query runs at scalar-label speed.
/// Pair queries stay on masks while the block has absorbed fewer than
/// [`FINALIZE_AFTER_MASK_QUERIES`] of them; the next one converts it.
#[inline]
pub fn finalize_on_unlimited_query(full_row: bool, prior_mask_queries: u32) -> bool {
    full_row || prior_mask_queries >= FINALIZE_AFTER_MASK_QUERIES
}

/// Cost model deciding whether a **batched** multi-center unlimited query
/// over a finalized block should scan component labels or run the mask
/// component-sharing sweep.
///
/// Label scans cost one increment per (center, lane, member) —
/// `label_ops`, computable exactly from the finalized bucket sizes with
/// `k · lanes` lookups — independent of the block width. The sharing
/// sweep costs roughly one fixpoint traversal (`n + 2m` mask ops) plus
/// one AND+popcount inherit pass per center (`k · n`), each op touching
/// `words` `u64`s (the block width `W`) but answering `words · 64` worlds
/// at once. On supercritical instances (giant components,
/// `label_ops ≈ lanes · k · n`) sharing wins decisively; on shattered
/// subcritical blocks (`label_ops ≪ k · n`) the label scans win. Single
/// rows and pair queries always prefer labels — with `k = 1` there is
/// nothing for the traversal to amortize across. This gate only picks a
/// strategy; both sides produce identical counts.
#[inline]
pub fn labels_beat_shared_masks(
    label_ops: usize,
    n: usize,
    m: usize,
    k: usize,
    words: usize,
) -> bool {
    label_ops < (n + 2 * m + k * n) * words
}

/// A backend's rayon configuration, resolved **once** at pool
/// construction — re-resolving the worker count (a syscall) or rebuilding
/// a pinned pool on every query would burden the clustering inner loop.
///
/// `threads == 0` (the default) runs on the ambient/global rayon pool; any
/// other value pins a dedicated worker pool (persistent workers under real
/// rayon, a cheap scoped-thread handle under the vendored subset).
#[derive(Clone, Debug)]
pub struct ThreadConfig {
    /// Resolved worker count (never 0).
    workers: usize,
    /// The dedicated pool, shared across pool clones; `None` = ambient.
    pool: Option<std::sync::Arc<rayon::ThreadPool>>,
}

impl ThreadConfig {
    /// Resolves the configuration for a requested thread count
    /// (`0` = all available cores on the ambient pool).
    pub fn new(threads: usize) -> Self {
        let workers = if threads == 0 {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        } else {
            threads
        };
        // Spawning worker threads can genuinely fail (resource
        // exhaustion); there is no useful degraded mode here, so the
        // panic policy is deliberate.
        #[allow(clippy::expect_used)]
        let pool = (threads != 0).then(|| {
            std::sync::Arc::new(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("failed to build sampling thread pool"),
            )
        });
        ThreadConfig { workers, pool }
    }

    /// Runs `op` with this configuration's worker count governing rayon.
    pub fn run<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        match &self.pool {
            Some(pool) => pool.install(op),
            None => op(),
        }
    }

    /// Whether parallel generation of `count` new samples is worthwhile.
    /// Sampling a world is always expensive (one Bernoulli draw per edge),
    /// so any non-trivial batch parallelizes.
    pub fn parallel_generation(&self, count: usize) -> bool {
        count >= 4 && self.workers > 1
    }

    /// Whether a query over `items` units (sample rows for the scalar
    /// backends, 64-world blocks for the bit-parallel backend), costing
    /// roughly `per_item_work` operations each, should take the parallel
    /// path. Applies [`MIN_PARALLEL_ITEMS`] and [`MIN_PARALLEL_WORK`].
    pub fn parallel_query(&self, items: usize, per_item_work: usize) -> bool {
        self.workers > 1
            && items >= MIN_PARALLEL_ITEMS
            && items.saturating_mul(per_item_work.max(1)) >= MIN_PARALLEL_WORK
    }

    /// Chunk size that spreads `items` evenly over the workers.
    pub fn chunk_size(&self, items: usize) -> usize {
        items.div_ceil(self.workers).max(1)
    }
}

/// Element-wise `a[i] += b[i]`, the merge step of chunked count queries.
/// Counts are integers, so merged results are bit-identical no matter how
/// the items were chunked — the reproducibility contract of every backend.
pub fn merge_counts(mut a: Vec<u32>, b: Vec<u32>) -> Vec<u32> {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
    a
}

/// Parallel-or-serial chunked count accumulation: runs `accumulate` over
/// chunks of `items` and merges the per-chunk count vectors, falling back
/// to a single serial pass when the parallel path is not worthwhile.
pub fn chunked_counts<T: Sync>(
    config: &ThreadConfig,
    items: &[T],
    n: usize,
    per_item_work: usize,
    accumulate: impl Fn(&mut [u32], &mut (), &[T]) + Send + Sync,
    out: &mut [u32],
) {
    chunked_counts_with(config, items, n, per_item_work, &mut (), || (), accumulate, out);
}

/// [`chunked_counts`] with a traversal workspace: the serial path reuses
/// the caller's persistent `serial_ws`; parallel workers build their own
/// through `make_ws` (rayon `map_init`).
#[allow(clippy::too_many_arguments)]
pub fn chunked_counts_with<T: Sync, W: Send>(
    config: &ThreadConfig,
    items: &[T],
    n: usize,
    per_item_work: usize,
    serial_ws: &mut W,
    make_ws: impl Fn() -> W + Send + Sync,
    accumulate: impl Fn(&mut [u32], &mut W, &[T]) + Send + Sync,
    out: &mut [u32],
) {
    if !config.parallel_query(items.len(), per_item_work) {
        out.fill(0);
        accumulate(out, serial_ws, items);
        return;
    }
    let merged = config.run(|| {
        items
            .par_chunks(config.chunk_size(items.len()))
            .map_init(&make_ws, |ws, chunk| {
                let mut counts = vec![0u32; n];
                accumulate(&mut counts, ws, chunk);
                counts
            })
            .reduce(|| vec![0u32; n], merge_counts)
    });
    out.copy_from_slice(&merged);
}

/// Two-output variant of [`chunked_counts_with`] for queries that
/// accumulate a select row and a cover row in one pass.
#[allow(clippy::too_many_arguments)]
pub fn chunked_counts2_with<T: Sync, W: Send>(
    config: &ThreadConfig,
    items: &[T],
    n: usize,
    per_item_work: usize,
    serial_ws: &mut W,
    make_ws: impl Fn() -> W + Send + Sync,
    accumulate: impl Fn(&mut [u32], &mut [u32], &mut W, &[T]) + Send + Sync,
    out_a: &mut [u32],
    out_b: &mut [u32],
) {
    if !config.parallel_query(items.len(), per_item_work) {
        out_a.fill(0);
        out_b.fill(0);
        accumulate(out_a, out_b, serial_ws, items);
        return;
    }
    let (a, b) = config.run(|| {
        items
            .par_chunks(config.chunk_size(items.len()))
            .map_init(&make_ws, |ws, chunk| {
                let mut a = vec![0u32; n];
                let mut b = vec![0u32; n];
                accumulate(&mut a, &mut b, ws, chunk);
                (a, b)
            })
            .reduce(
                || (vec![0u32; n], vec![0u32; n]),
                |(a1, b1), (a2, b2)| (merge_counts(a1, a2), merge_counts(b1, b2)),
            )
    });
    out_a.copy_from_slice(&a);
    out_b.copy_from_slice(&b);
}

/// Parallel-or-serial chunked summation of a per-item statistic (the
/// scaffolding of every `pair_count*` query), under the same dispatch
/// gate and workspace policy as [`chunked_counts_with`].
pub fn chunked_sum_with<T: Sync, W: Send>(
    config: &ThreadConfig,
    items: &[T],
    per_item_work: usize,
    serial_ws: &mut W,
    make_ws: impl Fn() -> W + Send + Sync,
    per_item: impl Fn(&mut W, &T) -> usize + Send + Sync,
) -> usize {
    if !config.parallel_query(items.len(), per_item_work) {
        return items.iter().map(|item| per_item(serial_ws, item)).sum();
    }
    config.run(|| {
        items
            .par_chunks(config.chunk_size(items.len()))
            .map_init(&make_ws, |ws, chunk| {
                chunk.iter().map(|item| per_item(ws, item)).sum::<usize>()
            })
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_config_resolves_workers() {
        let c = ThreadConfig::new(3);
        assert_eq!(c.workers, 3);
        assert!(c.pool.is_some());
        let ambient = ThreadConfig::new(0);
        assert!(ambient.workers >= 1);
        assert!(ambient.pool.is_none());
    }

    #[test]
    fn parallel_query_gates() {
        let c = ThreadConfig::new(4);
        assert!(!c.parallel_query(MIN_PARALLEL_ITEMS - 1, usize::MAX));
        assert!(!c.parallel_query(MIN_PARALLEL_ITEMS, 1));
        assert!(c.parallel_query(MIN_PARALLEL_ITEMS, MIN_PARALLEL_WORK));
        let serial = ThreadConfig::new(1);
        assert!(!serial.parallel_query(1 << 20, 1 << 20));
    }

    #[test]
    fn merge_counts_adds_elementwise() {
        assert_eq!(merge_counts(vec![1, 2, 3], vec![10, 20, 30]), vec![11, 22, 33]);
    }

    #[test]
    fn chunked_counts_matches_serial() {
        let items: Vec<u32> = (0..5000).collect();
        let accumulate = |counts: &mut [u32], (): &mut (), chunk: &[u32]| {
            for &x in chunk {
                counts[(x % 16) as usize] += 1;
            }
        };
        let mut serial = vec![0u32; 16];
        let mut parallel = vec![0u32; 16];
        chunked_counts(&ThreadConfig::new(1), &items, 16, 100, accumulate, &mut serial);
        chunked_counts(&ThreadConfig::new(4), &items, 16, 100, accumulate, &mut parallel);
        assert_eq!(serial, parallel);
        assert_eq!(serial.iter().sum::<u32>(), 5000);
    }
}
