//! Typed errors of the sampling layer.

use std::fmt;

/// Failure modes of samplers, pools, and oracle construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplingError {
    /// A caller-provided buffer does not match the graph's dimensions
    /// (e.g. a world bitset whose length differs from the edge count).
    BufferMismatch {
        /// What the buffer holds (e.g. `"world bitset"`).
        what: &'static str,
        /// Required length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// A depth-limited oracle was configured with a selection depth above
    /// its cover depth (`min-partial-d` requires `d_select ≤ d_cover`).
    InvalidDepths {
        /// The selection depth `d'`.
        d_select: u32,
        /// The cover depth `d`.
        d_cover: u32,
    },
    /// A depth-limited oracle was given an engine that cannot answer
    /// finite-depth queries (e.g. the component-label backend, which
    /// precomputes connectivity and loses distances).
    DepthIncapableEngine,
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::BufferMismatch { what, expected, got } => {
                write!(f, "{what} has length {got}, the graph requires {expected}")
            }
            SamplingError::InvalidDepths { d_select, d_cover } => {
                write!(f, "d_select ({d_select}) must be ≤ d_cover ({d_cover})")
            }
            SamplingError::DepthIncapableEngine => {
                write!(
                    f,
                    "engine cannot answer finite-depth queries; use WorldPool or BitParallelPool"
                )
            }
        }
    }
}

impl std::error::Error for SamplingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SamplingError::BufferMismatch { what: "world bitset", expected: 5, got: 3 };
        let s = e.to_string();
        assert!(s.contains("world bitset") && s.contains('5') && s.contains('3'));

        let e = SamplingError::InvalidDepths { d_select: 4, d_cover: 2 };
        assert!(e.to_string().contains("d_select"));
    }
}
