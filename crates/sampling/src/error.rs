//! Typed errors of the sampling layer.

use std::fmt;

use crate::faults::FaultSite;
use crate::interrupt::Interrupt;

/// Which stage of the sampling machinery a run was interrupted in —
/// carried by [`SamplingError::Interrupted`] so callers can report how
/// far a cancelled or timed-out solve got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingPhase {
    /// Growing a pool (`ensure`) or regenerating an evicted shard.
    Generation,
    /// A Monte-Carlo aggregation sweep over sampled worlds.
    Sweep,
    /// Lazy per-block component-label finalization (adaptive engine).
    Labeling,
    /// Row-cache / budget admission.
    Admission,
}

impl fmt::Display for SamplingPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingPhase::Generation => write!(f, "generation"),
            SamplingPhase::Sweep => write!(f, "sweep"),
            SamplingPhase::Labeling => write!(f, "labeling"),
            SamplingPhase::Admission => write!(f, "admission"),
        }
    }
}

/// Failure modes of samplers, pools, and oracle construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplingError {
    /// A caller-provided buffer does not match the graph's dimensions
    /// (e.g. a world bitset whose length differs from the edge count).
    BufferMismatch {
        /// What the buffer holds (e.g. `"world bitset"`).
        what: &'static str,
        /// Required length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// A depth-limited oracle was configured with a selection depth above
    /// its cover depth (`min-partial-d` requires `d_select ≤ d_cover`).
    InvalidDepths {
        /// The selection depth `d'`.
        d_select: u32,
        /// The cover depth `d`.
        d_cover: u32,
    },
    /// A depth-limited oracle was given an engine that cannot answer
    /// finite-depth queries (e.g. the component-label backend, which
    /// precomputes connectivity and loses distances).
    DepthIncapableEngine,
    /// The run was interrupted cooperatively — its deadline passed or a
    /// [`crate::CancelToken`] fired (see [`crate::RunBudget`]). The
    /// session survives; re-issuing the request completes bit-identically
    /// to an uninterrupted run.
    Interrupted {
        /// What interrupted the run.
        kind: Interrupt,
        /// The stage the interruption was observed in.
        phase: SamplingPhase,
    },
    /// A deterministic failpoint of the fault-injection harness fired
    /// (see [`crate::faults`]). Only produced while a fault plan is
    /// installed; like [`SamplingError::Interrupted`], it never poisons
    /// session state.
    FaultInjected {
        /// The failpoint that fired.
        site: FaultSite,
        /// Which hit of that site fired (1-based).
        hit: u64,
    },
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::BufferMismatch { what, expected, got } => {
                write!(f, "{what} has length {got}, the graph requires {expected}")
            }
            SamplingError::InvalidDepths { d_select, d_cover } => {
                write!(f, "d_select ({d_select}) must be ≤ d_cover ({d_cover})")
            }
            SamplingError::DepthIncapableEngine => {
                write!(
                    f,
                    "engine cannot answer finite-depth queries; use WorldPool or BitParallelPool"
                )
            }
            SamplingError::Interrupted { kind, phase } => {
                write!(f, "run {kind} during {phase}")
            }
            SamplingError::FaultInjected { site, hit } => {
                write!(f, "injected fault at {site} (hit {hit})")
            }
        }
    }
}

impl std::error::Error for SamplingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SamplingError::BufferMismatch { what: "world bitset", expected: 5, got: 3 };
        let s = e.to_string();
        assert!(s.contains("world bitset") && s.contains('5') && s.contains('3'));

        let e = SamplingError::InvalidDepths { d_select: 4, d_cover: 2 };
        assert!(e.to_string().contains("d_select"));
    }
}
