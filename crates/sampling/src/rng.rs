//! Deterministic per-sample random number generation.
//!
//! Reproducibility contract: the world with index `i` under master seed `s`
//! is **always** the same, no matter how many threads generate the pool or
//! in which order samples are filled in. This is achieved by deriving an
//! independent RNG per sample index with a SplitMix64 mixer — the
//! recommended way to seed from correlated inputs (`seed`, `seed ^ i` would
//! be correlated across i).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: decorrelates consecutive inputs.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a master seed and a stream index into an independent sub-seed.
#[inline]
pub fn mix_seed(master: u64, stream: u64) -> u64 {
    // Two rounds: one to spread the master, one to fold in the stream.
    splitmix64(splitmix64(master).wrapping_add(stream))
}

/// The RNG used to draw possible world `index` under `master` seed.
#[inline]
pub fn sample_rng(master: u64, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(mix_seed(master, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn mixed_seeds_differ_across_streams() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn sample_rng_reproducible() {
        let mut r1 = sample_rng(7, 3);
        let mut r2 = sample_rng(7, 3);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn sample_rng_streams_decorrelated() {
        // Crude but effective: first draws across 1000 streams should have
        // no duplicates and roughly half the bits set on average.
        let draws: Vec<u64> = (0..1000).map(|i| sample_rng(99, i).gen()).collect();
        let mut unique = draws.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), draws.len());
        let mean_ones: f64 =
            draws.iter().map(|d| d.count_ones() as f64).sum::<f64>() / draws.len() as f64;
        assert!((mean_ones - 32.0).abs() < 2.0, "mean bit count {mean_ones}");
    }
}
