//! The connection-probability oracle interface consumed by the clustering
//! algorithms.
//!
//! The paper first presents its algorithms against an exact oracle for
//! `Pr(u ~ v)` (§3) and then replaces it with progressive Monte-Carlo
//! estimation (§4). The [`Oracle`] trait captures exactly the access
//! pattern of `min-partial` (Algorithms 1 and 4):
//!
//! * [`Oracle::prepare`]`(q)` — announce that probabilities `≥ q` are about
//!   to be thresholded, letting Monte-Carlo implementations grow their
//!   sample pool per their [`SampleSchedule`];
//! * [`Oracle::center_probs`]`(c, select, cover)` — estimates of the
//!   connection probability of every node to a candidate center `c`, at the
//!   *selection* radius (`q̄` / depth `d'`) and the *cover* radius (`q` /
//!   depth `d`). For depth-unlimited oracles the two are identical;
//! * [`Oracle::pair_prob`] — a single pairwise estimate (used by objective
//!   evaluation).
//!
//! The Monte-Carlo oracles are built on the [`WorldEngine`] seam: each one
//! owns a boxed engine, so the scalar and bit-parallel backends (selected
//! by [`EngineKind`]) are interchangeable behind an unchanged oracle
//! interface — and every backend yields bit-identical estimates for a
//! fixed master seed.

use ugraph_graph::{NodeId, UncertainGraph};

use crate::bounds::SampleSchedule;
use crate::engine::{EngineKind, WorldEngine, DEPTH_UNLIMITED};
use crate::error::SamplingError;
use crate::exact::ExactOracle;
use crate::pool::{BitParallelPool, ComponentPool, WorldPool};

/// Source of (estimated) connection probabilities.
pub trait Oracle {
    /// Number of nodes of the underlying graph.
    fn num_nodes(&self) -> usize;

    /// Relative-error parameter ε of the estimates (0 for exact oracles).
    ///
    /// Thresholds are relaxed to `(1 − ε/2)·q` by the algorithms, per §4.1.
    fn epsilon(&self) -> f64;

    /// Ensures that subsequent estimates are reliable for probabilities
    /// `≥ q`. Monte-Carlo implementations grow their sample pools here.
    fn prepare(&mut self, q: f64);

    /// Number of samples currently backing the estimates (1 for exact).
    fn num_samples(&self) -> usize;

    /// Writes, for every node `u`, the estimated connection probability
    /// between `u` and `center` — at the selection radius into `select` and
    /// at the cover radius into `cover` (identical for unlimited oracles).
    ///
    /// # Panics
    /// Implementations panic if the buffers are not of length `num_nodes()`.
    fn center_probs(&mut self, center: NodeId, select: &mut [f64], cover: &mut [f64]);

    /// Estimated connection probability between `u` and `v` at the cover
    /// radius.
    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> f64;
}

/// Monte-Carlo oracle for **unlimited** connection probabilities, backed by
/// a progressive [`WorldEngine`].
///
/// Both pool growth ([`Oracle::prepare`]) and estimation
/// ([`Oracle::center_probs`], [`Oracle::pair_prob`]) run on rayon with the
/// engine's configured thread count; per-index RNG streams and integer
/// count merging make every estimate bit-identical across thread counts
/// **and across backends**.
pub struct McOracle<'g> {
    engine: Box<dyn WorldEngine + 'g>,
    schedule: SampleSchedule,
    epsilon: f64,
    counts: Vec<u32>,
}

impl<'g> McOracle<'g> {
    /// Creates the oracle on the scalar backend ([`ComponentPool`]).
    /// `threads = 0` uses all cores; `epsilon` is the relative-error target
    /// reflected by [`Oracle::epsilon`].
    pub fn new(
        graph: &'g UncertainGraph,
        seed: u64,
        threads: usize,
        schedule: SampleSchedule,
        epsilon: f64,
    ) -> Self {
        Self::with_engine(graph, seed, threads, schedule, epsilon, EngineKind::Scalar)
    }

    /// Creates the oracle on the backend selected by `kind`.
    pub fn with_engine(
        graph: &'g UncertainGraph,
        seed: u64,
        threads: usize,
        schedule: SampleSchedule,
        epsilon: f64,
        kind: EngineKind,
    ) -> Self {
        let engine: Box<dyn WorldEngine + 'g> = match kind {
            EngineKind::Scalar => Box::new(ComponentPool::new(graph, seed, threads)),
            EngineKind::BitParallel => Box::new(BitParallelPool::new(graph, seed, threads)),
        };
        Self::from_engine(engine, schedule, epsilon)
    }

    /// Wraps an already-built engine (the generic seam for future
    /// backends).
    pub fn from_engine(
        engine: Box<dyn WorldEngine + 'g>,
        schedule: SampleSchedule,
        epsilon: f64,
    ) -> Self {
        let n = engine.graph().num_nodes();
        McOracle { engine, schedule, epsilon, counts: vec![0; n] }
    }

    /// Read access to the backing engine (used by metrics and benches).
    pub fn engine(&self) -> &dyn WorldEngine {
        self.engine.as_ref()
    }
}

impl std::fmt::Debug for McOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McOracle")
            .field("samples", &self.engine.num_samples())
            .field("epsilon", &self.epsilon)
            .finish_non_exhaustive()
    }
}

impl Oracle for McOracle<'_> {
    fn num_nodes(&self) -> usize {
        self.engine.graph().num_nodes()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn prepare(&mut self, q: f64) {
        let r = self.schedule.samples_for(q, self.num_nodes());
        self.engine.ensure(r);
    }

    fn num_samples(&self) -> usize {
        self.engine.num_samples()
    }

    fn center_probs(&mut self, center: NodeId, select: &mut [f64], cover: &mut [f64]) {
        let r = self.engine.num_samples().max(1) as f64;
        self.engine.counts_from_center(center, &mut self.counts);
        for (i, &c) in self.counts.iter().enumerate() {
            let p = c as f64 / r;
            cover[i] = p;
            select[i] = p;
        }
    }

    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> f64 {
        self.engine.pair_estimate(u, v)
    }
}

/// Monte-Carlo oracle for **depth-limited** d-connection probabilities
/// (paper §3.4), backed by a depth-capable [`WorldEngine`] — per-world
/// bounded BFS on the scalar backend, mask-propagating multi-world BFS on
/// the bit-parallel backend.
///
/// `d_select` is the selection depth `d'` (paths counted when choosing a
/// center, Algorithm 4 line 5) and `d_cover` the cover depth `d` (paths
/// counted when removing covered nodes, line 8); `d_select ≤ d_cover`.
pub struct DepthMcOracle<'g> {
    engine: Box<dyn WorldEngine + 'g>,
    schedule: SampleSchedule,
    epsilon: f64,
    d_select: u32,
    d_cover: u32,
    count_select: Vec<u32>,
    count_cover: Vec<u32>,
}

impl<'g> DepthMcOracle<'g> {
    /// Creates the oracle on the scalar backend ([`WorldPool`]) with
    /// selection depth `d_select` and cover depth `d_cover`.
    ///
    /// # Errors
    /// Returns [`SamplingError::InvalidDepths`] if `d_select > d_cover`.
    pub fn new(
        graph: &'g UncertainGraph,
        seed: u64,
        threads: usize,
        schedule: SampleSchedule,
        epsilon: f64,
        d_select: u32,
        d_cover: u32,
    ) -> Result<Self, SamplingError> {
        Self::with_engine(
            graph,
            seed,
            threads,
            schedule,
            epsilon,
            d_select,
            d_cover,
            EngineKind::Scalar,
        )
    }

    /// Creates the oracle on the backend selected by `kind`.
    ///
    /// # Errors
    /// Returns [`SamplingError::InvalidDepths`] if `d_select > d_cover`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_engine(
        graph: &'g UncertainGraph,
        seed: u64,
        threads: usize,
        schedule: SampleSchedule,
        epsilon: f64,
        d_select: u32,
        d_cover: u32,
        kind: EngineKind,
    ) -> Result<Self, SamplingError> {
        let engine: Box<dyn WorldEngine + 'g> = match kind {
            EngineKind::Scalar => Box::new(WorldPool::new(graph, seed, threads)),
            EngineKind::BitParallel => Box::new(BitParallelPool::new(graph, seed, threads)),
        };
        Self::from_engine(engine, schedule, epsilon, d_select, d_cover)
    }

    /// Wraps an already-built depth-capable engine.
    ///
    /// # Errors
    /// Returns [`SamplingError::InvalidDepths`] if `d_select > d_cover`,
    /// or [`SamplingError::DepthIncapableEngine`] if a finite depth is
    /// requested from an engine that cannot answer finite-depth queries —
    /// caught here, at construction, rather than panicking at the first
    /// query deep inside a clustering run.
    pub fn from_engine(
        engine: Box<dyn WorldEngine + 'g>,
        schedule: SampleSchedule,
        epsilon: f64,
        d_select: u32,
        d_cover: u32,
    ) -> Result<Self, SamplingError> {
        if d_select > d_cover {
            return Err(SamplingError::InvalidDepths { d_select, d_cover });
        }
        if (d_select != DEPTH_UNLIMITED || d_cover != DEPTH_UNLIMITED)
            && !engine.supports_finite_depths()
        {
            return Err(SamplingError::DepthIncapableEngine);
        }
        let n = engine.graph().num_nodes();
        Ok(DepthMcOracle {
            engine,
            schedule,
            epsilon,
            d_select,
            d_cover,
            count_select: vec![0; n],
            count_cover: vec![0; n],
        })
    }

    /// The configured `(d_select, d_cover)` depths.
    pub fn depths(&self) -> (u32, u32) {
        (self.d_select, self.d_cover)
    }

    /// Read access to the backing engine.
    pub fn engine(&self) -> &dyn WorldEngine {
        self.engine.as_ref()
    }
}

impl std::fmt::Debug for DepthMcOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DepthMcOracle")
            .field("samples", &self.engine.num_samples())
            .field("depths", &(self.d_select, self.d_cover))
            .field("epsilon", &self.epsilon)
            .finish_non_exhaustive()
    }
}

impl Oracle for DepthMcOracle<'_> {
    fn num_nodes(&self) -> usize {
        self.engine.graph().num_nodes()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn prepare(&mut self, q: f64) {
        let r = self.schedule.samples_for(q, self.num_nodes());
        self.engine.ensure(r);
    }

    fn num_samples(&self) -> usize {
        self.engine.num_samples()
    }

    fn center_probs(&mut self, center: NodeId, select: &mut [f64], cover: &mut [f64]) {
        let r = self.engine.num_samples().max(1) as f64;
        self.engine.counts_within_depths(
            center,
            self.d_select,
            self.d_cover,
            &mut self.count_select,
            &mut self.count_cover,
        );
        for i in 0..select.len() {
            select[i] = self.count_select[i] as f64 / r;
            cover[i] = self.count_cover[i] as f64 / r;
        }
    }

    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> f64 {
        self.engine.pair_estimate_within(u, v, self.d_cover)
    }
}

/// Adapter exposing an [`ExactOracle`] through the [`Oracle`] trait
/// (selection and cover probabilities coincide; build the inner oracle
/// with [`ExactOracle::with_depth`] for exact depth-limited variants).
pub struct ExactOracleAdapter {
    inner: ExactOracle,
}

impl ExactOracleAdapter {
    /// Wraps an exact oracle.
    pub fn new(inner: ExactOracle) -> Self {
        ExactOracleAdapter { inner }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &ExactOracle {
        &self.inner
    }
}

impl Oracle for ExactOracleAdapter {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn prepare(&mut self, _q: f64) {}

    fn num_samples(&self) -> usize {
        1
    }

    fn center_probs(&mut self, center: NodeId, select: &mut [f64], cover: &mut [f64]) {
        let row = self.inner.probs_from(center);
        select.copy_from_slice(row);
        cover.copy_from_slice(row);
    }

    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> f64 {
        self.inner.pair_probability(u, v)
    }
}

/// Internal check that the unlimited sentinel is what engines expect.
const _: () = assert!(DEPTH_UNLIMITED == u32::MAX);

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn chain(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn mc_oracle_prepare_grows_pool() {
        let g = chain(6, 0.5);
        let mut o = McOracle::new(&g, 1, 1, SampleSchedule::practical(), 0.1);
        assert_eq!(o.num_samples(), 0);
        o.prepare(1.0);
        assert_eq!(o.num_samples(), 50);
        o.prepare(0.1);
        assert_eq!(o.num_samples(), 500);
        o.prepare(0.5); // never shrinks
        assert_eq!(o.num_samples(), 500);
    }

    #[test]
    fn mc_oracle_center_probs_match_exact_roughly() {
        let g = chain(4, 0.8);
        let exact = ExactOracle::new(&g).unwrap();
        let mut o = McOracle::new(&g, 42, 1, SampleSchedule::Fixed(8000), 0.1);
        o.prepare(0.1);
        let mut sel = vec![0.0; 4];
        let mut cov = vec![0.0; 4];
        o.center_probs(NodeId(0), &mut sel, &mut cov);
        assert_eq!(sel, cov, "unlimited oracle: select == cover");
        for v in 0..4u32 {
            let want = exact.pair_probability(NodeId(0), NodeId(v));
            assert!(
                (cov[v as usize] - want).abs() < 0.03,
                "Pr(0~{v}) est {} vs exact {want}",
                cov[v as usize]
            );
        }
    }

    #[test]
    fn mc_oracle_backends_agree_bit_for_bit() {
        let g = chain(9, 0.6);
        let mut scalar =
            McOracle::with_engine(&g, 7, 1, SampleSchedule::Fixed(90), 0.1, EngineKind::Scalar);
        let mut bit = McOracle::with_engine(
            &g,
            7,
            1,
            SampleSchedule::Fixed(90),
            0.1,
            EngineKind::BitParallel,
        );
        scalar.prepare(0.5);
        bit.prepare(0.5);
        assert_eq!(scalar.num_samples(), bit.num_samples());
        let (mut s1, mut c1) = (vec![0.0; 9], vec![0.0; 9]);
        let (mut s2, mut c2) = (vec![0.0; 9], vec![0.0; 9]);
        for c in 0..9u32 {
            scalar.center_probs(NodeId(c), &mut s1, &mut c1);
            bit.center_probs(NodeId(c), &mut s2, &mut c2);
            assert_eq!(s1, s2, "select rows differ at center {c}");
            assert_eq!(c1, c2, "cover rows differ at center {c}");
        }
        for v in 1..9u32 {
            assert_eq!(scalar.pair_prob(NodeId(0), NodeId(v)), bit.pair_prob(NodeId(0), NodeId(v)));
        }
    }

    #[test]
    fn depth_oracle_select_below_cover() {
        let g = chain(5, 1.0);
        let mut o = DepthMcOracle::new(&g, 1, 1, SampleSchedule::Fixed(10), 0.1, 1, 3).unwrap();
        o.prepare(1.0);
        let mut sel = vec![0.0; 5];
        let mut cov = vec![0.0; 5];
        o.center_probs(NodeId(0), &mut sel, &mut cov);
        assert_eq!(sel, vec![1.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(cov, vec![1.0, 1.0, 1.0, 1.0, 0.0]);
        assert_eq!(o.depths(), (1, 3));
    }

    #[test]
    fn depth_oracle_pair_prob_uses_cover_depth() {
        let g = chain(4, 1.0);
        let mut o = DepthMcOracle::new(&g, 1, 1, SampleSchedule::Fixed(5), 0.1, 1, 2).unwrap();
        o.prepare(1.0);
        assert_eq!(o.pair_prob(NodeId(0), NodeId(2)), 1.0);
        assert_eq!(o.pair_prob(NodeId(0), NodeId(3)), 0.0);
    }

    #[test]
    fn depth_oracle_backends_agree_bit_for_bit() {
        let g = chain(8, 0.7);
        let schedule = SampleSchedule::Fixed(70);
        let mut scalar =
            DepthMcOracle::with_engine(&g, 3, 1, schedule, 0.1, 1, 3, EngineKind::Scalar).unwrap();
        let mut bit =
            DepthMcOracle::with_engine(&g, 3, 1, schedule, 0.1, 1, 3, EngineKind::BitParallel)
                .unwrap();
        scalar.prepare(0.5);
        bit.prepare(0.5);
        let (mut s1, mut c1) = (vec![0.0; 8], vec![0.0; 8]);
        let (mut s2, mut c2) = (vec![0.0; 8], vec![0.0; 8]);
        for c in 0..8u32 {
            scalar.center_probs(NodeId(c), &mut s1, &mut c1);
            bit.center_probs(NodeId(c), &mut s2, &mut c2);
            assert_eq!(s1, s2, "select rows differ at center {c}");
            assert_eq!(c1, c2, "cover rows differ at center {c}");
        }
    }

    #[test]
    fn exact_adapter_is_exact() {
        let g = chain(3, 0.5);
        let mut o = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        assert_eq!(o.epsilon(), 0.0);
        o.prepare(1e-9); // no-op
        let mut sel = vec![0.0; 3];
        let mut cov = vec![0.0; 3];
        o.center_probs(NodeId(0), &mut sel, &mut cov);
        assert!((cov[1] - 0.5).abs() < 1e-12);
        assert!((cov[2] - 0.25).abs() < 1e-12);
        assert_eq!(sel, cov);
        assert!((o.pair_prob(NodeId(0), NodeId(2)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn depth_oracle_rejects_bad_depths() {
        let g = chain(3, 0.5);
        let err = DepthMcOracle::new(&g, 1, 1, SampleSchedule::Fixed(5), 0.1, 3, 2).unwrap_err();
        assert_eq!(err, SamplingError::InvalidDepths { d_select: 3, d_cover: 2 });
    }

    #[test]
    fn depth_oracle_rejects_depth_incapable_engine() {
        use crate::pool::ComponentPool;
        let g = chain(3, 0.5);
        let engine = Box::new(ComponentPool::new(&g, 1, 1));
        let err = DepthMcOracle::from_engine(engine, SampleSchedule::Fixed(5), 0.1, 1, 2)
            .expect_err("component pool cannot back a finite-depth oracle");
        assert_eq!(err, SamplingError::DepthIncapableEngine);
    }
}
