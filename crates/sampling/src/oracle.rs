//! The connection-probability oracle interface consumed by the clustering
//! algorithms.
//!
//! The paper first presents its algorithms against an exact oracle for
//! `Pr(u ~ v)` (§3) and then replaces it with progressive Monte-Carlo
//! estimation (§4). The [`Oracle`] trait captures exactly the access
//! pattern of `min-partial` (Algorithms 1 and 4):
//!
//! * [`Oracle::prepare`]`(q)` — announce that probabilities `≥ q` are about
//!   to be thresholded, letting Monte-Carlo implementations grow their
//!   sample pool per their [`SampleSchedule`];
//! * [`Oracle::center_probs`]`(c, select, cover)` — estimates of the
//!   connection probability of every node to a candidate center `c`, at the
//!   *selection* radius (`q̄` / depth `d'`) and the *cover* radius (`q` /
//!   depth `d`). For depth-unlimited oracles the two are identical;
//! * [`Oracle::pair_prob`] — a single pairwise estimate (used by objective
//!   evaluation).

use ugraph_graph::{DepthBfs, NodeId, UncertainGraph};

use crate::bounds::SampleSchedule;
use crate::exact::ExactOracle;
use crate::pool::{ComponentPool, WorldPool};

/// Source of (estimated) connection probabilities.
pub trait Oracle {
    /// Number of nodes of the underlying graph.
    fn num_nodes(&self) -> usize;

    /// Relative-error parameter ε of the estimates (0 for exact oracles).
    ///
    /// Thresholds are relaxed to `(1 − ε/2)·q` by the algorithms, per §4.1.
    fn epsilon(&self) -> f64;

    /// Ensures that subsequent estimates are reliable for probabilities
    /// `≥ q`. Monte-Carlo implementations grow their sample pools here.
    fn prepare(&mut self, q: f64);

    /// Number of samples currently backing the estimates (1 for exact).
    fn num_samples(&self) -> usize;

    /// Writes, for every node `u`, the estimated connection probability
    /// between `u` and `center` — at the selection radius into `select` and
    /// at the cover radius into `cover` (identical for unlimited oracles).
    ///
    /// # Panics
    /// Implementations panic if the buffers are not of length `num_nodes()`.
    fn center_probs(&mut self, center: NodeId, select: &mut [f64], cover: &mut [f64]);

    /// Estimated connection probability between `u` and `v` at the cover
    /// radius.
    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> f64;
}

/// Monte-Carlo oracle for **unlimited** connection probabilities, backed by
/// a progressive [`ComponentPool`].
///
/// Both pool growth ([`Oracle::prepare`]) and estimation
/// ([`Oracle::center_probs`], [`Oracle::pair_prob`]) run on rayon with the
/// pool's configured thread count; per-index RNG streams and integer count
/// merging make every estimate bit-identical across thread counts.
pub struct McOracle<'g> {
    pool: ComponentPool<'g>,
    schedule: SampleSchedule,
    epsilon: f64,
    counts: Vec<u32>,
}

impl<'g> McOracle<'g> {
    /// Creates the oracle. `threads = 0` uses all cores; `epsilon` is the
    /// relative-error target reflected by [`Oracle::epsilon`].
    pub fn new(
        graph: &'g UncertainGraph,
        seed: u64,
        threads: usize,
        schedule: SampleSchedule,
        epsilon: f64,
    ) -> Self {
        let n = graph.num_nodes();
        McOracle {
            pool: ComponentPool::new(graph, seed, threads),
            schedule,
            epsilon,
            counts: vec![0; n],
        }
    }

    /// Read access to the sample pool (used by the metrics crate, which
    /// needs per-sample component labels for AVPR).
    pub fn pool(&self) -> &ComponentPool<'g> {
        &self.pool
    }

    /// Consumes the oracle, returning the pool.
    pub fn into_pool(self) -> ComponentPool<'g> {
        self.pool
    }
}

impl Oracle for McOracle<'_> {
    fn num_nodes(&self) -> usize {
        self.pool.graph().num_nodes()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn prepare(&mut self, q: f64) {
        let r = self.schedule.samples_for(q, self.num_nodes());
        self.pool.ensure(r);
    }

    fn num_samples(&self) -> usize {
        self.pool.num_samples()
    }

    fn center_probs(&mut self, center: NodeId, select: &mut [f64], cover: &mut [f64]) {
        let r = self.pool.num_samples().max(1) as f64;
        self.pool.counts_from_center(center, &mut self.counts);
        for (i, &c) in self.counts.iter().enumerate() {
            let p = c as f64 / r;
            cover[i] = p;
            select[i] = p;
        }
    }

    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> f64 {
        self.pool.pair_estimate(u, v)
    }
}

/// Monte-Carlo oracle for **depth-limited** d-connection probabilities
/// (paper §3.4), backed by a [`WorldPool`] and bounded BFS.
///
/// `d_select` is the selection depth `d'` (paths counted when choosing a
/// center, Algorithm 4 line 5) and `d_cover` the cover depth `d` (paths
/// counted when removing covered nodes, line 8); `d_select ≤ d_cover`.
///
/// Like [`McOracle`], preparation and estimation are rayon-parallel with
/// thread-count-independent results (parallel workers build their own
/// bounded-BFS workspaces).
pub struct DepthMcOracle<'g> {
    pool: WorldPool<'g>,
    schedule: SampleSchedule,
    epsilon: f64,
    d_select: u32,
    d_cover: u32,
    bfs: DepthBfs,
    count_select: Vec<u32>,
    count_cover: Vec<u32>,
}

impl<'g> DepthMcOracle<'g> {
    /// Creates the oracle with selection depth `d_select` and cover depth
    /// `d_cover` (`d_select ≤ d_cover`).
    ///
    /// # Panics
    /// Panics if `d_select > d_cover`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        graph: &'g UncertainGraph,
        seed: u64,
        threads: usize,
        schedule: SampleSchedule,
        epsilon: f64,
        d_select: u32,
        d_cover: u32,
    ) -> Self {
        assert!(d_select <= d_cover, "d_select must be ≤ d_cover");
        let n = graph.num_nodes();
        DepthMcOracle {
            pool: WorldPool::new(graph, seed, threads),
            schedule,
            epsilon,
            d_select,
            d_cover,
            bfs: DepthBfs::new(n),
            count_select: vec![0; n],
            count_cover: vec![0; n],
        }
    }

    /// The configured `(d_select, d_cover)` depths.
    pub fn depths(&self) -> (u32, u32) {
        (self.d_select, self.d_cover)
    }

    /// Read access to the world pool.
    pub fn pool(&self) -> &WorldPool<'g> {
        &self.pool
    }
}

impl Oracle for DepthMcOracle<'_> {
    fn num_nodes(&self) -> usize {
        self.pool.graph().num_nodes()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn prepare(&mut self, q: f64) {
        let r = self.schedule.samples_for(q, self.num_nodes());
        self.pool.ensure(r);
    }

    fn num_samples(&self) -> usize {
        self.pool.num_samples()
    }

    fn center_probs(&mut self, center: NodeId, select: &mut [f64], cover: &mut [f64]) {
        let r = self.pool.num_samples().max(1) as f64;
        self.pool.counts_within_depths(
            center,
            self.d_select,
            self.d_cover,
            &mut self.count_select,
            &mut self.count_cover,
            &mut self.bfs,
        );
        for i in 0..select.len() {
            select[i] = self.count_select[i] as f64 / r;
            cover[i] = self.count_cover[i] as f64 / r;
        }
    }

    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> f64 {
        self.pool.pair_estimate_within(u, v, self.d_cover, &mut self.bfs)
    }
}

/// Adapter exposing an [`ExactOracle`] through the [`Oracle`] trait
/// (selection and cover probabilities coincide; build the inner oracle
/// with [`ExactOracle::with_depth`] for exact depth-limited variants).
pub struct ExactOracleAdapter {
    inner: ExactOracle,
}

impl ExactOracleAdapter {
    /// Wraps an exact oracle.
    pub fn new(inner: ExactOracle) -> Self {
        ExactOracleAdapter { inner }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &ExactOracle {
        &self.inner
    }
}

impl Oracle for ExactOracleAdapter {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn prepare(&mut self, _q: f64) {}

    fn num_samples(&self) -> usize {
        1
    }

    fn center_probs(&mut self, center: NodeId, select: &mut [f64], cover: &mut [f64]) {
        let row = self.inner.probs_from(center);
        select.copy_from_slice(row);
        cover.copy_from_slice(row);
    }

    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> f64 {
        self.inner.pair_probability(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn chain(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn mc_oracle_prepare_grows_pool() {
        let g = chain(6, 0.5);
        let mut o = McOracle::new(&g, 1, 1, SampleSchedule::practical(), 0.1);
        assert_eq!(o.num_samples(), 0);
        o.prepare(1.0);
        assert_eq!(o.num_samples(), 50);
        o.prepare(0.1);
        assert_eq!(o.num_samples(), 500);
        o.prepare(0.5); // never shrinks
        assert_eq!(o.num_samples(), 500);
    }

    #[test]
    fn mc_oracle_center_probs_match_exact_roughly() {
        let g = chain(4, 0.8);
        let exact = ExactOracle::new(&g).unwrap();
        let mut o = McOracle::new(&g, 42, 1, SampleSchedule::Fixed(8000), 0.1);
        o.prepare(0.1);
        let mut sel = vec![0.0; 4];
        let mut cov = vec![0.0; 4];
        o.center_probs(NodeId(0), &mut sel, &mut cov);
        assert_eq!(sel, cov, "unlimited oracle: select == cover");
        for v in 0..4u32 {
            let want = exact.pair_probability(NodeId(0), NodeId(v));
            assert!(
                (cov[v as usize] - want).abs() < 0.03,
                "Pr(0~{v}) est {} vs exact {want}",
                cov[v as usize]
            );
        }
    }

    #[test]
    fn depth_oracle_select_below_cover() {
        let g = chain(5, 1.0);
        let mut o = DepthMcOracle::new(&g, 1, 1, SampleSchedule::Fixed(10), 0.1, 1, 3);
        o.prepare(1.0);
        let mut sel = vec![0.0; 5];
        let mut cov = vec![0.0; 5];
        o.center_probs(NodeId(0), &mut sel, &mut cov);
        assert_eq!(sel, vec![1.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(cov, vec![1.0, 1.0, 1.0, 1.0, 0.0]);
        assert_eq!(o.depths(), (1, 3));
    }

    #[test]
    fn depth_oracle_pair_prob_uses_cover_depth() {
        let g = chain(4, 1.0);
        let mut o = DepthMcOracle::new(&g, 1, 1, SampleSchedule::Fixed(5), 0.1, 1, 2);
        o.prepare(1.0);
        assert_eq!(o.pair_prob(NodeId(0), NodeId(2)), 1.0);
        assert_eq!(o.pair_prob(NodeId(0), NodeId(3)), 0.0);
    }

    #[test]
    fn exact_adapter_is_exact() {
        let g = chain(3, 0.5);
        let mut o = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        assert_eq!(o.epsilon(), 0.0);
        o.prepare(1e-9); // no-op
        let mut sel = vec![0.0; 3];
        let mut cov = vec![0.0; 3];
        o.center_probs(NodeId(0), &mut sel, &mut cov);
        assert!((cov[1] - 0.5).abs() < 1e-12);
        assert!((cov[2] - 0.25).abs() < 1e-12);
        assert_eq!(sel, cov);
        assert!((o.pair_prob(NodeId(0), NodeId(2)) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "d_select must be")]
    fn depth_oracle_rejects_bad_depths() {
        let g = chain(3, 0.5);
        let _ = DepthMcOracle::new(&g, 1, 1, SampleSchedule::Fixed(5), 0.1, 3, 2);
    }
}
