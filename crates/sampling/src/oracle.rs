//! The connection-probability oracle interface consumed by the clustering
//! algorithms.
//!
//! The paper first presents its algorithms against an exact oracle for
//! `Pr(u ~ v)` (§3) and then replaces it with progressive Monte-Carlo
//! estimation (§4). The [`Oracle`] trait captures exactly the access
//! pattern of `min-partial` (Algorithms 1 and 4):
//!
//! * [`Oracle::prepare`]`(q)` — announce that probabilities `≥ q` are about
//!   to be thresholded, letting Monte-Carlo implementations grow their
//!   sample pool per their [`SampleSchedule`];
//! * [`Oracle::center_probs`]`(c, select, cover)` — estimates of the
//!   connection probability of every node to a candidate center `c`, at the
//!   *selection* radius (`q̄` / depth `d'`) and the *cover* radius (`q` /
//!   depth `d`). For depth-unlimited oracles the two are identical;
//! * [`Oracle::pair_prob`] — a single pairwise estimate (used by objective
//!   evaluation).
//!
//! The Monte-Carlo oracles are built on the [`WorldEngine`] seam: each one
//! owns a boxed engine, so the scalar and bit-parallel backends (selected
//! by [`EngineKind`]) are interchangeable behind an unchanged oracle
//! interface — and every backend yields bit-identical estimates for a
//! fixed master seed.
//!
//! ## Row amortization: batching and the incremental count cache
//!
//! The clustering drivers re-run `min-partial` many times over the *same*
//! grow-only sample pool (the MCP/ACP guessing schedules), and each
//! invocation thresholds many center rows. Two mechanisms keep that from
//! re-sweeping the pool per row:
//!
//! * **Batching** — [`Oracle::center_probs_batch`] fetches all candidate
//!   rows of one greedy step through the engines' multi-center queries
//!   (one pool sweep updating every row; multi-source mask BFS on the
//!   bit-parallel backend). Oracles whose selection and cover rows always
//!   coincide advertise it via [`Oracle::identical_rows`], and the batch
//!   then writes each row **once**.
//! * **Row caching** — the Monte-Carlo oracles keep, per center, the raw
//!   **integer counts** together with the pool size they integrate over.
//!
//! ### When do cached counts stay valid?
//!
//! Always, as a *prefix*: pools grow monotonically and sample `i` is fixed
//! by its per-index RNG stream, so a cached row covering the first `r₀`
//! samples is never invalidated — it is merely *incomplete* once the pool
//! has grown to `r > r₀`. Serving a row then needs only a **top-up**: a
//! ranged count over the new worlds `[r₀, r)` added onto the cached
//! integers (counts over disjoint index ranges are exactly additive).
//! Probabilities are derived by dividing by the pool size at serve time,
//! so a cached row yields bit-identical estimates to a fresh
//! recomputation. Top-up waves triggered by one batched fetch are grouped
//! by their start index and answered through the engines' **ranged
//! multi-center** queries ([`WorldEngine::counts_from_centers_range`]),
//! so rows cached at the same guess share one sweep of the new worlds.
//! Cache effectiveness is reported via [`Oracle::cache_stats`] as
//! [`RowCacheStats`] (hits / incremental top-ups / full recomputes).
//!
//! ### The active sample window
//!
//! A reused oracle (held by a `UgraphSession` across many clustering
//! requests) distinguishes its **physical** pool — every world sampled so
//! far, never shrinking — from the **active window**, the prefix
//! `[0, active)` that estimates integrate over. [`Oracle::begin_request`]
//! resets the window to empty and [`Oracle::prepare`] re-grows it per the
//! schedule, so a request served by a warm oracle uses exactly the
//! samples a fresh oracle would have drawn — bit-identical results — while
//! skipping the re-sampling of worlds the pool already holds. Cached rows
//! covering *more* than the active window cannot serve it (counts are not
//! subtractable) and are rebuilt over the window; rows covering a prefix
//! of it top up as usual.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use ugraph_graph::{NodeId, UncertainGraph};

use crate::bounds::SampleSchedule;
use crate::budget::{MemoryBudget, MemoryStats};
use crate::engine::{BlockWidth, EngineKind, EngineStats, WorldEngine, DEPTH_UNLIMITED};
use crate::error::SamplingError;
use crate::exact::ExactOracle;
use crate::faults::{self, FaultSite};
use crate::interrupt::RunState;
use crate::pool::{BitParallelPool, ComponentPool, WorldPool};

/// Counters describing how an oracle's per-center row cache served the
/// probability rows requested so far (see the module docs for the cache's
/// validity rules). All zero for oracles without a cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RowCacheStats {
    /// Rows served entirely from cached counts (pool unchanged since the
    /// row was cached).
    pub hits: usize,
    /// Rows topped up incrementally: only the worlds sampled since the row
    /// was cached were counted.
    pub topups: usize,
    /// Rows computed from scratch over the full pool (cache misses, plus
    /// every row when caching is disabled).
    pub fulls: usize,
}

impl RowCacheStats {
    /// Total number of rows served.
    pub fn rows_served(&self) -> usize {
        self.hits + self.topups + self.fulls
    }

    /// The counters accumulated since an earlier snapshot (field-wise
    /// difference, saturating) — how a session reports per-request cache
    /// service from an oracle's cumulative counters.
    pub fn since(self, earlier: RowCacheStats) -> RowCacheStats {
        RowCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            topups: self.topups.saturating_sub(earlier.topups),
            fulls: self.fulls.saturating_sub(earlier.fulls),
        }
    }

    /// Field-wise sum — aggregation across a session's oracles.
    pub fn merged(self, other: RowCacheStats) -> RowCacheStats {
        RowCacheStats {
            hits: self.hits + other.hits,
            topups: self.topups + other.topups,
            fulls: self.fulls + other.fulls,
        }
    }
}

/// One cached center row: raw integer counts plus the pool size they
/// integrate over.
#[derive(Clone, Debug)]
struct CachedRow {
    /// Number of pool samples (a prefix of the pool) the counts cover.
    covered: usize,
    /// Selection-radius counts; empty when identical to `cover`.
    select: Vec<u32>,
    /// Cover-radius counts.
    cover: Vec<u32>,
}

/// Default soft memory budget of one oracle's row cache, in `u32` count
/// entries (2²⁸ entries = 1 GiB). Once the cache holds `budget / (n ·
/// rows per center)` distinct centers, further centers are computed
/// without being cached — estimates are unchanged, only reuse stops
/// growing. This is what keeps the ACP *Theory* invocation (`α = n`,
/// every node a candidate center) from accumulating `O(n²)` cache memory
/// on large graphs; already-admitted rows keep serving hits and top-ups.
/// When an explicit [`MemoryBudget`] is attached, the cap tightens to
/// half that budget and every admitted row is charged to the shared
/// ledger (see [`RowCache::set_budget`]).
const ROW_CACHE_BUDGET_U32S: usize = 1 << 28;

/// Per-center incremental count cache shared by the Monte-Carlo oracles.
#[derive(Debug)]
struct RowCache {
    rows: HashMap<u32, CachedRow>,
    stats: RowCacheStats,
    enabled: bool,
    /// Maximum number of distinct centers admitted, derived from
    /// [`ROW_CACHE_BUDGET_U32S`] at construction and tightened by
    /// [`RowCache::set_budget`].
    max_rows: usize,
    /// Approximate heap bytes of one admitted row (count entries only).
    bytes_per_row: usize,
    /// Bytes this cache has charged against `budget`.
    bytes: usize,
    /// Shared ledger the cached rows are charged to (unbounded by
    /// default). Cached counts cannot be evicted — they are grow-only
    /// prefixes — so the budget gates *admission* instead.
    budget: MemoryBudget,
}

impl RowCache {
    /// Creates a cache for `n`-node rows storing `rows_per_center` count
    /// vectors per admitted center.
    fn new(enabled: bool, n: usize, rows_per_center: usize) -> Self {
        let max_rows = ROW_CACHE_BUDGET_U32S / (n * rows_per_center).max(1);
        RowCache {
            rows: HashMap::new(),
            stats: RowCacheStats::default(),
            enabled,
            max_rows,
            bytes_per_row: n * rows_per_center * std::mem::size_of::<u32>(),
            bytes: 0,
            budget: MemoryBudget::unbounded(),
        }
    }

    /// Attaches a shared memory budget: already-charged bytes move to the
    /// new ledger, and — when the budget is bounded — the admission cap
    /// tightens so cached rows claim at most **half** the limit, leaving
    /// the rest for the (evictable) sample shards.
    fn set_budget(&mut self, budget: MemoryBudget) {
        self.budget.release(self.bytes);
        budget.charge(self.bytes);
        if let Some(limit) = budget.limit() {
            self.max_rows = self.max_rows.min((limit / 2) / self.bytes_per_row.max(1));
        }
        self.budget = budget;
    }

    /// Whether `center`'s row may go through the cache: caching is on, and
    /// the center is either already cached or the budget admits another
    /// (row-count cap *and* ledger headroom — cached rows are grow-only,
    /// so a row that would push the shared ledger past its limit is never
    /// admitted).
    fn admits(&self, center: NodeId) -> bool {
        self.enabled
            && (self.rows.contains_key(&center.0)
                || (self.rows.len() < self.max_rows
                    && !self.budget.would_exceed(self.bytes_per_row)))
    }

    /// Inserts a freshly computed row, charging its bytes to the ledger
    /// (only on first insertion for the center — batch paths may compute
    /// a duplicate center twice and overwrite).
    fn insert(&mut self, center: NodeId, row: CachedRow) {
        if self.rows.insert(center.0, row).is_none() {
            self.budget.charge(self.bytes_per_row);
            self.bytes += self.bytes_per_row;
        }
    }

    /// Drops every cached row and releases the charged bytes.
    fn clear(&mut self) {
        self.rows.clear();
        self.budget.release(self.bytes);
        self.bytes = 0;
    }

    /// The cache-serve protocol, written once: returns the up-to-date row
    /// for `center`, counting a hit, a top-up, or a full recompute.
    /// `topup(ctx, row, lo)` must add counts over the new worlds
    /// `[lo, r_now)` onto the row — **only after validating** that the
    /// underlying sweep completed, so an interrupted query never merges
    /// torn counts; `full(ctx)` must build a row covering `[0, r_now)`
    /// under the same discipline. A cached row covering **more** than
    /// `r_now` (the active window is a strict prefix of what the row
    /// integrated — counts cannot be subtracted) is rebuilt by `full` as
    /// well. `ctx` carries the engine and scratch buffers (both closures
    /// need them, and two closures cannot capture the same `&mut` state).
    ///
    /// On `Err` the cache is exactly as it was — the row is either absent
    /// or still covering its old prefix, and the bytes reserved for a new
    /// row are rolled back by the [`crate::budget::ChargeGuard`].
    fn serve<C>(
        &mut self,
        ctx: &mut C,
        center: NodeId,
        r_now: usize,
        topup: impl FnOnce(&mut C, &mut CachedRow, usize) -> Result<(), SamplingError>,
        full: impl FnOnce(&mut C) -> Result<CachedRow, SamplingError>,
    ) -> Result<&CachedRow, SamplingError> {
        match self.rows.entry(center.0) {
            Entry::Occupied(e) => {
                let row = e.into_mut();
                if row.covered < r_now {
                    let lo = row.covered;
                    topup(ctx, row, lo)?;
                    row.covered = r_now;
                    self.stats.topups += 1;
                } else if row.covered == r_now {
                    self.stats.hits += 1;
                } else {
                    *row = full(ctx)?;
                    self.stats.fulls += 1;
                }
                Ok(row)
            }
            Entry::Vacant(v) => {
                faults::hit(FaultSite::BudgetAdmission)?;
                let reserved = self.budget.reserve(self.bytes_per_row);
                let row = full(ctx)?;
                reserved.commit();
                self.bytes += self.bytes_per_row;
                self.stats.fulls += 1;
                Ok(v.insert(row))
            }
        }
    }

    /// Batch-path classification of one requested row against the active
    /// window `[0, r_now)`: a hit is counted immediately; top-ups and
    /// misses are returned to the caller, which defers them to grouped
    /// ranged sweeps (top-ups) or one batched full sweep (misses). A row
    /// covering more than `r_now` classifies as a miss (see
    /// [`RowCache::serve`]).
    fn classify(&mut self, center: NodeId, r_now: usize) -> RowService {
        match self.rows.get(&center.0) {
            Some(row) if row.covered == r_now => {
                self.stats.hits += 1;
                RowService::Hit
            }
            Some(row) if row.covered < r_now => RowService::Topup { lo: row.covered },
            Some(_) | None => RowService::Miss,
        }
    }
}

impl Drop for RowCache {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

/// Outcome of [`RowCache::classify`] for one batched row request.
enum RowService {
    Hit,
    Topup { lo: usize },
    Miss,
}

/// One top-up wave of a batched row fetch: all entries share the window
/// start `lo`, and duplicate centers are collapsed onto one computed row.
struct TopupGroup {
    lo: usize,
    /// Distinct centers of the group, in first-appearance order.
    uniq: Vec<NodeId>,
    /// `(batch index j, slot into uniq)` per requested row.
    entries: Vec<(usize, usize)>,
}

/// Groups `(batch index, window start)` top-up entries by their window
/// start, deduplicating centers within each group — the plan executed by
/// one ranged multi-center engine query per group.
fn plan_topups(mut topups: Vec<(usize, usize)>, centers: &[NodeId]) -> Vec<TopupGroup> {
    topups.sort_unstable_by_key(|&(j, lo)| (lo, j));
    let mut groups: Vec<TopupGroup> = Vec::new();
    for (j, lo) in topups {
        if groups.last().is_none_or(|g| g.lo != lo) {
            groups.push(TopupGroup { lo, uniq: Vec::new(), entries: Vec::new() });
        }
        let g = groups.last_mut().unwrap_or_else(|| unreachable!("group pushed above"));
        let c = centers[j];
        let slot = g.uniq.iter().position(|&u| u == c).unwrap_or_else(|| {
            g.uniq.push(c);
            g.uniq.len() - 1
        });
        g.entries.push((j, slot));
    }
    groups
}

/// Unlimited counts over the active window `[0, r_now)` — a plain sweep
/// when the window spans the whole physical pool, a ranged one when the
/// pool extends past it (session-reused oracles).
fn window_counts(
    engine: &mut dyn WorldEngine,
    center: NodeId,
    r_now: usize,
    physical: usize,
    out: &mut [u32],
) {
    if r_now == physical {
        engine.counts_from_center(center, out);
    } else {
        engine.counts_from_center_range(center, 0, r_now, out);
    }
}

/// Batched [`window_counts`].
fn window_counts_batch(
    engine: &mut dyn WorldEngine,
    centers: &[NodeId],
    r_now: usize,
    physical: usize,
    out: &mut [u32],
) {
    if r_now == physical {
        engine.counts_from_centers(centers, out);
    } else {
        engine.counts_from_centers_range(centers, 0, r_now, out);
    }
}

/// Depth-limited counts over the active window `[0, r_now)` (see
/// [`window_counts`]).
#[allow(clippy::too_many_arguments)]
fn window_depth_counts(
    engine: &mut dyn WorldEngine,
    center: NodeId,
    d_select: u32,
    d_cover: u32,
    r_now: usize,
    physical: usize,
    out_select: &mut [u32],
    out_cover: &mut [u32],
) {
    if r_now == physical {
        engine.counts_within_depths(center, d_select, d_cover, out_select, out_cover);
    } else {
        engine
            .counts_within_depths_range(center, d_select, d_cover, 0, r_now, out_select, out_cover);
    }
}

/// Batched [`window_depth_counts`].
#[allow(clippy::too_many_arguments)]
fn window_depth_counts_batch(
    engine: &mut dyn WorldEngine,
    centers: &[NodeId],
    d_select: u32,
    d_cover: u32,
    r_now: usize,
    physical: usize,
    out_select: &mut [u32],
    out_cover: &mut [u32],
) {
    if r_now == physical {
        engine.counts_within_depths_batch(centers, d_select, d_cover, out_select, out_cover);
    } else {
        engine.counts_within_depths_batch_range(
            centers, d_select, d_cover, 0, r_now, out_select, out_cover,
        );
    }
}

/// Writes `counts[i] / r` into `out[i]`.
#[inline]
fn write_probs(counts: &[u32], r: f64, out: &mut [f64]) {
    for (o, &c) in out.iter_mut().zip(counts) {
        *o = c as f64 / r;
    }
}

/// Element-wise `row[i] += fresh[i]`, the top-up merge.
#[inline]
fn add_counts(row: &mut [u32], fresh: &[u32]) {
    for (a, &d) in row.iter_mut().zip(fresh) {
        *a += d;
    }
}

/// Source of (estimated) connection probabilities.
pub trait Oracle {
    /// Number of nodes of the underlying graph.
    fn num_nodes(&self) -> usize;

    /// Relative-error parameter ε of the estimates (0 for exact oracles).
    ///
    /// Thresholds are relaxed to `(1 − ε/2)·q` by the algorithms, per §4.1.
    fn epsilon(&self) -> f64;

    /// Ensures that subsequent estimates are reliable for probabilities
    /// `≥ q`. Monte-Carlo implementations grow their sample pools here.
    ///
    /// # Errors
    /// Returns [`SamplingError::Interrupted`] when the attached
    /// [`RunState`] trips (deadline or cancellation) mid-growth, or
    /// [`SamplingError::FaultInjected`] under an armed fault plan. The
    /// oracle remains consistent: the active window is clamped to what
    /// the pool actually holds, and re-preparing after the interruption
    /// clears completes bit-identically.
    fn prepare(&mut self, q: f64) -> Result<(), SamplingError>;

    /// Attaches the cooperative interruption state polled at the oracle's
    /// checkpoints, forwarding it to the backing engine. Defaults to a
    /// no-op for oracles that cannot be interrupted (exact oracles).
    fn set_run_state(&mut self, run: RunState) {
        let _ = run;
    }

    /// Begins a new logical request on a (possibly reused) oracle.
    ///
    /// Monte-Carlo oracles reset their **active sample window** to empty;
    /// subsequent [`Oracle::prepare`] calls re-grow it per the schedule
    /// while the physical pool — which never shrinks — keeps every world
    /// already sampled. Estimates then integrate over exactly the prefix a
    /// fresh oracle would have used, which is what makes a request served
    /// by a warm session oracle bit-identical to a one-shot run (see the
    /// module docs). No-op for exact oracles.
    fn begin_request(&mut self) {}

    /// Number of samples currently backing the estimates — the active
    /// window for Monte-Carlo oracles (1 for exact).
    fn num_samples(&self) -> usize;

    /// Number of worlds in the oracle's **physical** pool, regardless of
    /// the active window (`≥ num_samples()`; 1 for exact oracles) — what a
    /// session reports as worlds actually sampled.
    fn pool_samples(&self) -> usize {
        self.num_samples()
    }

    /// Writes, for every node `u`, the estimated connection probability
    /// between `u` and `center` — at the selection radius into `select` and
    /// at the cover radius into `cover` (identical for unlimited oracles).
    ///
    /// # Errors
    /// Returns [`SamplingError::Interrupted`] /
    /// [`SamplingError::FaultInjected`] when the sweep is interrupted or
    /// a failpoint fires; the output buffers are then unspecified but the
    /// oracle (including its row cache) holds no torn state.
    ///
    /// # Panics
    /// Implementations panic if the buffers are not of length `num_nodes()`.
    fn center_probs(
        &mut self,
        center: NodeId,
        select: &mut [f64],
        cover: &mut [f64],
    ) -> Result<(), SamplingError>;

    /// Estimated connection probability between `u` and `v` at the cover
    /// radius.
    ///
    /// # Errors
    /// Returns [`SamplingError::Interrupted`] /
    /// [`SamplingError::FaultInjected`] under interruption or an armed
    /// failpoint (see [`Oracle::center_probs`]).
    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> Result<f64, SamplingError>;

    /// Whether the selection and cover rows of this oracle are **always**
    /// identical (depth-unlimited oracles, and depth oracles with
    /// `d_select == d_cover`). Callers may then request only cover rows
    /// from [`Oracle::center_probs_batch`] and read selection estimates
    /// from them — the identical-rows fast path that writes each row once.
    fn identical_rows(&self) -> bool {
        false
    }

    /// Batched [`Oracle::center_probs`]: one selection row and one cover
    /// row per requested center, row-major (`select[j * n + u]`,
    /// `cover[j * n + u]`). Estimates are identical to sequential
    /// `center_probs` calls; implementations amortize the pool sweeps and
    /// serve cached rows where possible.
    ///
    /// When [`Oracle::identical_rows`] is `true`, callers may pass an
    /// **empty** `select` buffer and read selection estimates from
    /// `cover`; each row is then written once.
    ///
    /// # Errors
    /// Returns [`SamplingError::Interrupted`] /
    /// [`SamplingError::FaultInjected`] under interruption or an armed
    /// failpoint (see [`Oracle::center_probs`]).
    ///
    /// # Panics
    /// Panics if `cover.len() != centers.len() * num_nodes()`, or if
    /// `select` is neither empty (identical rows only) nor of the same
    /// length as `cover`.
    fn center_probs_batch(
        &mut self,
        centers: &[NodeId],
        select: &mut [f64],
        cover: &mut [f64],
    ) -> Result<(), SamplingError> {
        let n = self.num_nodes();
        assert_eq!(cover.len(), centers.len() * n, "batch cover buffer has wrong length");
        if select.is_empty() && !centers.is_empty() {
            assert!(self.identical_rows(), "empty select buffer requires identical rows");
            let mut scratch = vec![0.0; n];
            for (j, &c) in centers.iter().enumerate() {
                self.center_probs(c, &mut scratch, &mut cover[j * n..(j + 1) * n])?;
            }
        } else {
            assert_eq!(select.len(), cover.len(), "batch select buffer has wrong length");
            for (j, &c) in centers.iter().enumerate() {
                self.center_probs(
                    c,
                    &mut select[j * n..(j + 1) * n],
                    &mut cover[j * n..(j + 1) * n],
                )?;
            }
        }
        Ok(())
    }

    /// Row-cache effectiveness counters (all zero for oracles without a
    /// cache).
    fn cache_stats(&self) -> RowCacheStats {
        RowCacheStats::default()
    }

    /// Finalization counters of the backing engine (all zero for oracles
    /// whose backend has no lazy block finalization — see
    /// [`crate::EngineStats`]).
    fn engine_stats(&self) -> EngineStats {
        EngineStats::default()
    }

    /// Memory accounting of the backing engine plus this oracle's cached
    /// rows (zero and unbounded for oracles without budgeted storage —
    /// see [`MemoryStats`]).
    fn memory_stats(&self) -> MemoryStats {
        MemoryStats::default()
    }
}

/// Monte-Carlo oracle for **unlimited** connection probabilities, backed by
/// a progressive [`WorldEngine`].
///
/// Both pool growth ([`Oracle::prepare`]) and estimation
/// ([`Oracle::center_probs`], [`Oracle::pair_prob`]) run on rayon with the
/// engine's configured thread count; per-index RNG streams and integer
/// count merging make every estimate bit-identical across thread counts
/// **and across backends**.
pub struct McOracle<'g> {
    engine: Box<dyn WorldEngine + 'g>,
    schedule: SampleSchedule,
    epsilon: f64,
    /// Active sample window: estimates integrate over `[0, active)`, a
    /// prefix of the physical pool (see the module docs).
    active: usize,
    /// Scratch for single rows and ranged top-ups.
    counts: Vec<u32>,
    /// Scratch for batched rows (`k · n`, grown on demand).
    batch: Vec<u32>,
    cache: RowCache,
    /// Cooperative interruption state shared with the engine.
    run: RunState,
}

impl<'g> McOracle<'g> {
    /// Creates the oracle on the scalar backend ([`ComponentPool`]).
    /// `threads = 0` uses all cores; `epsilon` is the relative-error target
    /// reflected by [`Oracle::epsilon`].
    pub fn new(
        graph: &'g UncertainGraph,
        seed: u64,
        threads: usize,
        schedule: SampleSchedule,
        epsilon: f64,
    ) -> Self {
        Self::with_engine(graph, seed, threads, schedule, epsilon, EngineKind::Scalar)
    }

    /// Creates the oracle on the backend selected by `kind`, at the
    /// default [`BlockWidth`].
    pub fn with_engine(
        graph: &'g UncertainGraph,
        seed: u64,
        threads: usize,
        schedule: SampleSchedule,
        epsilon: f64,
        kind: EngineKind,
    ) -> Self {
        Self::with_engine_width(
            graph,
            seed,
            threads,
            schedule,
            epsilon,
            kind,
            BlockWidth::default(),
        )
    }

    /// Creates the oracle on the backend selected by `kind` with the
    /// bit-parallel block width selected by `width` (ignored by the scalar
    /// backend). Estimates are bit-identical at every width.
    #[allow(clippy::too_many_arguments)]
    pub fn with_engine_width(
        graph: &'g UncertainGraph,
        seed: u64,
        threads: usize,
        schedule: SampleSchedule,
        epsilon: f64,
        kind: EngineKind,
        width: BlockWidth,
    ) -> Self {
        let engine: Box<dyn WorldEngine + 'g> = match (kind, width) {
            (EngineKind::Scalar, _) => Box::new(ComponentPool::new(graph, seed, threads)),
            (EngineKind::BitParallel, BlockWidth::W64) => {
                Box::new(BitParallelPool::<1>::new(graph, seed, threads))
            }
            (EngineKind::BitParallel, BlockWidth::W256) => {
                Box::new(BitParallelPool::<4>::new(graph, seed, threads))
            }
            (EngineKind::BitParallel, BlockWidth::W512) => {
                Box::new(BitParallelPool::<8>::new(graph, seed, threads))
            }
            (EngineKind::Adaptive, BlockWidth::W64) => {
                Box::new(BitParallelPool::<1>::new_adaptive(graph, seed, threads))
            }
            (EngineKind::Adaptive, BlockWidth::W256) => {
                Box::new(BitParallelPool::<4>::new_adaptive(graph, seed, threads))
            }
            (EngineKind::Adaptive, BlockWidth::W512) => {
                Box::new(BitParallelPool::<8>::new_adaptive(graph, seed, threads))
            }
        };
        Self::from_engine(engine, schedule, epsilon)
    }

    /// Wraps an already-built engine (the generic seam for future
    /// backends).
    pub fn from_engine(
        engine: Box<dyn WorldEngine + 'g>,
        schedule: SampleSchedule,
        epsilon: f64,
    ) -> Self {
        let n = engine.graph().num_nodes();
        let active = engine.num_samples();
        McOracle {
            engine,
            schedule,
            epsilon,
            active,
            counts: vec![0; n],
            batch: Vec::new(),
            cache: RowCache::new(true, n, 1),
            run: RunState::unlimited(),
        }
    }

    /// Enables or disables the per-center row cache (enabled by default).
    /// Disabling also drops any cached rows; estimates are identical either
    /// way — the cache trades memory (one integer row per distinct center)
    /// for skipped pool sweeps.
    pub fn with_row_cache(mut self, enabled: bool) -> Self {
        self.cache.enabled = enabled;
        if !enabled {
            self.cache.clear();
        }
        self
    }

    /// Attaches a shared [`MemoryBudget`]: the backing engine charges its
    /// sample shards to it (evicting least-recently-used shards under
    /// pressure, bit-identically regenerated on demand) and the row cache
    /// admits new centers only while the ledger has headroom.
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.engine.set_memory_budget(budget.clone());
        self.cache.set_budget(budget);
        self
    }

    /// Read access to the backing engine (used by metrics and benches).
    pub fn engine(&self) -> &dyn WorldEngine {
        self.engine.as_ref()
    }
}

impl std::fmt::Debug for McOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McOracle")
            .field("samples", &self.engine.num_samples())
            .field("epsilon", &self.epsilon)
            .finish_non_exhaustive()
    }
}

impl Oracle for McOracle<'_> {
    fn num_nodes(&self) -> usize {
        self.engine.graph().num_nodes()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn prepare(&mut self, q: f64) -> Result<(), SamplingError> {
        let r = self.schedule.samples_for(q, self.num_nodes());
        self.active = self.active.max(r);
        self.engine.ensure(self.active);
        if let Err(e) = self.run.error() {
            // Growth stopped early: clamp the window to what the pool
            // actually holds so a BestEffort continuation never sweeps
            // worlds that were not generated.
            self.active = self.active.min(self.engine.num_samples());
            return Err(e);
        }
        Ok(())
    }

    fn set_run_state(&mut self, run: RunState) {
        self.run = run.clone();
        self.engine.set_run_state(run);
    }

    fn begin_request(&mut self) {
        self.active = 0;
    }

    fn num_samples(&self) -> usize {
        self.active
    }

    fn pool_samples(&self) -> usize {
        self.engine.num_samples()
    }

    fn center_probs(
        &mut self,
        center: NodeId,
        select: &mut [f64],
        cover: &mut [f64],
    ) -> Result<(), SamplingError> {
        let r_now = self.active;
        let physical = self.engine.num_samples();
        let r = r_now.max(1) as f64;
        let run = self.run.clone();
        let McOracle { engine, counts, cache, .. } = self;
        if !cache.admits(center) {
            // Full recomputes cover exactly the active window — a ranged
            // sweep when the physical pool extends past it.
            window_counts(engine.as_mut(), center, r_now, physical, counts);
            run.error()?;
            cache.stats.fulls += 1;
            write_probs(counts, r, cover);
        } else {
            let mut ctx = (engine, counts);
            let row = cache.serve(
                &mut ctx,
                center,
                r_now,
                |(engine, counts), row, lo| {
                    engine.counts_from_center_range(center, lo, r_now, counts);
                    run.error()?;
                    add_counts(&mut row.cover, counts);
                    Ok(())
                },
                |(engine, counts)| {
                    let mut cover = vec![0u32; counts.len()];
                    window_counts(engine.as_mut(), center, r_now, physical, &mut cover);
                    run.error()?;
                    Ok(CachedRow { covered: r_now, select: Vec::new(), cover })
                },
            )?;
            write_probs(&row.cover, r, cover);
        }
        select.copy_from_slice(cover);
        Ok(())
    }

    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> Result<f64, SamplingError> {
        let r_now = self.active;
        if r_now == 0 {
            return Ok(0.0);
        }
        let physical = self.engine.num_samples();
        let run = self.run.clone();
        let McOracle { engine, counts, cache, .. } = self;
        if !cache.admits(u) {
            let p = if r_now == physical {
                engine.pair_estimate(u, v)
            } else {
                engine.pair_count_range(u, v, 0, r_now) as f64 / r_now as f64
            };
            run.error()?;
            return Ok(p);
        }
        // Serve the pair from u's (cached) cover row: objective evaluation
        // asks one pair per node against a handful of centers, so the row
        // is computed once and every further pair is a lookup.
        let mut ctx = (engine, counts);
        let row = cache.serve(
            &mut ctx,
            u,
            r_now,
            |(engine, counts), row, lo| {
                engine.counts_from_center_range(u, lo, r_now, counts);
                run.error()?;
                add_counts(&mut row.cover, counts);
                Ok(())
            },
            |(engine, counts)| {
                let mut cover = vec![0u32; counts.len()];
                window_counts(engine.as_mut(), u, r_now, physical, &mut cover);
                run.error()?;
                Ok(CachedRow { covered: r_now, select: Vec::new(), cover })
            },
        )?;
        Ok(row.cover[v.index()] as f64 / r_now as f64)
    }

    /// Selection and cover coincide for unlimited probabilities.
    fn identical_rows(&self) -> bool {
        true
    }

    fn center_probs_batch(
        &mut self,
        centers: &[NodeId],
        select: &mut [f64],
        cover: &mut [f64],
    ) -> Result<(), SamplingError> {
        let n = self.engine.graph().num_nodes();
        let k = centers.len();
        assert_eq!(cover.len(), k * n, "batch cover buffer has wrong length");
        assert!(
            select.is_empty() || select.len() == cover.len(),
            "batch select buffer has wrong length"
        );
        let r_now = self.active;
        let physical = self.engine.num_samples();
        let r = r_now.max(1) as f64;
        let run = self.run.clone();
        let McOracle { engine, batch, cache, .. } = self;
        // Serve hits immediately; defer top-ups to grouped ranged sweeps
        // and misses to one batched full sweep over the active window.
        let mut missing: Vec<usize> = Vec::new();
        let mut topups: Vec<(usize, usize)> = Vec::new();
        if cache.enabled {
            for (j, &c) in centers.iter().enumerate() {
                match cache.classify(c, r_now) {
                    RowService::Hit => {
                        let row = &cache.rows[&c.0];
                        write_probs(&row.cover, r, &mut cover[j * n..(j + 1) * n]);
                    }
                    RowService::Topup { lo } => topups.push((j, lo)),
                    RowService::Miss => missing.push(j),
                }
            }
        } else {
            missing.extend(0..k);
        }
        // Top-up waves: rows cached at the same guess share their window
        // start, so one ranged multi-center sweep per group counts all the
        // new worlds (component sharing / multi-source BFS in the engine)
        // instead of one single-row ranged query per cached candidate.
        for g in plan_topups(topups, centers) {
            batch.resize(g.uniq.len() * n, 0);
            engine.counts_from_centers_range(&g.uniq, g.lo, r_now, &mut batch[..g.uniq.len() * n]);
            // Validate the sweep before merging this group — an
            // interrupted ranged query must never add torn counts onto
            // cached rows (groups already merged are complete, which is
            // fine: their rows simply cover the window).
            run.error()?;
            let mut merged = vec![false; g.uniq.len()];
            for &(j, slot) in &g.entries {
                let row = cache
                    .rows
                    .get_mut(&centers[j].0)
                    .unwrap_or_else(|| unreachable!("planned top-up row is cached"));
                if merged[slot] {
                    // A duplicate center: its shared row is already up to
                    // date, so this request is a plain hit.
                    cache.stats.hits += 1;
                } else {
                    add_counts(&mut row.cover, &batch[slot * n..(slot + 1) * n]);
                    row.covered = r_now;
                    cache.stats.topups += 1;
                    merged[slot] = true;
                }
                write_probs(&row.cover, r, &mut cover[j * n..(j + 1) * n]);
            }
        }
        if !missing.is_empty() {
            let miss_centers: Vec<NodeId> = missing.iter().map(|&j| centers[j]).collect();
            batch.resize(missing.len() * n, 0);
            window_counts_batch(
                engine.as_mut(),
                &miss_centers,
                r_now,
                physical,
                &mut batch[..missing.len() * n],
            );
            run.error()?;
            cache.stats.fulls += missing.len();
            for (bi, &j) in missing.iter().enumerate() {
                let row = &batch[bi * n..(bi + 1) * n];
                write_probs(row, r, &mut cover[j * n..(j + 1) * n]);
                if cache.admits(centers[j]) {
                    faults::hit(FaultSite::BudgetAdmission)?;
                    cache.insert(
                        centers[j],
                        CachedRow { covered: r_now, select: Vec::new(), cover: row.to_vec() },
                    );
                }
            }
        }
        // Identical-rows fast path: each row was written once into `cover`;
        // a non-empty select buffer gets one bulk copy.
        if !select.is_empty() {
            select.copy_from_slice(cover);
        }
        Ok(())
    }

    fn cache_stats(&self) -> RowCacheStats {
        self.cache.stats
    }

    fn engine_stats(&self) -> EngineStats {
        self.engine.engine_stats()
    }

    fn memory_stats(&self) -> MemoryStats {
        let mut stats = self.engine.memory_stats();
        stats.bytes_held += self.cache.bytes;
        stats
    }
}

/// Monte-Carlo oracle for **depth-limited** d-connection probabilities
/// (paper §3.4), backed by a depth-capable [`WorldEngine`] — per-world
/// bounded BFS on the scalar backend, mask-propagating multi-world BFS on
/// the bit-parallel backend.
///
/// `d_select` is the selection depth `d'` (paths counted when choosing a
/// center, Algorithm 4 line 5) and `d_cover` the cover depth `d` (paths
/// counted when removing covered nodes, line 8); `d_select ≤ d_cover`.
pub struct DepthMcOracle<'g> {
    engine: Box<dyn WorldEngine + 'g>,
    schedule: SampleSchedule,
    epsilon: f64,
    /// Active sample window: estimates integrate over `[0, active)`, a
    /// prefix of the physical pool (see the module docs).
    active: usize,
    d_select: u32,
    d_cover: u32,
    /// Scratch for single rows and ranged top-ups.
    count_select: Vec<u32>,
    count_cover: Vec<u32>,
    /// Scratch for batched rows (`k · n`, grown on demand).
    batch_select: Vec<u32>,
    batch_cover: Vec<u32>,
    cache: RowCache,
    /// Cooperative interruption state shared with the engine.
    run: RunState,
}

impl<'g> DepthMcOracle<'g> {
    /// Creates the oracle on the scalar backend ([`WorldPool`]) with
    /// selection depth `d_select` and cover depth `d_cover`.
    ///
    /// # Errors
    /// Returns [`SamplingError::InvalidDepths`] if `d_select > d_cover`.
    pub fn new(
        graph: &'g UncertainGraph,
        seed: u64,
        threads: usize,
        schedule: SampleSchedule,
        epsilon: f64,
        d_select: u32,
        d_cover: u32,
    ) -> Result<Self, SamplingError> {
        Self::with_engine(
            graph,
            seed,
            threads,
            schedule,
            epsilon,
            d_select,
            d_cover,
            EngineKind::Scalar,
        )
    }

    /// Creates the oracle on the backend selected by `kind`, at the
    /// default [`BlockWidth`].
    ///
    /// # Errors
    /// Returns [`SamplingError::InvalidDepths`] if `d_select > d_cover`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_engine(
        graph: &'g UncertainGraph,
        seed: u64,
        threads: usize,
        schedule: SampleSchedule,
        epsilon: f64,
        d_select: u32,
        d_cover: u32,
        kind: EngineKind,
    ) -> Result<Self, SamplingError> {
        Self::with_engine_width(
            graph,
            seed,
            threads,
            schedule,
            epsilon,
            d_select,
            d_cover,
            kind,
            BlockWidth::default(),
        )
    }

    /// Creates the oracle on the backend selected by `kind` with the
    /// bit-parallel block width selected by `width` (ignored by the scalar
    /// backend). Estimates are bit-identical at every width.
    ///
    /// # Errors
    /// Returns [`SamplingError::InvalidDepths`] if `d_select > d_cover`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_engine_width(
        graph: &'g UncertainGraph,
        seed: u64,
        threads: usize,
        schedule: SampleSchedule,
        epsilon: f64,
        d_select: u32,
        d_cover: u32,
        kind: EngineKind,
        width: BlockWidth,
    ) -> Result<Self, SamplingError> {
        let engine: Box<dyn WorldEngine + 'g> = match (kind, width) {
            (EngineKind::Scalar, _) => Box::new(WorldPool::new(graph, seed, threads)),
            (EngineKind::BitParallel, BlockWidth::W64) => {
                Box::new(BitParallelPool::<1>::new(graph, seed, threads))
            }
            (EngineKind::BitParallel, BlockWidth::W256) => {
                Box::new(BitParallelPool::<4>::new(graph, seed, threads))
            }
            (EngineKind::BitParallel, BlockWidth::W512) => {
                Box::new(BitParallelPool::<8>::new(graph, seed, threads))
            }
            (EngineKind::Adaptive, BlockWidth::W64) => {
                Box::new(BitParallelPool::<1>::new_adaptive(graph, seed, threads))
            }
            (EngineKind::Adaptive, BlockWidth::W256) => {
                Box::new(BitParallelPool::<4>::new_adaptive(graph, seed, threads))
            }
            (EngineKind::Adaptive, BlockWidth::W512) => {
                Box::new(BitParallelPool::<8>::new_adaptive(graph, seed, threads))
            }
        };
        Self::from_engine(engine, schedule, epsilon, d_select, d_cover)
    }

    /// Wraps an already-built depth-capable engine.
    ///
    /// # Errors
    /// Returns [`SamplingError::InvalidDepths`] if `d_select > d_cover`,
    /// or [`SamplingError::DepthIncapableEngine`] if a finite depth is
    /// requested from an engine that cannot answer finite-depth queries —
    /// caught here, at construction, rather than panicking at the first
    /// query deep inside a clustering run.
    pub fn from_engine(
        engine: Box<dyn WorldEngine + 'g>,
        schedule: SampleSchedule,
        epsilon: f64,
        d_select: u32,
        d_cover: u32,
    ) -> Result<Self, SamplingError> {
        if d_select > d_cover {
            return Err(SamplingError::InvalidDepths { d_select, d_cover });
        }
        if (d_select != DEPTH_UNLIMITED || d_cover != DEPTH_UNLIMITED)
            && !engine.supports_finite_depths()
        {
            return Err(SamplingError::DepthIncapableEngine);
        }
        let n = engine.graph().num_nodes();
        let active = engine.num_samples();
        Ok(DepthMcOracle {
            engine,
            schedule,
            epsilon,
            active,
            d_select,
            d_cover,
            count_select: vec![0; n],
            count_cover: vec![0; n],
            batch_select: Vec::new(),
            batch_cover: Vec::new(),
            cache: RowCache::new(true, n, if d_select == d_cover { 1 } else { 2 }),
            run: RunState::unlimited(),
        })
    }

    /// Enables or disables the per-center row cache (enabled by default;
    /// see [`McOracle::with_row_cache`]).
    pub fn with_row_cache(mut self, enabled: bool) -> Self {
        self.cache.enabled = enabled;
        if !enabled {
            self.cache.clear();
        }
        self
    }

    /// Attaches a shared [`MemoryBudget`] (see
    /// [`McOracle::with_memory_budget`]).
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.engine.set_memory_budget(budget.clone());
        self.cache.set_budget(budget);
        self
    }

    /// The configured `(d_select, d_cover)` depths.
    pub fn depths(&self) -> (u32, u32) {
        (self.d_select, self.d_cover)
    }

    /// Read access to the backing engine.
    pub fn engine(&self) -> &dyn WorldEngine {
        self.engine.as_ref()
    }
}

impl std::fmt::Debug for DepthMcOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DepthMcOracle")
            .field("samples", &self.engine.num_samples())
            .field("depths", &(self.d_select, self.d_cover))
            .field("epsilon", &self.epsilon)
            .finish_non_exhaustive()
    }
}

impl Oracle for DepthMcOracle<'_> {
    fn num_nodes(&self) -> usize {
        self.engine.graph().num_nodes()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn prepare(&mut self, q: f64) -> Result<(), SamplingError> {
        let r = self.schedule.samples_for(q, self.num_nodes());
        self.active = self.active.max(r);
        self.engine.ensure(self.active);
        if let Err(e) = self.run.error() {
            // Growth stopped early: clamp the window to what the pool
            // actually holds (see `McOracle::prepare`).
            self.active = self.active.min(self.engine.num_samples());
            return Err(e);
        }
        Ok(())
    }

    fn set_run_state(&mut self, run: RunState) {
        self.run = run.clone();
        self.engine.set_run_state(run);
    }

    fn begin_request(&mut self) {
        self.active = 0;
    }

    fn num_samples(&self) -> usize {
        self.active
    }

    fn pool_samples(&self) -> usize {
        self.engine.num_samples()
    }

    fn center_probs(
        &mut self,
        center: NodeId,
        select: &mut [f64],
        cover: &mut [f64],
    ) -> Result<(), SamplingError> {
        let r_now = self.active;
        let physical = self.engine.num_samples();
        let r = r_now.max(1) as f64;
        let identical = self.d_select == self.d_cover;
        let run = self.run.clone();
        let DepthMcOracle { engine, d_select, d_cover, count_select, count_cover, cache, .. } =
            self;
        let (ds, dc) = (*d_select, *d_cover);
        if !cache.admits(center) {
            window_depth_counts(
                engine.as_mut(),
                center,
                ds,
                dc,
                r_now,
                physical,
                count_select,
                count_cover,
            );
            run.error()?;
            cache.stats.fulls += 1;
            write_probs(count_cover, r, cover);
            if identical {
                select.copy_from_slice(cover);
            } else {
                write_probs(count_select, r, select);
            }
            return Ok(());
        }
        let mut ctx = (engine, count_select, count_cover);
        let row = cache.serve(
            &mut ctx,
            center,
            r_now,
            |(engine, count_select, count_cover), row, lo| {
                engine.counts_within_depths_range(
                    center,
                    ds,
                    dc,
                    lo,
                    r_now,
                    count_select,
                    count_cover,
                );
                run.error()?;
                add_counts(&mut row.cover, count_cover);
                if !identical {
                    add_counts(&mut row.select, count_select);
                }
                Ok(())
            },
            |(engine, count_select, count_cover)| {
                window_depth_counts(
                    engine.as_mut(),
                    center,
                    ds,
                    dc,
                    r_now,
                    physical,
                    count_select,
                    count_cover,
                );
                run.error()?;
                // Identical depths: one stored row serves both radii.
                let sel = if identical { Vec::new() } else { count_select.clone() };
                Ok(CachedRow { covered: r_now, select: sel, cover: count_cover.clone() })
            },
        )?;
        write_probs(&row.cover, r, cover);
        if identical {
            select.copy_from_slice(cover);
        } else {
            write_probs(&row.select, r, select);
        }
        Ok(())
    }

    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> Result<f64, SamplingError> {
        let r_now = self.active;
        if r_now == 0 {
            return Ok(0.0);
        }
        let physical = self.engine.num_samples();
        let identical = self.d_select == self.d_cover;
        let run = self.run.clone();
        let DepthMcOracle { engine, d_select, d_cover, count_select, count_cover, cache, .. } =
            self;
        let (ds, dc) = (*d_select, *d_cover);
        if !cache.admits(u) {
            let p = if r_now == physical {
                engine.pair_estimate_within(u, v, dc)
            } else {
                engine.pair_count_within_range(u, v, dc, 0, r_now) as f64 / r_now as f64
            };
            run.error()?;
            return Ok(p);
        }
        // Serve the pair from u's cached cover row (rows are stored at the
        // oracle's (d_select, d_cover); pair_prob reads the cover radius).
        let mut ctx = (engine, count_select, count_cover);
        let row = cache.serve(
            &mut ctx,
            u,
            r_now,
            |(engine, count_select, count_cover), row, lo| {
                engine.counts_within_depths_range(u, ds, dc, lo, r_now, count_select, count_cover);
                run.error()?;
                add_counts(&mut row.cover, count_cover);
                if !identical {
                    add_counts(&mut row.select, count_select);
                }
                Ok(())
            },
            |(engine, count_select, count_cover)| {
                window_depth_counts(
                    engine.as_mut(),
                    u,
                    ds,
                    dc,
                    r_now,
                    physical,
                    count_select,
                    count_cover,
                );
                run.error()?;
                let sel = if identical { Vec::new() } else { count_select.clone() };
                Ok(CachedRow { covered: r_now, select: sel, cover: count_cover.clone() })
            },
        )?;
        Ok(row.cover[v.index()] as f64 / r_now as f64)
    }

    /// Selection and cover rows coincide exactly when the two depths do.
    fn identical_rows(&self) -> bool {
        self.d_select == self.d_cover
    }

    fn center_probs_batch(
        &mut self,
        centers: &[NodeId],
        select: &mut [f64],
        cover: &mut [f64],
    ) -> Result<(), SamplingError> {
        let n = self.engine.graph().num_nodes();
        let k = centers.len();
        assert_eq!(cover.len(), k * n, "batch cover buffer has wrong length");
        let identical = self.d_select == self.d_cover;
        assert!(
            select.len() == cover.len() || (select.is_empty() && identical),
            "batch select buffer has wrong length (empty requires identical rows)"
        );
        let r_now = self.active;
        let physical = self.engine.num_samples();
        let r = r_now.max(1) as f64;
        let run = self.run.clone();
        let DepthMcOracle { engine, d_select, d_cover, batch_select, batch_cover, cache, .. } =
            self;
        let (ds, dc) = (*d_select, *d_cover);
        let mut missing: Vec<usize> = Vec::new();
        let mut topups: Vec<(usize, usize)> = Vec::new();
        if cache.enabled {
            for (j, &c) in centers.iter().enumerate() {
                match cache.classify(c, r_now) {
                    RowService::Hit => {
                        let row = &cache.rows[&c.0];
                        write_probs(&row.cover, r, &mut cover[j * n..(j + 1) * n]);
                        if !select.is_empty() && !identical {
                            write_probs(&row.select, r, &mut select[j * n..(j + 1) * n]);
                        }
                    }
                    RowService::Topup { lo } => topups.push((j, lo)),
                    RowService::Miss => missing.push(j),
                }
            }
        } else {
            missing.extend(0..k);
        }
        // Grouped ranged top-ups: one multi-source sweep of the new worlds
        // per distinct window start (see `McOracle::center_probs_batch`).
        for g in plan_topups(topups, centers) {
            batch_select.resize(g.uniq.len() * n, 0);
            batch_cover.resize(g.uniq.len() * n, 0);
            engine.counts_within_depths_batch_range(
                &g.uniq,
                ds,
                dc,
                g.lo,
                r_now,
                &mut batch_select[..g.uniq.len() * n],
                &mut batch_cover[..g.uniq.len() * n],
            );
            // Validate before merging this group (see
            // `McOracle::center_probs_batch`).
            run.error()?;
            let mut merged = vec![false; g.uniq.len()];
            for &(j, slot) in &g.entries {
                let row = cache
                    .rows
                    .get_mut(&centers[j].0)
                    .unwrap_or_else(|| unreachable!("planned top-up row is cached"));
                if merged[slot] {
                    cache.stats.hits += 1;
                } else {
                    add_counts(&mut row.cover, &batch_cover[slot * n..(slot + 1) * n]);
                    if !identical {
                        add_counts(&mut row.select, &batch_select[slot * n..(slot + 1) * n]);
                    }
                    row.covered = r_now;
                    cache.stats.topups += 1;
                    merged[slot] = true;
                }
                write_probs(&row.cover, r, &mut cover[j * n..(j + 1) * n]);
                if !select.is_empty() && !identical {
                    write_probs(&row.select, r, &mut select[j * n..(j + 1) * n]);
                }
            }
        }
        if !missing.is_empty() {
            let miss_centers: Vec<NodeId> = missing.iter().map(|&j| centers[j]).collect();
            batch_select.resize(missing.len() * n, 0);
            batch_cover.resize(missing.len() * n, 0);
            window_depth_counts_batch(
                engine.as_mut(),
                &miss_centers,
                ds,
                dc,
                r_now,
                physical,
                &mut batch_select[..missing.len() * n],
                &mut batch_cover[..missing.len() * n],
            );
            run.error()?;
            cache.stats.fulls += missing.len();
            for (bi, &j) in missing.iter().enumerate() {
                let row_sel = &batch_select[bi * n..(bi + 1) * n];
                let row_cov = &batch_cover[bi * n..(bi + 1) * n];
                write_probs(row_cov, r, &mut cover[j * n..(j + 1) * n]);
                if !select.is_empty() && !identical {
                    write_probs(row_sel, r, &mut select[j * n..(j + 1) * n]);
                }
                if cache.admits(centers[j]) {
                    faults::hit(FaultSite::BudgetAdmission)?;
                    let sel = if identical { Vec::new() } else { row_sel.to_vec() };
                    cache.insert(
                        centers[j],
                        CachedRow { covered: r_now, select: sel, cover: row_cov.to_vec() },
                    );
                }
            }
        }
        if !select.is_empty() && identical {
            select.copy_from_slice(cover);
        }
        Ok(())
    }

    fn cache_stats(&self) -> RowCacheStats {
        self.cache.stats
    }

    fn engine_stats(&self) -> EngineStats {
        self.engine.engine_stats()
    }

    fn memory_stats(&self) -> MemoryStats {
        let mut stats = self.engine.memory_stats();
        stats.bytes_held += self.cache.bytes;
        stats
    }
}

/// Adapter exposing an [`ExactOracle`] through the [`Oracle`] trait
/// (selection and cover probabilities coincide; build the inner oracle
/// with [`ExactOracle::with_depth`] for exact depth-limited variants).
pub struct ExactOracleAdapter {
    inner: ExactOracle,
}

impl ExactOracleAdapter {
    /// Wraps an exact oracle.
    pub fn new(inner: ExactOracle) -> Self {
        ExactOracleAdapter { inner }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &ExactOracle {
        &self.inner
    }
}

impl Oracle for ExactOracleAdapter {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn prepare(&mut self, _q: f64) -> Result<(), SamplingError> {
        Ok(())
    }

    fn num_samples(&self) -> usize {
        1
    }

    fn center_probs(
        &mut self,
        center: NodeId,
        select: &mut [f64],
        cover: &mut [f64],
    ) -> Result<(), SamplingError> {
        let row = self.inner.probs_from(center);
        select.copy_from_slice(row);
        cover.copy_from_slice(row);
        Ok(())
    }

    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> Result<f64, SamplingError> {
        Ok(self.inner.pair_probability(u, v))
    }

    /// Exact oracles have a single radius.
    fn identical_rows(&self) -> bool {
        true
    }

    fn center_probs_batch(
        &mut self,
        centers: &[NodeId],
        select: &mut [f64],
        cover: &mut [f64],
    ) -> Result<(), SamplingError> {
        let n = self.num_nodes();
        assert_eq!(cover.len(), centers.len() * n, "batch cover buffer has wrong length");
        assert!(
            select.is_empty() || select.len() == cover.len(),
            "batch select buffer has wrong length"
        );
        for (j, &c) in centers.iter().enumerate() {
            cover[j * n..(j + 1) * n].copy_from_slice(self.inner.probs_from(c));
        }
        if !select.is_empty() {
            select.copy_from_slice(cover);
        }
        Ok(())
    }
}

/// Internal check that the unlimited sentinel is what engines expect.
const _: () = assert!(DEPTH_UNLIMITED == u32::MAX);

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn chain(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn mc_oracle_prepare_grows_pool() {
        let g = chain(6, 0.5);
        let mut o = McOracle::new(&g, 1, 1, SampleSchedule::practical(), 0.1);
        assert_eq!(o.num_samples(), 0);
        o.prepare(1.0).unwrap();
        assert_eq!(o.num_samples(), 50);
        o.prepare(0.1).unwrap();
        assert_eq!(o.num_samples(), 500);
        o.prepare(0.5).unwrap(); // never shrinks
        assert_eq!(o.num_samples(), 500);
    }

    #[test]
    fn mc_oracle_center_probs_match_exact_roughly() {
        let g = chain(4, 0.8);
        let exact = ExactOracle::new(&g).unwrap();
        let mut o = McOracle::new(&g, 42, 1, SampleSchedule::Fixed(8000), 0.1);
        o.prepare(0.1).unwrap();
        let mut sel = vec![0.0; 4];
        let mut cov = vec![0.0; 4];
        o.center_probs(NodeId(0), &mut sel, &mut cov).unwrap();
        assert_eq!(sel, cov, "unlimited oracle: select == cover");
        for v in 0..4u32 {
            let want = exact.pair_probability(NodeId(0), NodeId(v));
            assert!(
                (cov[v as usize] - want).abs() < 0.03,
                "Pr(0~{v}) est {} vs exact {want}",
                cov[v as usize]
            );
        }
    }

    #[test]
    fn mc_oracle_backends_agree_bit_for_bit() {
        let g = chain(9, 0.6);
        let mut scalar =
            McOracle::with_engine(&g, 7, 1, SampleSchedule::Fixed(90), 0.1, EngineKind::Scalar);
        let mut bit = McOracle::with_engine(
            &g,
            7,
            1,
            SampleSchedule::Fixed(90),
            0.1,
            EngineKind::BitParallel,
        );
        scalar.prepare(0.5).unwrap();
        bit.prepare(0.5).unwrap();
        assert_eq!(scalar.num_samples(), bit.num_samples());
        let (mut s1, mut c1) = (vec![0.0; 9], vec![0.0; 9]);
        let (mut s2, mut c2) = (vec![0.0; 9], vec![0.0; 9]);
        for c in 0..9u32 {
            scalar.center_probs(NodeId(c), &mut s1, &mut c1).unwrap();
            bit.center_probs(NodeId(c), &mut s2, &mut c2).unwrap();
            assert_eq!(s1, s2, "select rows differ at center {c}");
            assert_eq!(c1, c2, "cover rows differ at center {c}");
        }
        for v in 1..9u32 {
            assert_eq!(
                scalar.pair_prob(NodeId(0), NodeId(v)).unwrap(),
                bit.pair_prob(NodeId(0), NodeId(v)).unwrap()
            );
        }
    }

    #[test]
    fn depth_oracle_select_below_cover() {
        let g = chain(5, 1.0);
        let mut o = DepthMcOracle::new(&g, 1, 1, SampleSchedule::Fixed(10), 0.1, 1, 3).unwrap();
        o.prepare(1.0).unwrap();
        let mut sel = vec![0.0; 5];
        let mut cov = vec![0.0; 5];
        o.center_probs(NodeId(0), &mut sel, &mut cov).unwrap();
        assert_eq!(sel, vec![1.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(cov, vec![1.0, 1.0, 1.0, 1.0, 0.0]);
        assert_eq!(o.depths(), (1, 3));
    }

    #[test]
    fn depth_oracle_pair_prob_uses_cover_depth() {
        let g = chain(4, 1.0);
        let mut o = DepthMcOracle::new(&g, 1, 1, SampleSchedule::Fixed(5), 0.1, 1, 2).unwrap();
        o.prepare(1.0).unwrap();
        assert_eq!(o.pair_prob(NodeId(0), NodeId(2)).unwrap(), 1.0);
        assert_eq!(o.pair_prob(NodeId(0), NodeId(3)).unwrap(), 0.0);
    }

    #[test]
    fn depth_oracle_backends_agree_bit_for_bit() {
        let g = chain(8, 0.7);
        let schedule = SampleSchedule::Fixed(70);
        let mut scalar =
            DepthMcOracle::with_engine(&g, 3, 1, schedule, 0.1, 1, 3, EngineKind::Scalar).unwrap();
        let mut bit =
            DepthMcOracle::with_engine(&g, 3, 1, schedule, 0.1, 1, 3, EngineKind::BitParallel)
                .unwrap();
        scalar.prepare(0.5).unwrap();
        bit.prepare(0.5).unwrap();
        let (mut s1, mut c1) = (vec![0.0; 8], vec![0.0; 8]);
        let (mut s2, mut c2) = (vec![0.0; 8], vec![0.0; 8]);
        for c in 0..8u32 {
            scalar.center_probs(NodeId(c), &mut s1, &mut c1).unwrap();
            bit.center_probs(NodeId(c), &mut s2, &mut c2).unwrap();
            assert_eq!(s1, s2, "select rows differ at center {c}");
            assert_eq!(c1, c2, "cover rows differ at center {c}");
        }
    }

    #[test]
    fn exact_adapter_is_exact() {
        let g = chain(3, 0.5);
        let mut o = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        assert_eq!(o.epsilon(), 0.0);
        o.prepare(1e-9).unwrap(); // no-op
        let mut sel = vec![0.0; 3];
        let mut cov = vec![0.0; 3];
        o.center_probs(NodeId(0), &mut sel, &mut cov).unwrap();
        assert!((cov[1] - 0.5).abs() < 1e-12);
        assert!((cov[2] - 0.25).abs() < 1e-12);
        assert_eq!(sel, cov);
        assert!((o.pair_prob(NodeId(0), NodeId(2)).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn row_cache_serves_identical_estimates_across_growth() {
        let g = chain(8, 0.6);
        for kind in [EngineKind::Scalar, EngineKind::BitParallel] {
            let mut cached =
                McOracle::with_engine(&g, 11, 1, SampleSchedule::practical(), 0.1, kind);
            let mut plain =
                McOracle::with_engine(&g, 11, 1, SampleSchedule::practical(), 0.1, kind)
                    .with_row_cache(false);
            let (mut s1, mut c1) = (vec![0.0; 8], vec![0.0; 8]);
            let (mut s2, mut c2) = (vec![0.0; 8], vec![0.0; 8]);
            // Interleave growth and queries so hits, top-ups, and full
            // recomputes all occur.
            for q in [1.0, 1.0, 0.5, 0.2, 0.2, 0.05] {
                cached.prepare(q).unwrap();
                plain.prepare(q).unwrap();
                for c in 0..8u32 {
                    cached.center_probs(NodeId(c), &mut s1, &mut c1).unwrap();
                    plain.center_probs(NodeId(c), &mut s2, &mut c2).unwrap();
                    assert_eq!(c1, c2, "{kind:?} cover rows differ at center {c}, q {q}");
                    assert_eq!(s1, s2, "{kind:?} select rows differ at center {c}, q {q}");
                }
            }
            let stats = cached.cache_stats();
            assert_eq!(stats.fulls, 8, "{kind:?}: first pass computes each row once");
            assert!(stats.hits > 0, "{kind:?}: repeated thresholds must hit");
            assert!(stats.topups > 0, "{kind:?}: growth must top up, not recompute");
            assert_eq!(stats.rows_served(), 6 * 8);
            let plain_stats = plain.cache_stats();
            assert_eq!((plain_stats.hits, plain_stats.topups), (0, 0));
            assert_eq!(plain_stats.fulls, 6 * 8);
        }
    }

    #[test]
    fn batched_probs_match_sequential_and_use_cache() {
        let g = chain(9, 0.5);
        let mut o = McOracle::new(&g, 3, 1, SampleSchedule::practical(), 0.1);
        o.prepare(0.5).unwrap();
        let centers: Vec<NodeId> = [2u32, 7, 2, 0].iter().map(|&c| NodeId(c)).collect();
        let n = 9;
        let mut want = vec![0.0; centers.len() * n];
        {
            let mut scratch = vec![0.0; n];
            let mut fresh = McOracle::new(&g, 3, 1, SampleSchedule::practical(), 0.1);
            fresh.prepare(0.5).unwrap();
            for (j, &c) in centers.iter().enumerate() {
                fresh.center_probs(c, &mut scratch, &mut want[j * n..(j + 1) * n]).unwrap();
            }
        }
        // Empty select buffer: identical-rows fast path.
        let mut cov = vec![0.0; centers.len() * n];
        o.center_probs_batch(&centers, &mut [], &mut cov).unwrap();
        assert_eq!(cov, want);
        // Duplicate centers within one batch are both computed (misses are
        // deferred to a single engine sweep, so the second occurrence
        // cannot see the first's row yet) — correct, just not deduped.
        assert_eq!(o.cache_stats().fulls, 4);
        assert_eq!(o.cache_stats().hits, 0);
        // Full select buffer agrees too.
        let mut sel = vec![0.0; centers.len() * n];
        cov.fill(0.0);
        o.center_probs_batch(&centers, &mut sel, &mut cov).unwrap();
        assert_eq!(cov, want);
        assert_eq!(sel, want);
    }

    #[test]
    fn depth_oracle_cache_identical_across_growth() {
        let g = chain(9, 0.7);
        let schedule = SampleSchedule::practical();
        for kind in [EngineKind::Scalar, EngineKind::BitParallel] {
            // Distinct depths: two stored rows per center.
            let mut cached =
                DepthMcOracle::with_engine(&g, 5, 1, schedule, 0.1, 1, 3, kind).unwrap();
            let mut plain = DepthMcOracle::with_engine(&g, 5, 1, schedule, 0.1, 1, 3, kind)
                .unwrap()
                .with_row_cache(false);
            assert!(!cached.identical_rows());
            let (mut s1, mut c1) = (vec![0.0; 9], vec![0.0; 9]);
            let (mut s2, mut c2) = (vec![0.0; 9], vec![0.0; 9]);
            for q in [1.0, 0.4, 0.4, 0.1] {
                cached.prepare(q).unwrap();
                plain.prepare(q).unwrap();
                for c in 0..9u32 {
                    cached.center_probs(NodeId(c), &mut s1, &mut c1).unwrap();
                    plain.center_probs(NodeId(c), &mut s2, &mut c2).unwrap();
                    assert_eq!(s1, s2, "{kind:?} select rows differ at center {c}, q {q}");
                    assert_eq!(c1, c2, "{kind:?} cover rows differ at center {c}, q {q}");
                }
            }
            assert!(cached.cache_stats().topups > 0);
            // Batched depth rows agree with the sequential ones.
            let centers: Vec<NodeId> = (0..9).map(NodeId).collect();
            let (mut bs, mut bc) = (vec![0.0; 9 * 9], vec![0.0; 9 * 9]);
            cached.center_probs_batch(&centers, &mut bs, &mut bc).unwrap();
            for (j, &c) in centers.iter().enumerate() {
                plain.center_probs(c, &mut s2, &mut c2).unwrap();
                assert_eq!(&bs[j * 9..(j + 1) * 9], &s2[..], "batch select row {c}");
                assert_eq!(&bc[j * 9..(j + 1) * 9], &c2[..], "batch cover row {c}");
            }
        }
    }

    #[test]
    fn row_cache_budget_stops_admitting_new_centers() {
        // Derived cap: 1 GiB budget over n·rows_per_center entries.
        let c = RowCache::new(true, 1 << 20, 2);
        assert_eq!(c.max_rows, (1 << 28) / (1 << 21));
        // Once at capacity, known centers still go through the cache but
        // new ones are computed without admission.
        let mut c = RowCache::new(true, 4, 1);
        c.max_rows = 1;
        assert!(c.admits(NodeId(0)));
        c.rows.insert(0, CachedRow { covered: 1, select: Vec::new(), cover: vec![0; 4] });
        assert!(c.admits(NodeId(0)), "cached center keeps serving");
        assert!(!c.admits(NodeId(1)), "budget exhausted: no new admissions");
        let disabled = RowCache::new(false, 4, 1);
        assert!(!disabled.admits(NodeId(0)));
    }

    #[test]
    fn memory_budget_gates_cache_admission_and_charges_ledger() {
        let g = chain(8, 0.6);
        // A budget too small even for one shard: the cache is starved (no
        // ledger headroom), yet estimates match the unbounded oracle —
        // shards evict and regenerate bit-identically.
        let tiny = MemoryBudget::bounded(64);
        let mut starved = McOracle::new(&g, 11, 1, SampleSchedule::Fixed(40), 0.1)
            .with_memory_budget(tiny.clone());
        starved.prepare(0.5).unwrap();
        let mut plain = McOracle::new(&g, 11, 1, SampleSchedule::Fixed(40), 0.1);
        plain.prepare(0.5).unwrap();
        let (mut s, mut c) = (vec![0.0; 8], vec![0.0; 8]);
        let (mut s2, mut c2) = (vec![0.0; 8], vec![0.0; 8]);
        for u in 0..8u32 {
            starved.center_probs(NodeId(u), &mut s, &mut c).unwrap();
            plain.center_probs(NodeId(u), &mut s2, &mut c2).unwrap();
            assert_eq!(c, c2, "budgeted estimates differ at center {u}");
        }
        assert_eq!(starved.cache.rows.len(), 0, "no headroom: nothing admitted");
        assert!(starved.memory_stats().shards_evicted > 0, "tiny budget must evict");

        // A roomy budget admits rows and charges them to the shared
        // ledger; dropping the oracle releases everything.
        let roomy = MemoryBudget::bounded(1 << 20);
        let mut o = McOracle::new(&g, 11, 1, SampleSchedule::Fixed(40), 0.1)
            .with_memory_budget(roomy.clone());
        o.prepare(0.5).unwrap();
        o.center_probs(NodeId(0), &mut s, &mut c).unwrap();
        o.center_probs(NodeId(1), &mut s, &mut c).unwrap();
        assert_eq!(o.cache.rows.len(), 2);
        assert_eq!(o.cache.bytes, 2 * 32, "8-node u32 rows are 32 bytes each");
        assert!(o.memory_stats().bytes_held >= 64);
        assert!(roomy.bytes_held() >= 64);
        drop(o);
        assert_eq!(roomy.bytes_held(), 0, "dropping the oracle releases everything");

        // set_budget tightens the admission cap to half the limit.
        let mut cache = RowCache::new(true, 8, 1);
        cache.set_budget(MemoryBudget::bounded(80)); // (80/2)/32 = 1 row
        assert_eq!(cache.max_rows, 1);
    }

    #[test]
    fn equal_depths_advertise_identical_rows() {
        let g = chain(5, 1.0);
        let mut o = DepthMcOracle::new(&g, 1, 1, SampleSchedule::Fixed(10), 0.1, 2, 2).unwrap();
        assert!(o.identical_rows());
        o.prepare(1.0).unwrap();
        let mut cov = vec![0.0; 10];
        o.center_probs_batch(&[NodeId(0), NodeId(2)], &mut [], &mut cov).unwrap();
        assert_eq!(cov[..5], [1.0, 1.0, 1.0, 0.0, 0.0]);
        assert_eq!(cov[5..], [1.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn begin_request_makes_warm_oracle_identical_to_fresh() {
        // A warm oracle whose pool grew to 500 worlds in a previous request
        // must, after begin_request, serve a small request over exactly the
        // 50-world prefix a fresh oracle would use — including rows that
        // were cached at larger coverage (rebuilt over the window).
        let g = chain(9, 0.6);
        for kind in [EngineKind::Scalar, EngineKind::BitParallel] {
            let mut warm = McOracle::with_engine(&g, 7, 1, SampleSchedule::practical(), 0.1, kind);
            warm.prepare(0.1).unwrap(); // grows active + physical to 500
            let mut scratch = vec![0.0; 9];
            let mut row = vec![0.0; 9];
            for c in 0..9u32 {
                warm.center_probs(NodeId(c), &mut scratch, &mut row).unwrap();
            }
            assert_eq!(warm.num_samples(), 500);

            warm.begin_request();
            assert_eq!(warm.num_samples(), 0);
            warm.prepare(1.0).unwrap(); // active 50, physical stays 500
            assert_eq!(warm.num_samples(), 50);
            assert_eq!(warm.pool_samples(), 500);

            let mut fresh = McOracle::with_engine(&g, 7, 1, SampleSchedule::practical(), 0.1, kind);
            fresh.prepare(1.0).unwrap();
            let (mut s1, mut c1) = (vec![0.0; 9], vec![0.0; 9]);
            let (mut s2, mut c2) = (vec![0.0; 9], vec![0.0; 9]);
            for c in 0..9u32 {
                warm.center_probs(NodeId(c), &mut s1, &mut c1).unwrap();
                fresh.center_probs(NodeId(c), &mut s2, &mut c2).unwrap();
                assert_eq!(c1, c2, "{kind:?}: warm row differs from fresh at center {c}");
                assert_eq!(s1, s2);
                assert_eq!(
                    warm.pair_prob(NodeId(0), NodeId(c)).unwrap(),
                    fresh.pair_prob(NodeId(0), NodeId(c)).unwrap(),
                    "{kind:?}: warm pair_prob differs at {c}"
                );
            }
            // Growing the window again inside the second request tops the
            // (rebuilt) rows up incrementally and stays fresh-identical.
            warm.prepare(0.2).unwrap();
            fresh.prepare(0.2).unwrap();
            for c in 0..9u32 {
                warm.center_probs(NodeId(c), &mut s1, &mut c1).unwrap();
                fresh.center_probs(NodeId(c), &mut s2, &mut c2).unwrap();
                assert_eq!(c1, c2, "{kind:?}: post-growth row differs at center {c}");
            }
        }
    }

    #[test]
    fn begin_request_depth_oracle_identical_to_fresh() {
        let g = chain(8, 0.7);
        let schedule = SampleSchedule::practical();
        for kind in [EngineKind::Scalar, EngineKind::BitParallel] {
            let mut warm = DepthMcOracle::with_engine(&g, 3, 1, schedule, 0.1, 1, 3, kind).unwrap();
            warm.prepare(0.1).unwrap();
            let (mut s, mut c) = (vec![0.0; 8], vec![0.0; 8]);
            for u in 0..8u32 {
                warm.center_probs(NodeId(u), &mut s, &mut c).unwrap();
            }
            warm.begin_request();
            warm.prepare(1.0).unwrap();
            let mut fresh =
                DepthMcOracle::with_engine(&g, 3, 1, schedule, 0.1, 1, 3, kind).unwrap();
            fresh.prepare(1.0).unwrap();
            let (mut s2, mut c2) = (vec![0.0; 8], vec![0.0; 8]);
            for u in 0..8u32 {
                warm.center_probs(NodeId(u), &mut s, &mut c).unwrap();
                fresh.center_probs(NodeId(u), &mut s2, &mut c2).unwrap();
                assert_eq!(s, s2, "{kind:?}: warm depth select row differs at {u}");
                assert_eq!(c, c2, "{kind:?}: warm depth cover row differs at {u}");
                assert_eq!(
                    warm.pair_prob(NodeId(0), NodeId(u)).unwrap(),
                    fresh.pair_prob(NodeId(0), NodeId(u)).unwrap()
                );
            }
        }
    }

    #[test]
    fn batched_topups_are_grouped_and_deduplicated() {
        let g = chain(9, 0.5);
        let mut o = McOracle::new(&g, 3, 1, SampleSchedule::practical(), 0.1);
        o.prepare(1.0).unwrap(); // 50 samples
        let centers: Vec<NodeId> = (0..6).map(NodeId).collect();
        let n = 9;
        let mut cov = vec![0.0; centers.len() * n];
        o.center_probs_batch(&centers, &mut [], &mut cov).unwrap();
        assert_eq!(o.cache_stats().fulls, 6);
        o.prepare(0.5).unwrap(); // grow to 100: all six rows now need the same window
                                 // Duplicate center 2 in the batch: one shared ranged row, the
                                 // second occurrence served as a hit.
        let batch: Vec<NodeId> = [0u32, 2, 2, 5].iter().map(|&c| NodeId(c)).collect();
        let mut cov2 = vec![0.0; batch.len() * n];
        o.center_probs_batch(&batch, &mut [], &mut cov2).unwrap();
        let stats = o.cache_stats();
        assert_eq!(stats.topups, 3, "three distinct rows topped up, grouped by window start");
        assert_eq!(stats.hits, 1, "duplicate center served from the freshly topped row");
        assert_eq!(stats.fulls, 6, "no recomputes");
        // Values equal an uncached oracle's.
        let mut plain =
            McOracle::new(&g, 3, 1, SampleSchedule::practical(), 0.1).with_row_cache(false);
        plain.prepare(1.0).unwrap();
        plain.prepare(0.5).unwrap();
        let mut want = vec![0.0; batch.len() * n];
        plain.center_probs_batch(&batch, &mut [], &mut want).unwrap();
        assert_eq!(cov2, want);
        // Both rows of the duplicate agree.
        assert_eq!(cov2[n..2 * n], cov2[2 * n..3 * n]);
    }

    #[test]
    fn depth_oracle_rejects_bad_depths() {
        let g = chain(3, 0.5);
        let err = DepthMcOracle::new(&g, 1, 1, SampleSchedule::Fixed(5), 0.1, 3, 2).unwrap_err();
        assert_eq!(err, SamplingError::InvalidDepths { d_select: 3, d_cover: 2 });
    }

    #[test]
    fn depth_oracle_rejects_depth_incapable_engine() {
        use crate::pool::ComponentPool;
        let g = chain(3, 0.5);
        let engine = Box::new(ComponentPool::new(&g, 1, 1));
        let err = DepthMcOracle::from_engine(engine, SampleSchedule::Fixed(5), 0.1, 1, 2)
            .expect_err("component pool cannot back a finite-depth oracle");
        assert_eq!(err, SamplingError::DepthIncapableEngine);
    }
}
