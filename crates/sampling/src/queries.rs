//! Reliability query primitives on uncertain graphs.
//!
//! The clustering paper builds on a line of work about querying uncertain
//! graphs by *reliability*: k-nearest-neighbor queries under probabilistic
//! distance (Potamias, Bonchi, Gionis, Kollios — VLDB 2010) and the
//! most-reliable-source problem of classical network reliability (§1.1 of
//! the paper). These primitives fall out of the same Monte-Carlo machinery
//! the clustering algorithms use, so they are provided here as first-class
//! queries — generic over the [`WorldEngine`] seam, so they run unchanged
//! on the scalar pools and on the bit-parallel block pool.

use ugraph_graph::NodeId;

use crate::engine::WorldEngine;

/// Ranks nonzero counts, excluding the source, by decreasing estimate.
fn rank_counts(counts: &[u32], source: NodeId, k: usize, r: usize) -> Vec<(NodeId, f64)> {
    let mut scored: Vec<(NodeId, f64)> = counts
        .iter()
        .enumerate()
        .filter(|&(u, &c)| u != source.index() && c > 0)
        .map(|(u, &c)| (NodeId::from_index(u), c as f64 / r as f64))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

/// The `k` nodes most reliably connected to `source` (excluding the source
/// itself), sorted by decreasing estimated connection probability; ties
/// break toward smaller node ids. Nodes with estimate 0 are never returned,
/// so fewer than `k` results are possible.
///
/// This is the reliability variant of the k-NN query of Potamias et al.,
/// using majority semantics over the sample pool.
///
/// # Panics
/// Panics if the engine's pool is empty.
pub fn reliability_knn<E: WorldEngine + ?Sized>(
    engine: &mut E,
    source: NodeId,
    k: usize,
) -> Vec<(NodeId, f64)> {
    let n = engine.graph().num_nodes();
    let r = engine.num_samples();
    assert!(r > 0, "sample pool is empty");
    let mut counts = vec![0u32; n];
    engine.counts_from_center(source, &mut counts);
    rank_counts(&counts, source, k, r)
}

/// Depth-limited variant of [`reliability_knn`]: only paths of length at
/// most `depth` count (paper §3.4 semantics). Requires a depth-capable
/// engine ([`crate::WorldPool`] or [`crate::BitParallelPool`]).
///
/// # Panics
/// Panics if the engine's pool is empty or cannot answer finite depths.
pub fn reliability_knn_within<E: WorldEngine + ?Sized>(
    engine: &mut E,
    source: NodeId,
    k: usize,
    depth: u32,
) -> Vec<(NodeId, f64)> {
    let n = engine.graph().num_nodes();
    let r = engine.num_samples();
    assert!(r > 0, "sample pool is empty");
    let mut sel = vec![0u32; n];
    let mut cov = vec![0u32; n];
    engine.counts_within_depths(source, depth, depth, &mut sel, &mut cov);
    rank_counts(&cov, source, k, r)
}

/// Per-node estimated connection probability of each node to its assigned
/// center: `probs[u] = count(centers[cluster_of(u)], u) / num_samples()`,
/// and `0.0` for nodes with no assignment (`cluster_of(u) == None`).
///
/// This is the shared measurement kernel behind `p_min`/`p_avg` quality
/// estimation (`ugraph-metrics`) and session evaluation
/// (`ugraph-cluster`): center rows are fetched through the engine's
/// batched multi-center queries in `SOURCE_BATCH`-sized groups (one pool
/// sweep per group, bounding the count buffer at `SOURCE_BATCH · n`
/// integers), unlimited when `depth` is `None`, at the given hop limit
/// otherwise.
///
/// # Panics
/// Panics if the engine's pool is empty, or on a finite `depth` with a
/// depth-incapable engine.
pub fn assignment_probs<E: WorldEngine + ?Sized>(
    engine: &mut E,
    centers: &[NodeId],
    cluster_of: impl Fn(usize) -> Option<usize>,
    depth: Option<u32>,
) -> Vec<f64> {
    let n = engine.graph().num_nodes();
    let r = engine.num_samples();
    assert!(r > 0, "sample pool is empty");
    let r = r as f64;
    let rows = SOURCE_BATCH.min(centers.len().max(1)) * n;
    let mut cov = vec![0u32; rows];
    let mut sel = if depth.is_some() { vec![0u32; rows] } else { Vec::new() };
    let mut probs = vec![0.0f64; n];
    for (chunk_idx, chunk) in centers.chunks(SOURCE_BATCH).enumerate() {
        match depth {
            None => engine.counts_from_centers(chunk, &mut cov[..chunk.len() * n]),
            Some(d) => engine.counts_within_depths_batch(
                chunk,
                d,
                d,
                &mut sel[..chunk.len() * n],
                &mut cov[..chunk.len() * n],
            ),
        }
        for (u, p) in probs.iter_mut().enumerate() {
            if let Some(i) = cluster_of(u) {
                if let Some(j) =
                    i.checked_sub(chunk_idx * SOURCE_BATCH).filter(|&j| j < chunk.len())
                {
                    *p = cov[j * n + u] as f64 / r;
                }
            }
        }
    }
    probs
}

/// Folds per-node assignment probabilities into the paper's
/// `(p_min, p_avg)` pair (Eqs. 1-2): `p_min` is the minimum over covered
/// nodes (`1.0` when nothing is covered) and `p_avg` averages over **all**
/// nodes with uncovered nodes contributing 0 (`0.0` for empty inputs).
/// The single reduction shared by `ugraph-metrics`' quality functions and
/// `ugraph-cluster`'s session evaluation, so the outlier convention
/// cannot drift between them.
pub fn quality_from_probs(probs: &[f64], covered: impl Fn(usize) -> bool) -> (f64, f64) {
    let n = probs.len();
    let mut p_min = 1.0f64;
    let mut sum = 0.0f64;
    for (u, &p) in probs.iter().enumerate() {
        if covered(u) {
            p_min = p_min.min(p);
            sum += p;
        }
    }
    (p_min, if n == 0 { 0.0 } else { sum / n as f64 })
}

/// Statistic used by [`most_reliable_source`] to rank candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SourceObjective {
    /// Maximize the minimum connection probability to any target (the
    /// classical most-reliable-source criterion; MCP's flavor).
    #[default]
    MinToTargets,
    /// Maximize the average connection probability to the targets (ACP's
    /// flavor).
    AvgToTargets,
}

/// Candidate rows fetched per batched engine call in
/// [`most_reliable_source`].
const SOURCE_BATCH: usize = 64;

/// Picks, among `candidates`, the node maximizing the chosen reliability
/// statistic toward `targets` (the *most reliable source* problem, a
/// special case of the paper's clustering objectives with `k = 1`).
/// Returns the winner and its statistic; `None` if `candidates` or
/// `targets` is empty. Ties break toward the smaller node id.
///
/// Candidate rows are fetched through the engine's batched
/// `counts_from_centers` in `SOURCE_BATCH`-sized groups, so the pool is
/// swept once per group instead of once per candidate.
///
/// # Panics
/// Panics if the engine's pool is empty.
pub fn most_reliable_source<E: WorldEngine + ?Sized>(
    engine: &mut E,
    candidates: &[NodeId],
    targets: &[NodeId],
    objective: SourceObjective,
) -> Option<(NodeId, f64)> {
    if candidates.is_empty() || targets.is_empty() {
        return None;
    }
    let n = engine.graph().num_nodes();
    let r = engine.num_samples();
    assert!(r > 0, "sample pool is empty");
    let mut counts = vec![0u32; SOURCE_BATCH.min(candidates.len()) * n];
    let mut best: Option<(NodeId, f64)> = None;
    for chunk in candidates.chunks(SOURCE_BATCH) {
        engine.counts_from_centers(chunk, &mut counts[..chunk.len() * n]);
        for (j, &c) in chunk.iter().enumerate() {
            let row = &counts[j * n..(j + 1) * n];
            let stat = match objective {
                SourceObjective::MinToTargets => targets
                    .iter()
                    .map(|t| row[t.index()] as f64 / r as f64)
                    .fold(f64::INFINITY, f64::min),
                SourceObjective::AvgToTargets => {
                    targets.iter().map(|t| row[t.index()] as f64 / r as f64).sum::<f64>()
                        / targets.len() as f64
                }
            };
            let better = match best {
                None => true,
                Some((bn, bs)) => stat > bs || (stat == bs && c < bn),
            };
            if better {
                best = Some((c, stat));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::{GraphBuilder, UncertainGraph};

    use crate::pool::{BitParallelPool, ComponentPool, WorldPool};

    /// Star: center 0 with spokes of decreasing reliability, plus a far
    /// node 4 two hops out.
    fn star() -> UncertainGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 2, 0.6).unwrap();
        b.add_edge(0, 3, 0.3).unwrap();
        b.add_edge(3, 4, 0.3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn knn_orders_by_reliability() {
        let g = star();
        let mut pool = ComponentPool::new(&g, 5, 1);
        pool.ensure(4000);
        let knn = reliability_knn(&mut pool, NodeId(0), 3);
        assert_eq!(knn.len(), 3);
        let ids: Vec<u32> = knn.iter().map(|(n, _)| n.0).collect();
        assert_eq!(ids, vec![1, 2, 3], "expected reliability order, got {knn:?}");
        assert!((knn[0].1 - 0.9).abs() < 0.03);
        assert!((knn[1].1 - 0.6).abs() < 0.03);
    }

    #[test]
    fn knn_truncates_and_excludes_source() {
        let g = star();
        let mut pool = ComponentPool::new(&g, 5, 1);
        pool.ensure(500);
        let knn = reliability_knn(&mut pool, NodeId(0), 100);
        assert!(knn.len() <= 4);
        assert!(knn.iter().all(|(n, _)| *n != NodeId(0)));
        let top1 = reliability_knn(&mut pool, NodeId(0), 1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].0, NodeId(1));
    }

    #[test]
    fn knn_depth_limited_drops_far_nodes() {
        let g = star();
        let mut pool = WorldPool::new(&g, 5, 1);
        pool.ensure(1000);
        let within1 = reliability_knn_within(&mut pool, NodeId(0), 10, 1);
        assert!(within1.iter().all(|(n, _)| n.0 != 4), "node 4 is 2 hops away");
        let within2 = reliability_knn_within(&mut pool, NodeId(0), 10, 2);
        assert!(within2.iter().any(|(n, _)| n.0 == 4));
    }

    #[test]
    fn queries_agree_across_backends() {
        let g = star();
        let mut scalar = ComponentPool::new(&g, 5, 1);
        let mut bit = BitParallelPool::<1>::new(&g, 5, 1);
        scalar.ensure(777);
        bit.ensure(777);
        assert_eq!(
            reliability_knn(&mut scalar, NodeId(0), 4),
            reliability_knn(&mut bit, NodeId(0), 4)
        );
        let mut wscalar = WorldPool::new(&g, 5, 1);
        wscalar.ensure(777);
        assert_eq!(
            reliability_knn_within(&mut wscalar, NodeId(0), 4, 1),
            reliability_knn_within(&mut bit, NodeId(0), 4, 1)
        );
        let cands = [NodeId(0), NodeId(4)];
        let targets = [NodeId(1), NodeId(2)];
        assert_eq!(
            most_reliable_source(&mut scalar, &cands, &targets, SourceObjective::MinToTargets),
            most_reliable_source(&mut bit, &cands, &targets, SourceObjective::MinToTargets)
        );
    }

    #[test]
    fn most_reliable_source_min_objective() {
        let g = star();
        let mut pool = ComponentPool::new(&g, 9, 1);
        pool.ensure(4000);
        // Candidates 0 and 4 serving targets {1, 2}: node 0 is adjacent to
        // both; node 4 reaches them through two weak hops.
        let got = most_reliable_source(
            &mut pool,
            &[NodeId(0), NodeId(4)],
            &[NodeId(1), NodeId(2)],
            SourceObjective::MinToTargets,
        )
        .unwrap();
        assert_eq!(got.0, NodeId(0));
        assert!((got.1 - 0.6).abs() < 0.04, "min stat {}", got.1);
        let avg = most_reliable_source(
            &mut pool,
            &[NodeId(0), NodeId(4)],
            &[NodeId(1), NodeId(2)],
            SourceObjective::AvgToTargets,
        )
        .unwrap();
        assert_eq!(avg.0, NodeId(0));
        assert!((avg.1 - 0.75).abs() < 0.04, "avg stat {}", avg.1);
    }

    #[test]
    fn most_reliable_source_empty_inputs() {
        let g = star();
        let mut pool = ComponentPool::new(&g, 1, 1);
        pool.ensure(10);
        assert!(most_reliable_source(&mut pool, &[], &[NodeId(1)], SourceObjective::default())
            .is_none());
        assert!(most_reliable_source(&mut pool, &[NodeId(0)], &[], SourceObjective::default())
            .is_none());
    }

    #[test]
    fn source_includes_itself_as_target_with_prob_one() {
        let g = star();
        let mut pool = ComponentPool::new(&g, 2, 1);
        pool.ensure(100);
        let got = most_reliable_source(
            &mut pool,
            &[NodeId(1)],
            &[NodeId(1)],
            SourceObjective::MinToTargets,
        )
        .unwrap();
        assert_eq!(got, (NodeId(1), 1.0));
    }
}
