//! Exact connection probabilities by exhaustive world enumeration.
//!
//! For a graph with `u` *uncertain* edges (probability strictly below 1)
//! there are `2^u` possible worlds; enumerating them yields exact
//! two-terminal reliabilities in `O(2^u · poly(n))`. Exact computation is
//! #P-complete in general, so this is only feasible for tiny graphs — which
//! is exactly its role here: ground truth for estimator tests, optimality
//! brute-forcing on small instances, and the `reliability_oracle` example.

use ugraph_graph::{bfs_distances, Bitset, NodeId, UncertainGraph, UnionFind, WorldView};

/// Error raised when a graph is too large for exhaustive enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooManyUncertainEdges {
    /// Number of uncertain edges in the graph.
    pub count: usize,
    /// The enumeration limit.
    pub max: usize,
}

impl std::fmt::Display for TooManyUncertainEdges {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph has {} uncertain edges; exact enumeration is limited to {}",
            self.count, self.max
        )
    }
}

impl std::error::Error for TooManyUncertainEdges {}

/// Exact all-pairs connection probabilities of a small uncertain graph.
#[derive(Clone, Debug)]
pub struct ExactOracle {
    n: usize,
    /// Row-major `n × n` symmetric matrix; diagonal is 1.
    probs: Vec<f64>,
}

impl ExactOracle {
    /// Maximum number of uncertain edges accepted (2^25 ≈ 33M worlds).
    pub const MAX_UNCERTAIN_EDGES: usize = 25;

    /// Computes exact **unlimited** connection probabilities.
    pub fn new(g: &UncertainGraph) -> Result<Self, TooManyUncertainEdges> {
        Self::build(g, None)
    }

    /// Computes exact **depth-limited** d-connection probabilities
    /// `Pr(u ~d~ v)` (paper §3.4): the probability that `u` and `v` are at
    /// hop distance at most `depth` in a random world.
    pub fn with_depth(g: &UncertainGraph, depth: u32) -> Result<Self, TooManyUncertainEdges> {
        Self::build(g, Some(depth))
    }

    fn build(g: &UncertainGraph, depth: Option<u32>) -> Result<Self, TooManyUncertainEdges> {
        let n = g.num_nodes();
        let m = g.num_edges();
        let mut uncertain: Vec<usize> = Vec::new();
        let mut base_world = Bitset::with_len(m);
        for (e, _, _, p) in g.edges() {
            if p < 1.0 {
                uncertain.push(e.index());
            } else {
                base_world.insert(e.index());
            }
        }
        if uncertain.len() > Self::MAX_UNCERTAIN_EDGES {
            return Err(TooManyUncertainEdges {
                count: uncertain.len(),
                max: Self::MAX_UNCERTAIN_EDGES,
            });
        }

        let mut probs = vec![0.0f64; n * n];
        let mut world = base_world.clone();
        let mut uf = UnionFind::new(n);
        let mut labels = vec![0u32; n];

        for mask in 0u64..(1u64 << uncertain.len()) {
            // Build this world: certain edges + selected uncertain edges.
            world.clone_from(&base_world);
            let mut world_prob = 1.0f64;
            for (bit, &e) in uncertain.iter().enumerate() {
                let p = g.probs()[e];
                if (mask >> bit) & 1 == 1 {
                    world.insert(e);
                    world_prob *= p;
                } else {
                    world_prob *= 1.0 - p;
                }
            }
            if world_prob == 0.0 {
                continue;
            }
            match depth {
                None => {
                    // Components once, then credit all intra-component pairs.
                    uf.reset();
                    for (e, u, v, _) in g.edges() {
                        if world.get(e.index()) {
                            uf.union(u.0, v.0);
                        }
                    }
                    let count = uf.component_labels_into(&mut labels);
                    // Bucket members per component for pair enumeration.
                    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); count];
                    for (node, &l) in labels.iter().enumerate() {
                        buckets[l as usize].push(node as u32);
                    }
                    for bucket in &buckets {
                        for (i, &a) in bucket.iter().enumerate() {
                            for &b in &bucket[i..] {
                                probs[a as usize * n + b as usize] += world_prob;
                                if a != b {
                                    probs[b as usize * n + a as usize] += world_prob;
                                }
                            }
                        }
                    }
                }
                Some(d) => {
                    let view = WorldView::new(g, &world);
                    for u in 0..n {
                        let dist = bfs_distances(&view, NodeId::from_index(u));
                        for (v, &dv) in dist.iter().enumerate() {
                            if dv != u32::MAX && dv <= d {
                                probs[u * n + v] += world_prob;
                            }
                        }
                    }
                }
            }
        }
        Ok(ExactOracle { n, probs })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Exact `Pr(u ~ v)` (or `Pr(u ~d~ v)` if built with a depth).
    #[inline]
    pub fn pair_probability(&self, u: NodeId, v: NodeId) -> f64 {
        self.probs[u.index() * self.n + v.index()]
    }

    /// The row of probabilities from `u` to every node.
    #[inline]
    pub fn probs_from(&self, u: NodeId) -> &[f64] {
        &self.probs[u.index() * self.n..(u.index() + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn chain(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn series_composition() {
        // Chain of independent edges: Pr(0 ~ k) = p^k.
        let g = chain(5, 0.5);
        let oracle = ExactOracle::new(&g).unwrap();
        for k in 0..5u32 {
            let want = 0.5f64.powi(k as i32);
            let got = oracle.pair_probability(NodeId(0), NodeId(k));
            assert!((got - want).abs() < 1e-12, "Pr(0~{k}) = {got}, want {want}");
        }
    }

    #[test]
    fn parallel_composition() {
        // Two parallel 2-hop routes 0-1-3 and 0-2-3, all p = 0.5.
        // Pr(route) = 0.25 each; Pr(0~3) = 1 - (1-.25)^2 = 0.4375.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 3, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        let g = b.build().unwrap();
        let oracle = ExactOracle::new(&g).unwrap();
        let got = oracle.pair_probability(NodeId(0), NodeId(3));
        assert!((got - 0.4375).abs() < 1e-12, "{got}");
    }

    #[test]
    fn diagonal_is_one_rows_symmetric() {
        let g = chain(4, 0.3);
        let oracle = ExactOracle::new(&g).unwrap();
        for u in 0..4u32 {
            assert!((oracle.pair_probability(NodeId(u), NodeId(u)) - 1.0).abs() < 1e-12);
            for v in 0..4u32 {
                let a = oracle.pair_probability(NodeId(u), NodeId(v));
                let b = oracle.pair_probability(NodeId(v), NodeId(u));
                assert!((a - b).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn certain_edges_do_not_blow_up() {
        // 30 certain edges + 2 uncertain ones: must not hit the limit.
        let mut b = GraphBuilder::new(32);
        for i in 0..30 {
            b.add_edge(i, i + 1, 1.0).unwrap();
        }
        b.add_edge(30, 31, 0.5).unwrap();
        b.add_edge(0, 31, 0.5).unwrap();
        let g = b.build().unwrap();
        let oracle = ExactOracle::new(&g).unwrap();
        // 0 and 30 joined by certain chain.
        assert!((oracle.pair_probability(NodeId(0), NodeId(30)) - 1.0).abs() < 1e-12);
        // 0 ~ 31 via either uncertain edge: 1 - 0.25 = 0.75.
        assert!((oracle.pair_probability(NodeId(0), NodeId(31)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn too_many_uncertain_edges_rejected() {
        let mut b = GraphBuilder::new(30);
        for i in 0..28 {
            b.add_edge(i, i + 1, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let err = ExactOracle::new(&g).unwrap_err();
        assert_eq!(err.count, 28);
        assert!(err.to_string().contains("28"));
    }

    #[test]
    fn depth_limited_excludes_long_paths() {
        // Certain chain 0-1-2: Pr(0 ~1~ 2) = 0 but Pr(0 ~2~ 2) = 1.
        let g = chain(3, 1.0);
        let d1 = ExactOracle::with_depth(&g, 1).unwrap();
        assert_eq!(d1.pair_probability(NodeId(0), NodeId(2)), 0.0);
        let d2 = ExactOracle::with_depth(&g, 2).unwrap();
        assert!((d2.pair_probability(NodeId(0), NodeId(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depth_limited_triangle() {
        // Triangle, p=0.5 each. Pr(0 ~1~ 1) = Pr(direct edge OR nothing else
        // helps at depth 1) = 0.5.
        // Pr(0 ~2~ 1) = Pr(edge01) + Pr(!edge01) * Pr(edge02 & edge12)
        //            = 0.5 + 0.5 * 0.25 = 0.625.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build().unwrap();
        let d1 = ExactOracle::with_depth(&g, 1).unwrap();
        assert!((d1.pair_probability(NodeId(0), NodeId(1)) - 0.5).abs() < 1e-12);
        let d2 = ExactOracle::with_depth(&g, 2).unwrap();
        assert!((d2.pair_probability(NodeId(0), NodeId(1)) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn unlimited_equals_large_depth() {
        let g = chain(5, 0.7);
        let unlimited = ExactOracle::new(&g).unwrap();
        let deep = ExactOracle::with_depth(&g, 4).unwrap();
        for u in 0..5u32 {
            for v in 0..5u32 {
                let a = unlimited.pair_probability(NodeId(u), NodeId(v));
                let b = deep.pair_probability(NodeId(u), NodeId(v));
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn disconnected_pairs_have_zero_probability() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        let g = b.build().unwrap();
        let oracle = ExactOracle::new(&g).unwrap();
        assert_eq!(oracle.pair_probability(NodeId(0), NodeId(2)), 0.0);
        assert!((oracle.pair_probability(NodeId(0), NodeId(1)) - 0.9).abs() < 1e-12);
    }
}
