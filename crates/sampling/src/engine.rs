//! The `WorldEngine` backend seam of the Monte-Carlo stack.
//!
//! Every Monte-Carlo query of the clustering algorithms reduces to *counts
//! over a pool of sampled possible worlds*: in how many worlds is `u`
//! connected to a center (optionally within a hop limit)? The
//! [`WorldEngine`] trait captures exactly that contract, so the machinery
//! answering it is swappable:
//!
//! * the **scalar** backend walks one world per query step —
//!   [`crate::ComponentPool`] (per-world component labels, unlimited
//!   connectivity) and [`crate::WorldPool`] (per-world edge bitsets,
//!   depth-limited BFS);
//! * the **bit-parallel** backend ([`crate::BitParallelPool`]) packs 64
//!   worlds per machine word as structure-of-arrays edge masks and answers
//!   64 worlds per traversal with mask-propagating multi-world BFS
//!   ([`ugraph_graph::MultiWorldBfs`]).
//!
//! Backends draw world `i` from the same per-index RNG stream, so for a
//! fixed master seed every backend holds **bit-identical worlds** and
//! returns **identical integer counts** — estimates do not depend on which
//! backend (or thread count) produced them. The property-test suite
//! asserts this equivalence; future scaling backends (sharded pools,
//! SIMD/GPU, incremental re-sampling) plug into the same seam under the
//! same contract.
//!
//! Backend choice is surfaced to applications as [`EngineKind`], carried
//! by `ugraph_cluster::ClusterConfig` into the MCP/ACP drivers.

use ugraph_graph::{NodeId, UncertainGraph};

use crate::budget::{MemoryBudget, MemoryStats};
use crate::interrupt::RunState;

/// Depth value meaning "no hop limit" in [`WorldEngine`] queries.
pub const DEPTH_UNLIMITED: u32 = u32::MAX;

/// Selects the Monte-Carlo backend that powers pools and oracles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// One world per query step: component labels for unlimited
    /// connectivity, per-world bounded BFS for depth-limited queries.
    Scalar,
    /// 64 worlds per machine word: structure-of-arrays edge masks queried
    /// with mask-propagating multi-world BFS. Kept as the pure-mask
    /// backend for benchmarking; [`EngineKind::Adaptive`] dominates it on
    /// unlimited-depth query workloads.
    BitParallel,
    /// The bit-parallel backend plus **lazy per-block component-label
    /// finalization**: the first unlimited-depth row query against a
    /// 64-world block materializes per-lane component labels (one
    /// component-sharing fixpoint sweep per block) and caches them next to
    /// the edge masks, so every later unlimited query over that block is
    /// an O(n + members) label scan exactly like the scalar backend —
    /// while generation and depth-limited queries stay pure bit-parallel.
    #[default]
    Adaptive,
}

impl EngineKind {
    /// Short stable name, used in benchmark labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Scalar => "scalar",
            EngineKind::BitParallel => "bitparallel",
            EngineKind::Adaptive => "adaptive",
        }
    }

    /// Parses the name produced by [`EngineKind::name`] (CLI flag values).
    pub fn from_name(name: &str) -> Option<EngineKind> {
        match name {
            "scalar" => Some(EngineKind::Scalar),
            "bitparallel" => Some(EngineKind::BitParallel),
            "adaptive" => Some(EngineKind::Adaptive),
            _ => None,
        }
    }
}

/// Block width of the bit-parallel backends: how many worlds one mask
/// block packs, i.e. the `W` of [`ugraph_graph::Mask`]`<W>` (`W · 64`
/// worlds per block). Wider blocks answer more worlds per traversal at the
/// cost of proportionally larger per-block mask memory (`m · W · 8` bytes
/// per block even when only a tail of its lanes is populated). Counts are
/// **bit-identical at every width** — world `i` always comes from per-index
/// RNG stream `i` — so the knob is purely a performance/memory trade.
/// Ignored by the scalar backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BlockWidth {
    /// 64 worlds per block (one `u64` word per edge).
    W64,
    /// 256 worlds per block (four words per edge) — the default: wide
    /// enough for the AND+popcount sweeps to autovectorize, narrow enough
    /// to keep partial-tail waste small.
    #[default]
    W256,
    /// 512 worlds per block (eight words per edge).
    W512,
}

impl BlockWidth {
    /// Worlds per block at this width.
    pub fn worlds(self) -> usize {
        match self {
            BlockWidth::W64 => 64,
            BlockWidth::W256 => 256,
            BlockWidth::W512 => 512,
        }
    }

    /// Short stable name, used in CLI flags and benchmark labels.
    pub fn name(self) -> &'static str {
        match self {
            BlockWidth::W64 => "64",
            BlockWidth::W256 => "256",
            BlockWidth::W512 => "512",
        }
    }

    /// Parses the name produced by [`BlockWidth::name`] (CLI flag values).
    pub fn from_name(name: &str) -> Option<BlockWidth> {
        match name {
            "64" => Some(BlockWidth::W64),
            "256" => Some(BlockWidth::W256),
            "512" => Some(BlockWidth::W512),
            _ => None,
        }
    }
}

/// Counters describing the adaptive backend's lazy block finalization (all
/// zero for backends without finalization — scalar pools and the pure-mask
/// bit-parallel pool).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// 64-world blocks currently holding finalized component labels.
    pub finalized_blocks: usize,
    /// World lanes ever labeled. Monotone, and each lane is labeled **at
    /// most once per residency**: growing a pool appends new lanes but
    /// never relabels a finalized one. Shard eviction drops a block's
    /// labels with its masks, so a lane of a regenerated shard counts
    /// again when it re-finalizes.
    pub finalized_lanes: usize,
    /// Unlimited block-queries served from finalized labels.
    pub label_queries: usize,
    /// Unlimited block-queries served by mask BFS (block not finalized at
    /// query time).
    pub mask_queries: usize,
}

impl EngineStats {
    /// The counters accumulated since an earlier snapshot (field-wise
    /// difference, saturating) — how a session reports per-request
    /// finalization work from an engine's cumulative counters.
    pub fn since(self, earlier: EngineStats) -> EngineStats {
        EngineStats {
            finalized_blocks: self.finalized_blocks.saturating_sub(earlier.finalized_blocks),
            finalized_lanes: self.finalized_lanes.saturating_sub(earlier.finalized_lanes),
            label_queries: self.label_queries.saturating_sub(earlier.label_queries),
            mask_queries: self.mask_queries.saturating_sub(earlier.mask_queries),
        }
    }

    /// Field-wise sum — aggregation across a session's engines.
    pub fn merged(self, other: EngineStats) -> EngineStats {
        EngineStats {
            finalized_blocks: self.finalized_blocks + other.finalized_blocks,
            finalized_lanes: self.finalized_lanes + other.finalized_lanes,
            label_queries: self.label_queries + other.label_queries,
            mask_queries: self.mask_queries + other.mask_queries,
        }
    }
}

/// Backend-agnostic interface to a pool of sampled possible worlds.
///
/// Implementations grow **monotonically** ([`WorldEngine::ensure`]) and
/// draw sample `i` from the per-index RNG stream `i` (see [`crate::rng`]),
/// which makes the pool contents independent of the growth schedule, the
/// thread count, and the backend.
///
/// Queries come in three shapes per family: a single center row, a
/// **batched** multi-center form (`counts_from_centers`,
/// `counts_within_depths_batch`) answering many rows in one pool sweep,
/// and a **ranged** form (`counts_from_center_range`,
/// `counts_within_depths_range`) restricted to a sample-index window —
/// counts over disjoint windows add up exactly, which is what the oracle
/// layer's incremental row cache builds on. All three shapes return
/// identical integer counts for the same pool.
///
/// Depth parameters use [`DEPTH_UNLIMITED`] for plain connectivity.
/// Backends that precompute per-world connectivity and cannot answer
/// finite-depth queries (the scalar [`crate::ComponentPool`]) document
/// this and panic on finite depths; the oracles only pair depth queries
/// with depth-capable backends.
pub trait WorldEngine {
    /// The underlying uncertain graph.
    fn graph(&self) -> &UncertainGraph;

    /// Whether this backend can answer **finite**-depth queries.
    ///
    /// Defaults to `true`; backends that precompute per-world connectivity
    /// and lose distance information (the scalar [`crate::ComponentPool`])
    /// return `false`, and the depth-limited oracle rejects them at
    /// construction instead of panicking at first query.
    fn supports_finite_depths(&self) -> bool {
        true
    }

    /// Number of samples currently in the pool.
    fn num_samples(&self) -> usize;

    /// Finalization counters of the adaptive backend (all zero for
    /// backends without lazy block finalization).
    fn engine_stats(&self) -> EngineStats {
        EngineStats::default()
    }

    /// Binds the pool's shard storage to a (possibly shared)
    /// [`MemoryBudget`]: resident bytes move onto the new ledger, and from
    /// then on the pool sheds least-recently-used shards whenever the
    /// ledger exceeds its limit, regenerating them bit-identically from
    /// their per-index RNG streams on the next touch. The default is a
    /// no-op for engines without budgeted storage (e.g. the exact-oracle
    /// adapter).
    fn set_memory_budget(&mut self, budget: MemoryBudget) {
        let _ = budget;
    }

    /// Attaches the per-solve interruption state (see [`RunState`]): the
    /// engine polls it cooperatively at shard/block boundaries — one
    /// relaxed atomic load per checkpoint — and, once it trips, abandons
    /// the current operation between self-contained units of work,
    /// leaving the pool consistent. Callers observe the recorded error
    /// through the fallible oracle layer; with the default unarmed state
    /// the engine never interrupts. The default impl is a no-op for
    /// engines without long-running operations (the exact-oracle
    /// adapter).
    fn set_run_state(&mut self, run: RunState) {
        let _ = run;
    }

    /// Shard-storage memory accounting: resident bytes, the budget limit
    /// in force, and this engine's cumulative eviction/regeneration
    /// counters (all zero/unbounded for engines without budgeted storage).
    fn memory_stats(&self) -> MemoryStats {
        MemoryStats::default()
    }

    /// Grows the pool to at least `r` samples (no-op if already there).
    fn ensure(&mut self, r: usize);

    /// For every node `u`, writes the number of samples in which `u` is
    /// connected to `center` (unlimited path length) into `out[u]`.
    ///
    /// # Panics
    /// Panics if `out.len() != graph().num_nodes()`.
    fn counts_from_center(&mut self, center: NodeId, out: &mut [u32]);

    /// Batched [`WorldEngine::counts_from_center`]: one count row per
    /// requested center, written row-major into `out`
    /// (`out[j * n + u]` = count for `centers[j]` and node `u`).
    ///
    /// Counts are **identical** to `centers.len()` sequential
    /// `counts_from_center` calls — batching only changes how the pool is
    /// swept, never what is counted. Backends override the default
    /// per-center loop with genuinely amortized sweeps (one pass over the
    /// pool updating all rows; multi-source mask BFS on the bit-parallel
    /// backend). Duplicate centers are allowed.
    ///
    /// # Panics
    /// Panics if `out.len() != centers.len() * graph().num_nodes()`.
    fn counts_from_centers(&mut self, centers: &[NodeId], out: &mut [u32]) {
        let n = self.graph().num_nodes();
        assert_eq!(out.len(), centers.len() * n, "batch counts buffer has wrong length");
        for (j, &c) in centers.iter().enumerate() {
            self.counts_from_center(c, &mut out[j * n..(j + 1) * n]);
        }
    }

    /// Restriction of [`WorldEngine::counts_from_center`] to the samples
    /// with index in `[lo, hi)`: `out[u]` counts only those worlds.
    ///
    /// Because pools grow monotonically and sample `i` is fixed by its RNG
    /// stream, counts over disjoint index ranges **add up exactly**:
    /// `counts[0, r1) + counts[r1, r2) == counts[0, r2)`. This is what lets
    /// cached rows be topped up incrementally after pool growth instead of
    /// recomputed.
    ///
    /// # Panics
    /// Panics if `out.len() != graph().num_nodes()`, `lo > hi`, or
    /// `hi > num_samples()`.
    fn counts_from_center_range(&mut self, center: NodeId, lo: usize, hi: usize, out: &mut [u32]);

    /// Batched [`WorldEngine::counts_from_center_range`]: one count row per
    /// requested center over the sample window `[lo, hi)`, written
    /// row-major into `out` (`out[j * n + u]`).
    ///
    /// This is the query shape of a row-cache **top-up wave**: after
    /// `prepare(q)` growth, many cached candidate rows need the same new
    /// window counted, and issuing them one center at a time re-pays the
    /// per-window traversal setup per row (on the bit-parallel backend,
    /// the losing single-row mask-BFS shape). Backends override the
    /// default per-center loop with the same amortized sweeps as
    /// [`WorldEngine::counts_from_centers`] (one pass over the window
    /// updating all rows; component sharing / multi-source mask BFS),
    /// restricted to the window's worlds. Counts are identical to
    /// sequential `counts_from_center_range` calls and add up exactly
    /// over disjoint windows.
    ///
    /// # Panics
    /// Panics if `out.len() != centers.len() * graph().num_nodes()`,
    /// `lo > hi`, or `hi > num_samples()`.
    fn counts_from_centers_range(
        &mut self,
        centers: &[NodeId],
        lo: usize,
        hi: usize,
        out: &mut [u32],
    ) {
        let n = self.graph().num_nodes();
        assert_eq!(out.len(), centers.len() * n, "batch counts buffer has wrong length");
        for (j, &c) in centers.iter().enumerate() {
            self.counts_from_center_range(c, lo, hi, &mut out[j * n..(j + 1) * n]);
        }
    }

    /// Number of samples in which `u` and `v` are connected (unlimited
    /// path length).
    fn pair_count(&mut self, u: NodeId, v: NodeId) -> usize;

    /// Restriction of [`WorldEngine::pair_count`] to the samples with
    /// index in `[lo, hi)` — the pairwise analogue of
    /// [`WorldEngine::counts_from_center_range`], with the same exact
    /// additivity over disjoint windows. The default computes a ranged
    /// count row and reads one entry (correct but O(n) in memory
    /// traffic); backends override it with a direct window scan.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > num_samples()`.
    fn pair_count_range(&mut self, u: NodeId, v: NodeId, lo: usize, hi: usize) -> usize {
        let mut counts = vec![0u32; self.graph().num_nodes()];
        self.counts_from_center_range(u, lo, hi, &mut counts);
        counts[v.index()] as usize
    }

    /// Depth-limited connection counts from `center`: after the call
    /// `out_select[u]` counts samples with `dist(center, u) ≤ d_select`
    /// and `out_cover[u]` those with `dist(center, u) ≤ d_cover`.
    ///
    /// # Panics
    /// Panics on buffer-size mismatch, on `d_select > d_cover`, or if the
    /// backend cannot answer finite depths (see the trait docs).
    fn counts_within_depths(
        &mut self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    );

    /// Batched [`WorldEngine::counts_within_depths`]: one select row and
    /// one cover row per requested center, written row-major
    /// (`out_select[j * n + u]`, `out_cover[j * n + u]`). Counts are
    /// identical to sequential per-center calls (see
    /// [`WorldEngine::counts_from_centers`]).
    ///
    /// # Panics
    /// Panics on buffer-size mismatch, `d_select > d_cover`, or a backend
    /// that cannot answer finite depths.
    fn counts_within_depths_batch(
        &mut self,
        centers: &[NodeId],
        d_select: u32,
        d_cover: u32,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        let n = self.graph().num_nodes();
        assert_eq!(out_select.len(), centers.len() * n, "batch select buffer has wrong length");
        assert_eq!(out_cover.len(), centers.len() * n, "batch cover buffer has wrong length");
        for (j, &c) in centers.iter().enumerate() {
            self.counts_within_depths(
                c,
                d_select,
                d_cover,
                &mut out_select[j * n..(j + 1) * n],
                &mut out_cover[j * n..(j + 1) * n],
            );
        }
    }

    /// Restriction of [`WorldEngine::counts_within_depths`] to the samples
    /// with index in `[lo, hi)` — the depth-limited analogue of
    /// [`WorldEngine::counts_from_center_range`], with the same exact
    /// additivity over disjoint ranges.
    ///
    /// # Panics
    /// Panics on buffer-size mismatch, `lo > hi`, `hi > num_samples()`,
    /// `d_select > d_cover`, or a backend that cannot answer finite depths.
    #[allow(clippy::too_many_arguments)]
    fn counts_within_depths_range(
        &mut self,
        center: NodeId,
        d_select: u32,
        d_cover: u32,
        lo: usize,
        hi: usize,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    );

    /// Batched [`WorldEngine::counts_within_depths_range`]: one select row
    /// and one cover row per requested center over the sample window
    /// `[lo, hi)`, written row-major — the depth-limited analogue of
    /// [`WorldEngine::counts_from_centers_range`], serving the depth
    /// oracle's top-up waves with shared window sweeps.
    ///
    /// # Panics
    /// Panics on buffer-size mismatch, `d_select > d_cover`, `lo > hi`,
    /// `hi > num_samples()`, or a backend that cannot answer finite
    /// depths.
    #[allow(clippy::too_many_arguments)]
    fn counts_within_depths_batch_range(
        &mut self,
        centers: &[NodeId],
        d_select: u32,
        d_cover: u32,
        lo: usize,
        hi: usize,
        out_select: &mut [u32],
        out_cover: &mut [u32],
    ) {
        let n = self.graph().num_nodes();
        assert_eq!(out_select.len(), centers.len() * n, "batch select buffer has wrong length");
        assert_eq!(out_cover.len(), centers.len() * n, "batch cover buffer has wrong length");
        for (j, &c) in centers.iter().enumerate() {
            self.counts_within_depths_range(
                c,
                d_select,
                d_cover,
                lo,
                hi,
                &mut out_select[j * n..(j + 1) * n],
                &mut out_cover[j * n..(j + 1) * n],
            );
        }
    }

    /// Number of samples in which `dist(u, v) ≤ depth`.
    ///
    /// # Panics
    /// Panics if the backend cannot answer finite depths.
    fn pair_count_within(&mut self, u: NodeId, v: NodeId, depth: u32) -> usize;

    /// Restriction of [`WorldEngine::pair_count_within`] to the samples
    /// with index in `[lo, hi)` (see [`WorldEngine::pair_count_range`]).
    ///
    /// # Panics
    /// Panics if `lo > hi`, `hi > num_samples()`, or the backend cannot
    /// answer finite depths.
    fn pair_count_within_range(
        &mut self,
        u: NodeId,
        v: NodeId,
        depth: u32,
        lo: usize,
        hi: usize,
    ) -> usize {
        let n = self.graph().num_nodes();
        let mut select = vec![0u32; n];
        let mut cover = vec![0u32; n];
        self.counts_within_depths_range(u, depth, depth, lo, hi, &mut select, &mut cover);
        cover[v.index()] as usize
    }

    /// The estimator `p̃(u, v)` of Eq. 3. Returns 0 for an empty pool.
    fn pair_estimate(&mut self, u: NodeId, v: NodeId) -> f64 {
        let r = self.num_samples();
        if r == 0 {
            return 0.0;
        }
        self.pair_count(u, v) as f64 / r as f64
    }

    /// Estimator of the d-connection probability `Pr(u ~d~ v)`.
    fn pair_estimate_within(&mut self, u: NodeId, v: NodeId, depth: u32) -> f64 {
        let r = self.num_samples();
        if r == 0 {
            return 0.0;
        }
        self.pair_count_within(u, v, depth) as f64 / r as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_defaults_and_names() {
        assert_eq!(EngineKind::default(), EngineKind::Adaptive);
        assert_eq!(EngineKind::Scalar.name(), "scalar");
        assert_eq!(EngineKind::BitParallel.name(), "bitparallel");
        assert_eq!(EngineKind::Adaptive.name(), "adaptive");
        for kind in [EngineKind::Scalar, EngineKind::BitParallel, EngineKind::Adaptive] {
            assert_eq!(EngineKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EngineKind::from_name("gpu"), None);
    }

    #[test]
    fn engine_stats_since_and_merged() {
        let a = EngineStats {
            finalized_blocks: 3,
            finalized_lanes: 192,
            label_queries: 10,
            mask_queries: 2,
        };
        let b = EngineStats {
            finalized_blocks: 1,
            finalized_lanes: 64,
            label_queries: 4,
            mask_queries: 1,
        };
        assert_eq!(
            a.since(b),
            EngineStats {
                finalized_blocks: 2,
                finalized_lanes: 128,
                label_queries: 6,
                mask_queries: 1,
            }
        );
        assert_eq!(
            a.merged(b),
            EngineStats {
                finalized_blocks: 4,
                finalized_lanes: 256,
                label_queries: 14,
                mask_queries: 3,
            }
        );
    }
}
