//! Deadlines and cooperative cancellation for long-running solves.
//!
//! Monte-Carlo estimation is an *anytime* computation: fewer samples mean
//! wider error bars, not wrong answers. This module provides the plumbing
//! that lets a caller bound a solve in wall-clock time or abort it from
//! another thread without poisoning any session state:
//!
//! * [`CancelToken`] — a shareable atomic flag; cloning shares the flag,
//!   so a server thread can hand a token to a solve and trip it later;
//! * [`RunBudget`] — an optional deadline plus any number of tokens,
//!   polled together;
//! * [`RunState`] — the per-solve handle threaded through oracles and
//!   pool backends. Backends poll it at shard/block boundaries
//!   ([`RunState::checkpoint`], one relaxed atomic load when armed, a
//!   plain branch when not) and *record* the interruption instead of
//!   unwinding; fallible layers above ([`crate::Oracle`] methods, the
//!   clustering drivers) observe the recorded error and return it before
//!   committing any cached state.
//!
//! The discipline that keeps interrupted sessions reusable: a checkpoint
//! may only fire **between** self-contained units of work (a generated
//! shard, a swept block, a cache merge), never inside one — so every
//! structure is either fully updated or untouched, and re-issuing the
//! interrupted request completes bit-identically to an uninterrupted run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::{SamplingError, SamplingPhase};

/// Why a run was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The wall-clock deadline of the [`RunBudget`] passed.
    DeadlineExceeded,
    /// A [`CancelToken`] attached to the run was cancelled.
    Cancelled,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
            Interrupt::Cancelled => write!(f, "cancelled"),
        }
    }
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Deterministic trip point: cancel on the `n`-th checkpoint poll
    /// (0 = disarmed). Lets tests cancel at an exact, reproducible
    /// checkpoint without racing a second thread.
    trip_at_poll: u64,
    polls: AtomicU64,
}

/// A shareable cancellation flag.
///
/// Clones share the flag: cancel any clone and every holder observes it at
/// its next checkpoint. Polling is a single relaxed atomic load, so tokens
/// are cheap enough to check per block of work.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that trips itself at its `n`-th checkpoint poll (1-based):
    /// `after_checks(1)` cancels at the very first checkpoint it is polled
    /// at, `after_checks(5)` lets four checkpoints pass. Deterministic —
    /// the property tests use this to cancel at every reachable
    /// checkpoint in turn and assert the session survives each one.
    pub fn after_checks(n: u64) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                trip_at_poll: n,
                polls: AtomicU64::new(0),
            }),
        }
    }

    /// Cancels the token; every clone observes it at its next checkpoint.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled (does not count as a poll).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Checkpoint poll: counts towards [`CancelToken::after_checks`].
    fn poll(&self) -> bool {
        if self.inner.trip_at_poll != 0 {
            let seen = self.inner.polls.fetch_add(1, Ordering::Relaxed) + 1;
            if seen >= self.inner.trip_at_poll {
                self.inner.cancelled.store(true, Ordering::Relaxed);
            }
        }
        self.is_cancelled()
    }

    /// Whether two tokens share the same flag (clone identity).
    pub fn same_token(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// The interruption sources of one run: an optional wall-clock deadline
/// plus any number of [`CancelToken`]s (session-level and request-level
/// tokens compose by both being attached).
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    deadline: Option<Instant>,
    tokens: Vec<CancelToken>,
}

impl RunBudget {
    /// A budget with no deadline and no tokens — never interrupts.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Tightens the deadline to at most `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        let at = Instant::now() + timeout;
        self.deadline = Some(self.deadline.map_or(at, |d| d.min(at)));
        self
    }

    /// Attaches a cancellation token (in addition to any already present).
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.tokens.push(token);
        self
    }

    /// Whether any interruption source is armed.
    pub fn armed(&self) -> bool {
        self.deadline.is_some() || !self.tokens.is_empty()
    }

    /// Polls every source; `None` means keep running. Token checks are one
    /// relaxed atomic load each; the deadline check reads the clock only
    /// when a deadline is set.
    pub fn poll(&self) -> Option<Interrupt> {
        for t in &self.tokens {
            if t.poll() {
                return Some(Interrupt::Cancelled);
            }
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(Interrupt::DeadlineExceeded),
            _ => None,
        }
    }
}

#[derive(Debug, Default)]
struct RunStateInner {
    budget: RunBudget,
    /// Fast flag: set exactly when `pending` holds an error.
    tripped: AtomicBool,
    /// The first error observed by any checkpoint; later checkpoints
    /// return clones of it rather than re-polling.
    pending: Mutex<Option<SamplingError>>,
}

/// Shared per-solve interruption state, threaded from the session through
/// oracles into the pool backends (see [`crate::WorldEngine::set_run_state`]).
///
/// Clones share one underlying state. A backend checkpoint that observes
/// an interruption (or an injected fault) **records** it here and bails
/// out of its current operation between units of work; the fallible layer
/// above picks the error up via [`RunState::error`] before committing any
/// derived state.
#[derive(Debug, Clone, Default)]
pub struct RunState {
    inner: Arc<RunStateInner>,
}

impl RunState {
    /// A state that never interrupts (the default for standalone pools).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A fresh state polling `budget`.
    pub fn new(budget: RunBudget) -> Self {
        RunState {
            inner: Arc::new(RunStateInner {
                budget,
                tripped: AtomicBool::new(false),
                pending: Mutex::new(None),
            }),
        }
    }

    /// Whether an interruption or fault has been recorded.
    pub fn interrupted(&self) -> bool {
        self.inner.tripped.load(Ordering::Relaxed)
    }

    /// Records `err` as this run's interruption (first writer wins).
    pub fn record(&self, err: SamplingError) {
        let mut pending = self.inner.pending.lock().unwrap_or_else(|e| e.into_inner());
        if pending.is_none() {
            *pending = Some(err);
        }
        self.inner.tripped.store(true, Ordering::Relaxed);
    }

    /// The cooperative checkpoint of the pool backends: returns `true` if
    /// the current operation should be abandoned — either something was
    /// already recorded, or the budget just interrupted (recorded now,
    /// tagged with `phase`). Unarmed and untripped, this is one relaxed
    /// load and one branch.
    #[must_use]
    pub fn checkpoint(&self, phase: SamplingPhase) -> bool {
        if self.interrupted() {
            return true;
        }
        if let Some(kind) = self.inner.budget.poll() {
            self.record(SamplingError::Interrupted { kind, phase });
            return true;
        }
        false
    }

    /// The recorded error, if any — checked by the fallible layers before
    /// committing caches or returning estimates. The error stays recorded
    /// (the whole solve is aborting); a new solve gets a fresh state.
    pub fn error(&self) -> Result<(), SamplingError> {
        if !self.interrupted() {
            return Ok(());
        }
        let pending = self.inner.pending.lock().unwrap_or_else(|e| e.into_inner());
        match pending.clone() {
            Some(err) => Err(err),
            // `record` sets the flag after storing, but tolerate the gap.
            None => Err(SamplingError::Interrupted {
                kind: Interrupt::Cancelled,
                phase: SamplingPhase::Sweep,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert!(a.same_token(&b));
        assert!(!a.same_token(&CancelToken::new()));
    }

    #[test]
    fn after_checks_trips_at_exactly_the_nth_poll() {
        let budget = RunBudget::unlimited().with_token(CancelToken::after_checks(3));
        assert_eq!(budget.poll(), None);
        assert_eq!(budget.poll(), None);
        assert_eq!(budget.poll(), Some(Interrupt::Cancelled));
        assert_eq!(budget.poll(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn deadline_in_the_past_interrupts() {
        let budget = RunBudget::unlimited().with_timeout(Duration::ZERO);
        assert_eq!(budget.poll(), Some(Interrupt::DeadlineExceeded));
        let lax = RunBudget::unlimited().with_timeout(Duration::from_secs(3600));
        assert_eq!(lax.poll(), None);
        assert!(lax.armed());
        assert!(!RunBudget::unlimited().armed());
    }

    #[test]
    fn run_state_records_once_and_reports() {
        let state = RunState::new(RunBudget::unlimited().with_token(CancelToken::after_checks(1)));
        assert!(state.error().is_ok());
        assert!(state.checkpoint(SamplingPhase::Generation));
        let err = state.error().unwrap_err();
        assert_eq!(
            err,
            SamplingError::Interrupted {
                kind: Interrupt::Cancelled,
                phase: SamplingPhase::Generation
            }
        );
        // A later checkpoint in another phase reports the first recording.
        assert!(state.checkpoint(SamplingPhase::Sweep));
        assert_eq!(state.error().unwrap_err(), err);
    }

    #[test]
    fn unarmed_state_never_trips() {
        let state = RunState::unlimited();
        for _ in 0..1000 {
            assert!(!state.checkpoint(SamplingPhase::Sweep));
        }
        assert!(state.error().is_ok());
    }
}
