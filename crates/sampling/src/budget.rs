//! Global memory budgets for sample storage.
//!
//! Pools store their samples in fixed-size **shards**
//! ([`crate::SHARD_WORLDS`] worlds each). Every shard's bytes are charged
//! against a shared [`MemoryBudget`] handle when the shard is materialized
//! and released when it is evicted; when the ledger exceeds the configured
//! limit, pools evict their least-recently-used shards until the ledger
//! fits again. Because world `i` is always drawn from per-index RNG stream
//! `i` (see [`crate::rng`]), an evicted shard is a pure function of
//! `(graph, seed, shard index)` — eviction is cache management over
//! deterministic regeneration, and every estimate stays **bit-identical**
//! to the unbounded run.
//!
//! One budget is shared by every pool and row cache of a session: the
//! handle is cheaply cloneable, and the recency clock it hands out orders
//! shard use across all of them, so the eviction policy is LRU-ish across
//! the whole session rather than per pool.

use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct BudgetInner {
    /// Byte ceiling; `None` = unbounded (ledger only).
    limit: Option<usize>,
    /// Bytes currently charged by live shards and cached rows.
    held: usize,
    /// Monotone recency clock handed out by [`MemoryBudget::touch`].
    clock: u64,
    /// Shards evicted across all pools sharing this budget.
    evicted: u64,
    /// Shards regenerated across all pools sharing this budget.
    regenerated: u64,
}

/// Shared charge/release ledger with a byte limit and a recency clock —
/// the coordination point of shard eviction (see the module docs).
///
/// Cloning shares the underlying ledger; [`MemoryBudget::default`] is
/// unbounded (accounting without eviction pressure).
///
/// A budget can be a **subledger** of a parent budget
/// ([`MemoryBudget::subledger`]): every charge and release is applied to
/// the subledger *and* to the parent, and eviction pressure
/// ([`MemoryBudget::over_budget`] / [`MemoryBudget::would_exceed`])
/// observes both limits. A server hands each session a subledger of one
/// global budget: the session's own accounting stays intact (its stats
/// report only its bytes), while the global ledger sees the total across
/// all sessions and pool-level shard eviction reacts to global pressure
/// exactly as it does to a per-session limit.
#[derive(Clone, Debug, Default)]
pub struct MemoryBudget {
    inner: Arc<Mutex<BudgetInner>>,
    /// Parent ledger charges/releases are mirrored into (`None` for a
    /// root budget). Lock order is strictly child → parent, so the chain
    /// can never deadlock.
    parent: Option<Box<MemoryBudget>>,
}

impl MemoryBudget {
    /// The ledger lock. A panic while holding it can only poison
    /// accounting metadata, never sample data, so recovering the guard
    /// from a poisoned lock is always safe.
    fn locked(&self) -> std::sync::MutexGuard<'_, BudgetInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// An unbounded budget: bytes are tracked, nothing is ever evicted.
    pub fn unbounded() -> Self {
        MemoryBudget::default()
    }

    /// A budget capped at `bytes`. Pools sharing the handle evict
    /// least-recently-used shards whenever the ledger exceeds it.
    pub fn bounded(bytes: usize) -> Self {
        let budget = MemoryBudget::default();
        budget.locked().limit = Some(bytes);
        budget
    }

    /// A child ledger of `self` with its own accounting and recency clock
    /// and an optional limit of its own (`None` = only the ancestors'
    /// limits apply). Charges and releases against the child are mirrored
    /// into `self` (and transitively into *its* parents), and the child
    /// reports pressure whenever its own limit **or any ancestor's** is
    /// exceeded — so pools driven by the child evict under global
    /// pressure exactly as they do under local pressure.
    pub fn subledger(&self, limit: Option<usize>) -> MemoryBudget {
        let child = MemoryBudget::default();
        child.locked().limit = limit;
        MemoryBudget { inner: child.inner, parent: Some(Box::new(self.clone())) }
    }

    /// The byte ceiling (`None` = unbounded).
    pub fn limit(&self) -> Option<usize> {
        self.locked().limit
    }

    /// Bytes currently charged against this budget.
    pub fn bytes_held(&self) -> usize {
        self.locked().held
    }

    /// Charges `bytes` to the ledger (never blocks or fails — eviction is
    /// the *pools'* reaction to an over-full ledger, via
    /// [`MemoryBudget::over_budget`]).
    pub fn charge(&self, bytes: usize) {
        self.locked().held += bytes;
        if let Some(parent) = &self.parent {
            parent.charge(bytes);
        }
    }

    /// Releases `bytes` from the ledger (saturating). Only the bytes
    /// actually subtracted here are mirrored into the parent, so an
    /// over-release on a child can never drain sibling charges from the
    /// shared ancestor ledger.
    pub fn release(&self, bytes: usize) {
        let released = {
            let mut inner = self.locked();
            let released = inner.held.min(bytes);
            inner.held -= released;
            released
        };
        if let Some(parent) = &self.parent {
            parent.release(released);
        }
    }

    /// Whether this ledger — or any ancestor it mirrors into — currently
    /// exceeds its limit.
    pub fn over_budget(&self) -> bool {
        let over_own = {
            let inner = self.locked();
            inner.limit.is_some_and(|l| inner.held > l)
        };
        over_own || self.parent.as_ref().is_some_and(|p| p.over_budget())
    }

    /// Whether charging `bytes` more would push this ledger — or any
    /// ancestor — over its limit; the admission test of the grow-only row
    /// caches, which cannot be evicted and therefore must never be
    /// admitted past a ceiling.
    pub fn would_exceed(&self, bytes: usize) -> bool {
        let exceeds_own = {
            let inner = self.locked();
            inner.limit.is_some_and(|l| inner.held.saturating_add(bytes) > l)
        };
        exceeds_own || self.parent.as_ref().is_some_and(|p| p.would_exceed(bytes))
    }

    /// Advances and returns the recency clock; pools stamp a shard with
    /// the returned tick on every touch, making eviction order
    /// least-recently-used across every pool sharing the budget.
    pub fn touch(&self) -> u64 {
        let mut inner = self.locked();
        inner.clock += 1;
        inner.clock
    }

    /// Records one shard eviction (for [`MemoryBudget::stats`]).
    pub fn note_eviction(&self) {
        self.locked().evicted += 1;
        if let Some(parent) = &self.parent {
            parent.note_eviction();
        }
    }

    /// Records one shard regeneration (for [`MemoryBudget::stats`]).
    pub fn note_regeneration(&self) {
        self.locked().regenerated += 1;
        if let Some(parent) = &self.parent {
            parent.note_regeneration();
        }
    }

    /// Snapshot of the ledger and the global eviction/regeneration
    /// counters.
    pub fn stats(&self) -> MemoryStats {
        let inner = self.locked();
        MemoryStats {
            bytes_held: inner.held,
            bytes_limit: inner.limit,
            shards_evicted: inner.evicted,
            shards_regenerated: inner.regenerated,
        }
    }

    /// Charges `bytes` and returns a guard that **releases them again on
    /// drop** unless [`ChargeGuard::commit`] is called — the error-path
    /// discipline of every reservation made *before* the work it pays for
    /// (row-cache admission, shard accounting): an early return, a
    /// cooperative interruption, or an injected fault between the charge
    /// and the commit can never leak reserved bytes.
    pub fn reserve(&self, bytes: usize) -> ChargeGuard<'_> {
        self.charge(bytes);
        ChargeGuard { budget: self, bytes, committed: false }
    }
}

/// An uncommitted charge against a [`MemoryBudget`] (see
/// [`MemoryBudget::reserve`]). Dropping the guard rolls the charge back;
/// [`ChargeGuard::commit`] makes it permanent.
#[derive(Debug)]
#[must_use = "dropping the guard immediately rolls the charge back"]
pub struct ChargeGuard<'a> {
    budget: &'a MemoryBudget,
    bytes: usize,
    committed: bool,
}

impl ChargeGuard<'_> {
    /// Keeps the charge on the ledger (the reserved bytes are now owned
    /// by the successfully completed work).
    pub fn commit(mut self) {
        self.committed = true;
    }
}

impl Drop for ChargeGuard<'_> {
    fn drop(&mut self) {
        if !self.committed {
            self.budget.release(self.bytes);
        }
    }
}

/// Memory accounting snapshot — reported uniformly by every pool backend
/// (via [`crate::WorldEngine::memory_stats`]) and by the shared budget
/// ([`MemoryBudget::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes currently held (resident shards, plus cached rows when
    /// reported by the budget).
    pub bytes_held: usize,
    /// Byte ceiling in force (`None` = unbounded).
    pub bytes_limit: Option<usize>,
    /// Shards evicted so far (cumulative).
    pub shards_evicted: u64,
    /// Shards regenerated from their RNG streams so far (cumulative).
    pub shards_regenerated: u64,
}

impl MemoryStats {
    /// Counters accumulated since `earlier` (a prior snapshot of the same
    /// source). `bytes_held`/`bytes_limit` are gauges, not counters — the
    /// later snapshot's values are kept as-is.
    pub fn since(&self, earlier: &MemoryStats) -> MemoryStats {
        MemoryStats {
            bytes_held: self.bytes_held,
            bytes_limit: self.bytes_limit,
            shards_evicted: self.shards_evicted.saturating_sub(earlier.shards_evicted),
            shards_regenerated: self.shards_regenerated.saturating_sub(earlier.shards_regenerated),
        }
    }

    /// Element-wise sum with `other` (gauge `bytes_held` adds; the limit
    /// keeps whichever side has one).
    pub fn merged(&self, other: &MemoryStats) -> MemoryStats {
        MemoryStats {
            bytes_held: self.bytes_held + other.bytes_held,
            bytes_limit: self.bytes_limit.or(other.bytes_limit),
            shards_evicted: self.shards_evicted + other.shards_evicted,
            shards_regenerated: self.shards_regenerated + other.shards_regenerated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_charge_and_release() {
        let b = MemoryBudget::bounded(100);
        assert_eq!(b.limit(), Some(100));
        assert!(!b.over_budget());
        b.charge(60);
        assert_eq!(b.bytes_held(), 60);
        assert!(!b.over_budget());
        assert!(b.would_exceed(41));
        assert!(!b.would_exceed(40));
        b.charge(60);
        assert!(b.over_budget());
        b.release(80);
        assert_eq!(b.bytes_held(), 40);
        assert!(!b.over_budget());
        b.release(1000); // saturates
        assert_eq!(b.bytes_held(), 0);
    }

    #[test]
    fn unbounded_budget_never_pressures() {
        let b = MemoryBudget::unbounded();
        b.charge(usize::MAX / 2);
        assert!(!b.over_budget());
        assert!(!b.would_exceed(usize::MAX / 2));
        assert_eq!(b.limit(), None);
    }

    #[test]
    fn clones_share_the_ledger_and_clock() {
        let a = MemoryBudget::bounded(10);
        let b = a.clone();
        a.charge(8);
        assert_eq!(b.bytes_held(), 8);
        let t1 = a.touch();
        let t2 = b.touch();
        assert!(t2 > t1, "clock must be monotone across clones");
        b.note_eviction();
        a.note_regeneration();
        let s = a.stats();
        assert_eq!((s.shards_evicted, s.shards_regenerated), (1, 1));
    }

    #[test]
    fn charge_guard_rolls_back_unless_committed() {
        let b = MemoryBudget::bounded(100);
        {
            let _g = b.reserve(40);
            assert_eq!(b.bytes_held(), 40);
            // Dropped without commit — e.g. an error path bailed out.
        }
        assert_eq!(b.bytes_held(), 0, "uncommitted reservation must roll back");
        b.reserve(30).commit();
        assert_eq!(b.bytes_held(), 30, "committed reservation must stand");
    }

    #[test]
    fn subledger_mirrors_charges_into_parent() {
        let global = MemoryBudget::bounded(100);
        let a = global.subledger(None);
        let b = global.subledger(None);
        a.charge(30);
        b.charge(50);
        assert_eq!(a.bytes_held(), 30);
        assert_eq!(b.bytes_held(), 50);
        assert_eq!(global.bytes_held(), 80);
        a.release(10);
        assert_eq!(a.bytes_held(), 20);
        assert_eq!(global.bytes_held(), 70);
        // An over-release on the child saturates locally and only the
        // actually-released bytes reach the parent: b's charges survive.
        a.release(1000);
        assert_eq!(a.bytes_held(), 0);
        assert_eq!(global.bytes_held(), 50);
    }

    #[test]
    fn subledger_reports_parent_pressure() {
        let global = MemoryBudget::bounded(100);
        let a = global.subledger(None);
        let b = global.subledger(Some(40));
        // Child limit trips on its own.
        b.charge(41);
        assert!(b.over_budget());
        assert!(!a.over_budget());
        b.release(41);
        // Parent limit trips through the child view.
        a.charge(90);
        assert!(!a.over_budget(), "own ledger is unbounded");
        assert!(b.would_exceed(20), "parent would exceed 100");
        assert!(!b.would_exceed(5));
        b.charge(20);
        assert!(b.over_budget(), "global ledger at 110 > 100");
        assert!(a.over_budget(), "sibling sees the same global pressure");
    }

    #[test]
    fn subledger_propagates_eviction_counters() {
        let global = MemoryBudget::unbounded();
        let child = global.subledger(Some(10));
        child.note_eviction();
        child.note_regeneration();
        child.note_regeneration();
        let local = child.stats();
        assert_eq!((local.shards_evicted, local.shards_regenerated), (1, 2));
        let total = global.stats();
        assert_eq!((total.shards_evicted, total.shards_regenerated), (1, 2));
        // Clocks stay per-ledger: touching the child leaves the parent's alone.
        let t_child = child.touch();
        let t_global = global.touch();
        assert_eq!(t_child, 1);
        assert_eq!(t_global, 1);
    }

    #[test]
    fn stats_since_diffs_counters_and_keeps_gauges() {
        let b = MemoryBudget::bounded(10);
        b.charge(4);
        b.note_eviction();
        let before = b.stats();
        b.note_eviction();
        b.note_regeneration();
        b.charge(2);
        let d = b.stats().since(&before);
        assert_eq!(d.bytes_held, 6);
        assert_eq!(d.bytes_limit, Some(10));
        assert_eq!((d.shards_evicted, d.shards_regenerated), (1, 1));
    }
}
